# Canonical developer commands for the reproduction.

PYTHON ?= python

.PHONY: install test bench bench-kernels bench-parallel figures report examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Scalar-vs-vectorized kernel timings; writes BENCH_core.json at the
# repo root (see the Performance section of README.md for the schema).
bench-kernels:
	$(PYTHON) benchmarks/bench_kernels.py

# Serial-vs-parallel sweep and engine-vs-batched simulation timings;
# writes BENCH_runner.json at the repo root (schema in README.md).
bench-parallel:
	$(PYTHON) benchmarks/bench_parallel.py

figures:
	for fig in figure2 figure3 figure4 figure5 figure6 figure7; do \
		$(PYTHON) -m repro figure $$fig --quiet --csv benchmarks/results/$$fig.csv; \
	done

report:
	$(PYTHON) -m repro report --output report.md

examples:
	for f in examples/*.py; do $(PYTHON) $$f; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
