# Canonical developer commands for the reproduction.

PYTHON ?= python

.PHONY: install test test-fast verify-fuzz bench bench-kernels bench-incr bench-parallel bench-shards bench-obs bench-serve bench-check trace-smoke shard-smoke serve-smoke figures report examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Skip fuzz- and hypothesis-heavy tests (marked `slow`) for a quick
# inner-loop signal; the full suite still runs in CI and `make test`.
test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

# Deterministic verification fuzz pass: invariants, metamorphic
# relations, and differential oracles (docs/verification.md).
verify-fuzz:
	$(PYTHON) -m repro verify --fuzz --seed 0 --budget 200

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Scalar-vs-vectorized kernel timings; writes BENCH_core.json at the
# repo root (see the Performance section of README.md for the schema).
bench-kernels:
	$(PYTHON) benchmarks/bench_kernels.py

# Warm-start vs cold epoch re-allocation timings across drift rates;
# writes BENCH_incr.json at the repo root (schema in
# docs/observability.md).
bench-incr:
	$(PYTHON) benchmarks/bench_incremental.py

# Serial-vs-parallel sweep and engine-vs-batched simulation timings;
# writes BENCH_runner.json at the repo root (schema in README.md).
bench-parallel:
	$(PYTHON) benchmarks/bench_parallel.py

# Sharded-fabric timings: store append throughput, cells/sec per shard
# layout, and 90%-complete resume overhead; writes BENCH_shards.json at
# the repo root (schema in docs/sharding.md).
bench-shards:
	$(PYTHON) benchmarks/bench_shards.py

# Observability overhead (no-op span cost, traced-run cost); writes
# BENCH_obs.json at the repo root and fails over the 5% budget.
bench-obs:
	$(PYTHON) benchmarks/bench_obs_overhead.py

# Live-service ingestion throughput (epochs/s, requests/s) with the
# count-min sketch vs the exact-counter oracle baseline; writes
# BENCH_serve.json at the repo root (schema in docs/serving.md).
bench-serve:
	$(PYTHON) benchmarks/bench_serve.py

# Gate the repo-root BENCH_*.json payloads against the rolling
# benchmark history (benchmarks/results/history.jsonl): fails when a
# tracked metric regresses >10% vs the median of the last 5 matching
# runs, then records the new runs (docs/observability.md).
bench-check:
	$(PYTHON) -m repro bench-check --against history

# End-to-end observability smoke: run a tiny traced sweep with workers
# and live telemetry (OpenMetrics endpoint + sampling profiler),
# convert the trace to Chrome format, then validate every artifact
# against the documented schemas (docs/observability.md).
trace-smoke:
	$(PYTHON) -m repro sweep --figure 6 --replications 1 --workers 2 \
		--quiet --trace /tmp/repro-smoke.jsonl \
		--metrics /tmp/repro-smoke-metrics.json \
		--metrics-port 0 --profile /tmp/repro-smoke-profile.txt \
		> /dev/null
	$(PYTHON) -m repro trace-convert /tmp/repro-smoke.jsonl \
		/tmp/repro-smoke-chrome.json
	$(PYTHON) tests/trace_schema.py \
		--trace /tmp/repro-smoke.jsonl \
		--chrome /tmp/repro-smoke-chrome.json \
		--metrics /tmp/repro-smoke-metrics.json \
		--manifest /tmp/repro-smoke.manifest.json
	test -s /tmp/repro-smoke-profile.txt

# End-to-end live-service smoke: record a drifting request stream,
# replay it through `repro serve` with metrics enabled, and validate
# the emitted metrics snapshot + manifest against the documented
# schemas (docs/serving.md).
serve-smoke:
	$(PYTHON) -m repro serve --items 40 --channels 4 --epoch-seconds 5 \
		--max-epochs 3 --requests-per-epoch 200 \
		--record /tmp/repro-serve-smoke.jsonl > /dev/null
	$(PYTHON) -m repro serve --items 40 --channels 4 --epoch-seconds 5 \
		--max-epochs 3 --replay /tmp/repro-serve-smoke.jsonl \
		--metrics /tmp/repro-serve-metrics.json --metrics-port 0 \
		> /dev/null
	$(PYTHON) tests/trace_schema.py \
		--metrics /tmp/repro-serve-metrics.json \
		--manifest /tmp/repro-serve-metrics.manifest.json

# End-to-end shard fabric smoke: compile a small figure-2 manifest
# into 3 shards, run one, SIGKILL another mid-run (torn trailing
# record), resume it, finish the rest, and diff the merged rows against
# a serial run (docs/sharding.md).
shard-smoke:
	rm -rf /tmp/repro-shard-smoke && mkdir -p /tmp/repro-shard-smoke
	$(PYTHON) -m repro shard compile --figure 2 --replications 1 \
		--shards 3 --output /tmp/repro-shard-smoke/manifest.json
	$(PYTHON) -m repro shard run /tmp/repro-shard-smoke/manifest.json \
		--shard 0 --results-dir /tmp/repro-shard-smoke/results --quiet
	REPRO_SHARD_KILL_AFTER=2 $(PYTHON) -m repro shard run \
		/tmp/repro-shard-smoke/manifest.json --shard 1 \
		--results-dir /tmp/repro-shard-smoke/results --quiet; \
		test $$? -eq 137
	$(PYTHON) -m repro shard run /tmp/repro-shard-smoke/manifest.json \
		--shard 1 --results-dir /tmp/repro-shard-smoke/results --quiet
	$(PYTHON) -m repro shard run /tmp/repro-shard-smoke/manifest.json \
		--shard 2 --workers 2 \
		--results-dir /tmp/repro-shard-smoke/results --quiet
	$(PYTHON) -m repro shard merge /tmp/repro-shard-smoke/manifest.json \
		--results-dir /tmp/repro-shard-smoke/results --diff-serial --quiet

figures:
	for fig in figure2 figure3 figure4 figure5 figure6 figure7; do \
		$(PYTHON) -m repro figure $$fig --quiet --csv benchmarks/results/$$fig.csv; \
	done

report:
	$(PYTHON) -m repro report --output report.md

examples:
	for f in examples/*.py; do $(PYTHON) $$f; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
