# Canonical developer commands for the reproduction.

PYTHON ?= python

.PHONY: install test test-fast verify-fuzz bench bench-kernels bench-incr bench-parallel bench-obs bench-check trace-smoke figures report examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Skip fuzz- and hypothesis-heavy tests (marked `slow`) for a quick
# inner-loop signal; the full suite still runs in CI and `make test`.
test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

# Deterministic verification fuzz pass: invariants, metamorphic
# relations, and differential oracles (docs/verification.md).
verify-fuzz:
	$(PYTHON) -m repro verify --fuzz --seed 0 --budget 200

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Scalar-vs-vectorized kernel timings; writes BENCH_core.json at the
# repo root (see the Performance section of README.md for the schema).
bench-kernels:
	$(PYTHON) benchmarks/bench_kernels.py

# Warm-start vs cold epoch re-allocation timings across drift rates;
# writes BENCH_incr.json at the repo root (schema in
# docs/observability.md).
bench-incr:
	$(PYTHON) benchmarks/bench_incremental.py

# Serial-vs-parallel sweep and engine-vs-batched simulation timings;
# writes BENCH_runner.json at the repo root (schema in README.md).
bench-parallel:
	$(PYTHON) benchmarks/bench_parallel.py

# Observability overhead (no-op span cost, traced-run cost); writes
# BENCH_obs.json at the repo root and fails over the 5% budget.
bench-obs:
	$(PYTHON) benchmarks/bench_obs_overhead.py

# Gate the repo-root BENCH_*.json payloads against the rolling
# benchmark history (benchmarks/results/history.jsonl): fails when a
# tracked metric regresses >10% vs the median of the last 5 matching
# runs, then records the new runs (docs/observability.md).
bench-check:
	$(PYTHON) -m repro bench-check --against history

# End-to-end observability smoke: run a tiny traced sweep with workers
# and live telemetry (OpenMetrics endpoint + sampling profiler),
# convert the trace to Chrome format, then validate every artifact
# against the documented schemas (docs/observability.md).
trace-smoke:
	$(PYTHON) -m repro sweep --figure 6 --replications 1 --workers 2 \
		--quiet --trace /tmp/repro-smoke.jsonl \
		--metrics /tmp/repro-smoke-metrics.json \
		--metrics-port 0 --profile /tmp/repro-smoke-profile.txt \
		> /dev/null
	$(PYTHON) -m repro trace-convert /tmp/repro-smoke.jsonl \
		/tmp/repro-smoke-chrome.json
	$(PYTHON) tests/trace_schema.py \
		--trace /tmp/repro-smoke.jsonl \
		--chrome /tmp/repro-smoke-chrome.json \
		--metrics /tmp/repro-smoke-metrics.json \
		--manifest /tmp/repro-smoke.manifest.json
	test -s /tmp/repro-smoke-profile.txt

figures:
	for fig in figure2 figure3 figure4 figure5 figure6 figure7; do \
		$(PYTHON) -m repro figure $$fig --quiet --csv benchmarks/results/$$fig.csv; \
	done

report:
	$(PYTHON) -m repro report --output report.md

examples:
	for f in examples/*.py; do $(PYTHON) $$f; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
