"""Unit tests for Algorithm DRP (repro.core.drp)."""

from __future__ import annotations

import pytest

from repro.core.cost import allocation_cost
from repro.core.drp import SPLIT_POLICIES, drp_allocate
from repro.exceptions import InfeasibleProblemError


class TestBasicBehaviour:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 10, 15])
    def test_produces_k_nonempty_channels(self, paper_db, k):
        result = drp_allocate(paper_db, k)
        assert result.allocation.num_channels == k
        assert all(stat.count >= 1 for stat in result.allocation.channel_stats)

    def test_k_equals_one_returns_whole_database(self, paper_db):
        result = drp_allocate(paper_db, 1)
        assert result.iterations == 0
        assert len(result.allocation.channel_items(0)) == len(paper_db)

    def test_k_equals_n_returns_singletons(self, paper_db):
        result = drp_allocate(paper_db, len(paper_db))
        assert all(
            stat.count == 1 for stat in result.allocation.channel_stats
        )

    def test_reported_cost_matches_allocation(self, medium_db):
        result = drp_allocate(medium_db, 6)
        assert result.cost == pytest.approx(allocation_cost(result.allocation))

    def test_iterations_equal_k_minus_one(self, medium_db):
        for k in (1, 2, 5, 9):
            assert drp_allocate(medium_db, k).iterations == k - 1

    def test_groups_are_contiguous_in_benefit_ratio_order(self, medium_db):
        result = drp_allocate(medium_db, 5)
        order = {
            item.item_id: rank
            for rank, item in enumerate(medium_db.sorted_by_benefit_ratio())
        }
        for group in result.allocation.channels:
            ranks = sorted(order[item.item_id] for item in group)
            assert ranks == list(range(ranks[0], ranks[-1] + 1))

    def test_deterministic(self, medium_db):
        first = drp_allocate(medium_db, 7)
        second = drp_allocate(medium_db, 7)
        assert first.allocation.as_id_lists() == second.allocation.as_id_lists()


class TestValidation:
    @pytest.mark.parametrize("k", [0, -1, 16])
    def test_infeasible_channel_counts(self, paper_db, k):
        with pytest.raises(InfeasibleProblemError):
            drp_allocate(paper_db, k)

    def test_unknown_policy_rejected(self, paper_db):
        with pytest.raises(InfeasibleProblemError, match="split_policy"):
            drp_allocate(paper_db, 3, split_policy="bogus")

    def test_presorted_items_must_be_permutation(self, paper_db, tiny_db):
        with pytest.raises(InfeasibleProblemError, match="permutation"):
            drp_allocate(paper_db, 3, presorted_items=tiny_db.items)


class TestPolicies:
    def test_policies_constant_lists_both(self):
        assert set(SPLIT_POLICIES) == {"max-cost", "max-reduction"}

    @pytest.mark.parametrize("policy", SPLIT_POLICIES)
    def test_both_policies_produce_valid_results(self, medium_db, policy):
        result = drp_allocate(medium_db, 6, split_policy=policy)
        assert result.allocation.num_channels == 6
        assert result.cost == pytest.approx(allocation_cost(result.allocation))

    def test_max_cost_splits_largest_cost_group(self, paper_db):
        # With the max-cost policy the 4th split takes the cost-7.26
        # group {d10,d13,d4,d8}, not the paper's cost-7.02 group.
        result = drp_allocate(paper_db, 5, split_policy="max-cost")
        ids = result.allocation.as_id_lists()
        assert ["d10", "d13"] in ids and ["d4", "d8"] in ids

    def test_max_reduction_matches_paper_example(self, paper_db):
        result = drp_allocate(paper_db, 5, split_policy="max-reduction")
        ids = [tuple(group) for group in result.allocation.as_id_lists()]
        assert ("d9", "d2", "d3") in ids
        assert ("d6", "d5", "d15") in ids


class TestTrace:
    def test_trace_disabled_by_default(self, paper_db):
        assert drp_allocate(paper_db, 5).snapshots == []

    def test_trace_has_one_snapshot_per_state(self, paper_db):
        result = drp_allocate(paper_db, 5, trace=True)
        # K-1 pre-split snapshots plus the final state.
        assert len(result.snapshots) == result.iterations + 1
        assert result.snapshots[0].iteration == 0
        assert result.snapshots[-1].split_group is None

    def test_trace_group_counts_grow_by_one(self, paper_db):
        result = drp_allocate(paper_db, 5, trace=True)
        counts = [len(snap.groups) for snap in result.snapshots]
        assert counts == [1, 2, 3, 4, 5]

    def test_trace_costs_align_with_groups(self, paper_db):
        result = drp_allocate(paper_db, 5, trace=True)
        for snap in result.snapshots:
            assert len(snap.groups) == len(snap.costs)
            assert all(cost > 0 for cost in snap.costs)

    def test_trace_split_group_points_at_max_cost(self, paper_db):
        result = drp_allocate(paper_db, 4, trace=True, split_policy="max-cost")
        for snap in result.snapshots[:-1]:
            chosen = snap.costs[snap.split_group]
            # The chosen group must carry the maximal cost among
            # splittable (size >= 2) groups.
            splittable = [
                cost
                for group, cost in zip(snap.groups, snap.costs)
                if len(group) >= 2
            ]
            assert chosen == pytest.approx(max(splittable))


class TestAblationOrder:
    def test_frequency_order_is_usually_worse(self, medium_db):
        """Sorting by raw frequency instead of benefit ratio hurts."""
        by_freq = medium_db.sorted_by_frequency()
        br_cost = drp_allocate(medium_db, 6).cost
        freq_cost = drp_allocate(medium_db, 6, presorted_items=by_freq).cost
        # Not a theorem, but holds for this fixture and demonstrates
        # why the dimension reduction uses br.
        assert br_cost <= freq_cost
