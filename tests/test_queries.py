"""Tests for multi-item query workloads and retrieval."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.allocation import ChannelAllocation
from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.core.scheduler import DRPCDSAllocator
from repro.exceptions import InvalidDatabaseError, SimulationError
from repro.simulation.queries import (
    retrieve_query,
    simulate_query_workload,
)
from repro.simulation.server import BroadcastProgram
from repro.workloads.queries import (
    Query,
    QueryWorkload,
    generate_query_workload,
    item_frequencies_from_queries,
)


class TestQuery:
    def test_valid(self):
        query = Query("q1", ("a", "b"), 0.5)
        assert query.size == 2

    def test_validation(self):
        with pytest.raises(InvalidDatabaseError):
            Query("", ("a",), 0.5)
        with pytest.raises(InvalidDatabaseError):
            Query("q", (), 0.5)
        with pytest.raises(InvalidDatabaseError):
            Query("q", ("a", "a"), 0.5)
        with pytest.raises(InvalidDatabaseError):
            Query("q", ("a",), 0.0)


class TestQueryWorkload:
    def test_basic(self):
        workload = QueryWorkload(
            [Query("q1", ("a",), 0.6), Query("q2", ("a", "b"), 0.4)]
        )
        assert len(workload) == 2
        assert workload.mean_query_size == pytest.approx(1.4)
        assert workload.referenced_item_ids() == ["a", "b"]

    def test_frequencies_must_sum_to_one(self):
        with pytest.raises(InvalidDatabaseError, match="sum to 1"):
            QueryWorkload([Query("q1", ("a",), 0.5)])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(InvalidDatabaseError, match="duplicate"):
            QueryWorkload(
                [Query("q1", ("a",), 0.5), Query("q1", ("b",), 0.5)]
            )

    def test_empty_rejected(self):
        with pytest.raises(InvalidDatabaseError):
            QueryWorkload([])

    def test_sample_follows_frequencies(self):
        workload = QueryWorkload(
            [Query("hot", ("a",), 0.9), Query("cold", ("b",), 0.1)]
        )
        rng = np.random.default_rng(0)
        draws = [workload.sample(rng).query_id for _ in range(2000)]
        assert draws.count("hot") / len(draws) == pytest.approx(0.9, abs=0.03)


class TestGeneration:
    def test_shape(self, medium_db):
        workload = generate_query_workload(
            medium_db, 20, min_items=2, max_items=5, seed=0
        )
        assert len(workload) == 20
        for query in workload:
            assert 2 <= query.size <= 5
            for item_id in query.item_ids:
                assert item_id in medium_db

    def test_reproducible(self, medium_db):
        a = generate_query_workload(medium_db, 10, seed=4)
        b = generate_query_workload(medium_db, 10, seed=4)
        assert [q.item_ids for q in a] == [q.item_ids for q in b]

    def test_popularity_bias(self, medium_db):
        biased = generate_query_workload(
            medium_db, 200, seed=1, bias_to_popular=True
        )
        hottest = medium_db.sorted_by_frequency()[0].item_id
        hits = sum(
            1 for query in biased if hottest in query.item_ids
        )
        unbiased = generate_query_workload(
            medium_db, 200, seed=1, bias_to_popular=False
        )
        unbiased_hits = sum(
            1 for query in unbiased if hottest in query.item_ids
        )
        assert hits > unbiased_hits

    def test_validation(self, medium_db):
        with pytest.raises(InvalidDatabaseError):
            generate_query_workload(medium_db, 0)
        with pytest.raises(InvalidDatabaseError):
            generate_query_workload(medium_db, 5, min_items=3, max_items=2)


class TestItemFrequencyReduction:
    def test_membership_mass(self):
        workload = QueryWorkload(
            [Query("q1", ("a", "b"), 0.7), Query("q2", ("b",), 0.3)]
        )
        freqs = item_frequencies_from_queries(
            workload, ["a", "b", "c"], smoothing=0.0
        )
        # a: 0.7, b: 1.0, c: 0 -> normalised by 1.7.
        assert freqs["a"] == pytest.approx(0.7 / 1.7)
        assert freqs["b"] == pytest.approx(1.0 / 1.7)
        assert freqs["c"] == 0.0

    def test_smoothing_keeps_untouched_items_positive(self):
        workload = QueryWorkload([Query("q1", ("a",), 1.0)])
        freqs = item_frequencies_from_queries(workload, ["a", "b"])
        assert freqs["b"] > 0
        assert sum(freqs.values()) == pytest.approx(1.0)

    def test_unknown_items_rejected(self):
        workload = QueryWorkload([Query("q1", ("zz",), 1.0)])
        with pytest.raises(InvalidDatabaseError, match="unknown item"):
            item_frequencies_from_queries(workload, ["a"])


class TestRetrieveQuery:
    @pytest.fixture
    def program(self, tiny_db):
        allocation = ChannelAllocation(
            tiny_db, [tiny_db.items[:2], tiny_db.items[2:]]
        )
        return BroadcastProgram(allocation, bandwidth=10.0)

    def test_single_item_matches_plain_waiting(self, program):
        result = retrieve_query(program, ["c"], 0.05)
        assert result.span == pytest.approx(
            program.waiting_time("c", 0.05)
        )
        assert result.order == ("c",)

    def test_span_covers_all_items(self, program):
        result = retrieve_query(program, ["a", "d"], 0.0)
        assert len(result.order) == 2
        assert set(result.order) == {"a", "d"}
        assert result.completions == tuple(sorted(result.completions))
        assert result.span == pytest.approx(result.completions[-1] - 0.0)

    def test_greedy_beats_fixed_on_average(self, medium_db):
        """Greedy is myopic — it can lose on a single instance — but it
        must win clearly on average over random queries."""
        allocation = DRPCDSAllocator().allocate(medium_db, 4).allocation
        program = BroadcastProgram(allocation)
        rng = np.random.default_rng(0)
        ids = list(medium_db.item_ids)
        greedy_total = 0.0
        fixed_total = 0.0
        for _trial in range(60):
            members = rng.choice(len(ids), size=4, replace=False)
            query = [ids[int(i)] for i in members]
            tune_in = float(rng.uniform(0, 100))
            greedy_total += retrieve_query(program, query, tune_in).span
            fixed_total += retrieve_query(
                program, query, tune_in, strategy="fixed"
            ).span
        assert greedy_total < fixed_total

    def test_validation(self, program):
        with pytest.raises(SimulationError):
            retrieve_query(program, [], 0.0)
        with pytest.raises(SimulationError):
            retrieve_query(program, ["a", "a"], 0.0)
        with pytest.raises(SimulationError):
            retrieve_query(program, ["a"], 0.0, strategy="bogus")


class TestSimulateQueryWorkload:
    def test_summary_shape(self, medium_db):
        allocation = DRPCDSAllocator().allocate(medium_db, 4).allocation
        workload = generate_query_workload(
            medium_db, 30, min_items=1, max_items=3, seed=2
        )
        summary = simulate_query_workload(
            allocation, workload, num_requests=500, seed=3
        )
        assert summary.count == 500
        assert summary.mean > 0

    def test_query_aware_profile_beats_round_robin(self, medium_db):
        """Allocating on query-derived frequencies beats a flat deal."""
        from repro.baselines.flat import RoundRobinAllocator

        workload = generate_query_workload(
            medium_db, 40, min_items=1, max_items=3, seed=5
        )
        freqs = item_frequencies_from_queries(
            workload, list(medium_db.item_ids)
        )
        derived = BroadcastDatabase(
            [
                DataItem(item.item_id, freqs[item.item_id], item.size)
                for item in medium_db.items
            ]
        )
        smart = DRPCDSAllocator().allocate(derived, 4).allocation
        # Evaluate both against the original database items.
        smart_eval = ChannelAllocation(
            medium_db,
            [
                [medium_db[i.item_id] for i in group]
                for group in smart.channels
            ],
        )
        flat = RoundRobinAllocator().allocate(medium_db, 4).allocation
        smart_span = simulate_query_workload(
            smart_eval, workload, num_requests=1500, seed=7
        ).mean
        flat_span = simulate_query_workload(
            flat, workload, num_requests=1500, seed=7
        ).mean
        assert smart_span < flat_span

    def test_unknown_workload_items_rejected(self, medium_db, tiny_db):
        allocation = DRPCDSAllocator().allocate(tiny_db, 2).allocation
        workload = generate_query_workload(medium_db, 5, seed=0)
        with pytest.raises(SimulationError, match="not in the allocation"):
            simulate_query_workload(allocation, workload)

    def test_larger_queries_take_longer(self, medium_db):
        allocation = DRPCDSAllocator().allocate(medium_db, 4).allocation
        small = generate_query_workload(
            medium_db, 30, min_items=1, max_items=1, seed=1
        )
        large = generate_query_workload(
            medium_db, 30, min_items=4, max_items=4, seed=1
        )
        small_span = simulate_query_workload(
            allocation, small, num_requests=800, seed=2
        ).mean
        large_span = simulate_query_workload(
            allocation, large, num_requests=800, seed=2
        ).mean
        assert large_span > small_span
