"""Edge-case tests across the core: degenerate and adversarial inputs."""

from __future__ import annotations

import pytest

from repro.core.allocation import ChannelAllocation
from repro.core.cds import cds_refine
from repro.core.cost import allocation_cost, average_waiting_time
from repro.core.database import BroadcastDatabase
from repro.core.drp import drp_allocate
from repro.core.item import DataItem
from repro.core.partition import best_split, contiguous_optimal


def uniform_items(n, size=1.0):
    return [DataItem(f"u{i}", 1.0 / n, size) for i in range(n)]


class TestIdenticalItems:
    """All items equal — every algorithm must still behave sanely."""

    def test_drp_balances_group_sizes(self):
        db = BroadcastDatabase(uniform_items(16))
        result = drp_allocate(db, 4)
        counts = sorted(s.count for s in result.allocation.channel_stats)
        assert counts == [4, 4, 4, 4]

    def test_drp_with_non_power_of_two(self):
        db = BroadcastDatabase(uniform_items(10))
        result = drp_allocate(db, 3)
        counts = sorted(s.count for s in result.allocation.channel_stats)
        assert sum(counts) == 10
        assert counts[0] >= 2  # reasonably balanced

    def test_cds_fixpoint_on_balanced_identical(self):
        db = BroadcastDatabase(uniform_items(12))
        allocation = drp_allocate(db, 4).allocation
        refined = cds_refine(allocation)
        assert refined.iterations == 0

    def test_contiguous_dp_matches_drp_on_identical(self):
        db = BroadcastDatabase(uniform_items(16))
        dp_cost = contiguous_optimal(db.items, 4)[1]
        assert drp_allocate(db, 4).cost == pytest.approx(dp_cost)


class TestExtremeSkew:
    """One item dominates the profile."""

    @pytest.fixture
    def skewed(self):
        items = [DataItem("whale", 0.96, 5.0)] + [
            DataItem(f"m{i}", 0.005, 5.0) for i in range(8)
        ]
        return BroadcastDatabase(items)

    def test_whale_gets_isolated(self, skewed):
        result = drp_allocate(skewed, 3)
        refined = cds_refine(result.allocation)
        whale_channel = refined.allocation.channel_of("whale")
        assert refined.allocation.channel_stats[whale_channel].count == 1

    def test_waiting_time_dominated_by_whale(self, skewed):
        allocation = cds_refine(drp_allocate(skewed, 3).allocation).allocation
        wb = average_waiting_time(allocation, bandwidth=10.0)
        # Whale alone: probe 5/20 + download 5/10 = 0.75, weighted 0.96.
        assert wb < 2.0


class TestExtremeSizes:
    """Sizes spanning many orders of magnitude must not break math."""

    @pytest.fixture
    def extreme(self):
        return BroadcastDatabase(
            [
                DataItem("tiny", 0.4, 1e-6),
                DataItem("small", 0.3, 1e-2),
                DataItem("big", 0.2, 1e2),
                DataItem("huge", 0.1, 1e6),
            ]
        )

    def test_drp_cds_runs_and_orders_sanely(self, extreme):
        refined = cds_refine(drp_allocate(extreme, 2).allocation)
        # The huge item must not share a channel with the tiny one.
        assert refined.allocation.channel_of(
            "huge"
        ) != refined.allocation.channel_of("tiny")

    def test_costs_remain_finite(self, extreme):
        for k in (1, 2, 3, 4):
            result = drp_allocate(extreme, k)
            assert result.cost > 0
            assert result.cost < 1e12

    def test_best_split_separates_scales(self, extreme):
        ordered = extreme.sorted_by_benefit_ratio()
        p, _ = best_split(ordered)
        left_ids = {item.item_id for item in ordered[:p]}
        assert "huge" not in left_ids


class TestTinyInstances:
    def test_two_items_two_channels(self):
        db = BroadcastDatabase(
            [DataItem("a", 0.6, 1.0), DataItem("b", 0.4, 2.0)]
        )
        result = drp_allocate(db, 2)
        assert sorted(
            s.count for s in result.allocation.channel_stats
        ) == [1, 1]
        assert result.cost == pytest.approx(0.6 * 1.0 + 0.4 * 2.0)

    def test_single_item_single_channel(self):
        db = BroadcastDatabase([DataItem("only", 1.0, 3.0)])
        result = drp_allocate(db, 1)
        assert result.cost == pytest.approx(3.0)
        refined = cds_refine(result.allocation)
        assert refined.iterations == 0

    def test_cds_with_two_singleton_channels_is_stable(self):
        db = BroadcastDatabase(
            [DataItem("a", 0.6, 1.0), DataItem("b", 0.4, 2.0)]
        )
        allocation = ChannelAllocation(
            db, [[db["a"]], [db["b"]]]
        )
        refined = cds_refine(allocation)
        assert refined.iterations == 0
        assert allocation_cost(refined.allocation) == pytest.approx(
            0.6 * 1.0 + 0.4 * 2.0
        )


class TestNearTiedBenefitRatios:
    def test_equal_ratios_with_different_magnitudes(self):
        """Same f/z but very different f and z — the 1-D reduction
        treats them alike; grouping must still be a valid partition and
        CDS must still terminate."""
        db = BroadcastDatabase(
            [
                DataItem("big", 0.5, 50.0),
                DataItem("mid", 0.3, 30.0),
                DataItem("small", 0.2, 20.0),
                DataItem("extra", 1e-4, 1e-2),
            ],
            require_normalized=False,
        ).normalized()
        refined = cds_refine(drp_allocate(db, 2).allocation)
        ids = sorted(
            i.item_id for g in refined.allocation.channels for i in g
        )
        assert ids == sorted(db.item_ids)
        assert refined.converged
