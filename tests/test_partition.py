"""Unit tests for repro.core.partition."""

from __future__ import annotations

import itertools
import math

import pytest

from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.core.partition import (
    PrefixSums,
    best_split,
    contiguous_optimal,
    split_costs,
)
from repro.exceptions import InfeasibleProblemError

from tests.conftest import PAPER_GOLDENS


def make_items(pairs):
    total = sum(f for f, _ in pairs)
    return [
        DataItem(f"i{k}", f / total, z) for k, (f, z) in enumerate(pairs)
    ]


class TestPrefixSums:
    def test_slice_aggregates(self, tiny_db):
        sums = PrefixSums(tiny_db.items)
        assert len(sums) == 4
        assert sums.frequency(0, 4) == pytest.approx(1.0)
        assert sums.size(1, 3) == pytest.approx(5.0)
        assert sums.cost(1, 3) == pytest.approx(0.5 * 5.0)

    def test_empty_slice(self, tiny_db):
        sums = PrefixSums(tiny_db.items)
        assert sums.frequency(2, 2) == 0.0
        assert sums.cost(2, 2) == 0.0

    def test_matches_direct_computation(self, medium_db):
        items = medium_db.sorted_by_benefit_ratio()
        sums = PrefixSums(items)
        for start, stop in [(0, 5), (3, 17), (10, 30)]:
            freq = math.fsum(i.frequency for i in items[start:stop])
            size = math.fsum(i.size for i in items[start:stop])
            assert sums.frequency(start, stop) == pytest.approx(freq)
            assert sums.size(start, stop) == pytest.approx(size)


class TestBestSplit:
    def test_matches_exhaustive_scan(self, medium_db):
        items = medium_db.sorted_by_benefit_ratio()
        p, cost = best_split(items)
        sums = PrefixSums(items)
        exhaustive = min(
            sums.cost(0, q) + sums.cost(q, len(items))
            for q in range(1, len(items))
        )
        assert cost == pytest.approx(exhaustive)
        assert cost == pytest.approx(
            sums.cost(0, p) + sums.cost(p, len(items))
        )

    def test_two_items_split_between_them(self):
        items = make_items([(0.6, 1.0), (0.4, 3.0)])
        p, cost = best_split(items)
        assert p == 1
        assert cost == pytest.approx(0.6 * 1.0 + 0.4 * 3.0)

    def test_tie_broken_to_smallest_index(self):
        # Four identical items: splits at p=2 are optimal; p=1 and p=3
        # are symmetric ties worse than p=2, so p=2 wins outright; with
        # two items identical costs arise at p=1 only.  Build an exact
        # tie: two identical halves.
        items = make_items([(0.25, 1.0)] * 4)
        p, _ = best_split(items)
        assert p == 2  # balanced split is strictly best here

    def test_paper_first_split(self, paper_db):
        # Table 3(b): the first split separates after d12 (position 8).
        items = paper_db.sorted_by_benefit_ratio()
        p, cost = best_split(items)
        assert p == 8
        assert [i.item_id for i in items[:p]][-1] == "d12"
        assert cost == pytest.approx(
            sum(PAPER_GOLDENS["first_split_costs"]), abs=0.02
        )

    def test_rejects_short_sequences(self, tiny_db):
        with pytest.raises(InfeasibleProblemError):
            best_split(tiny_db.items[:1])
        with pytest.raises(InfeasibleProblemError):
            best_split([])


class TestSplitCosts:
    def test_profile_length_and_minimum(self, paper_db):
        items = paper_db.sorted_by_benefit_ratio()
        profile = split_costs(items)
        assert len(profile) == len(items) - 1
        p, cost = best_split(items)
        assert min(profile) == pytest.approx(cost)
        assert profile.index(min(profile)) == p - 1

    def test_rejects_single_item(self, tiny_db):
        with pytest.raises(InfeasibleProblemError):
            split_costs(tiny_db.items[:1])


class TestContiguousOptimal:
    def test_one_group_is_whole_sequence(self, tiny_db):
        boundaries, cost = contiguous_optimal(tiny_db.items, 1)
        assert boundaries == [(0, 4)]
        assert cost == pytest.approx(1.0 * 10.0)

    def test_n_groups_are_singletons(self, tiny_db):
        boundaries, cost = contiguous_optimal(tiny_db.items, 4)
        assert boundaries == [(0, 1), (1, 2), (2, 3), (3, 4)]
        expected = sum(i.frequency * i.size for i in tiny_db.items)
        assert cost == pytest.approx(expected)

    def test_boundaries_cover_range_in_order(self, medium_db):
        items = medium_db.sorted_by_benefit_ratio()
        boundaries, _ = contiguous_optimal(items, 5)
        assert boundaries[0][0] == 0
        assert boundaries[-1][1] == len(items)
        for (_, stop), (start, _) in zip(boundaries, boundaries[1:]):
            assert stop == start
        assert all(stop > start for start, stop in boundaries)

    def test_matches_exhaustive_enumeration(self):
        items = make_items(
            [(0.3, 2.0), (0.25, 1.0), (0.2, 5.0), (0.15, 3.0), (0.1, 8.0)]
        )
        sums = PrefixSums(items)
        k = 3
        # All ways to choose 2 interior boundaries among 4 positions.
        exhaustive = min(
            sums.cost(0, a) + sums.cost(a, b) + sums.cost(b, len(items))
            for a, b in itertools.combinations(range(1, len(items)), 2)
        )
        _, cost = contiguous_optimal(items, k)
        assert cost == pytest.approx(exhaustive)

    def test_cost_non_increasing_in_group_count(self, medium_db):
        items = medium_db.sorted_by_benefit_ratio()
        costs = [contiguous_optimal(items, k)[1] for k in range(1, 8)]
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))

    def test_infeasible_group_counts_rejected(self, tiny_db):
        with pytest.raises(InfeasibleProblemError):
            contiguous_optimal(tiny_db.items, 0)
        with pytest.raises(InfeasibleProblemError):
            contiguous_optimal(tiny_db.items, 5)


def test_contiguous_dp_never_worse_than_recursive_bisection(medium_db):
    """DRP explores a subset of contiguous partitions; DP is optimal."""
    from repro.core.drp import drp_allocate

    for k in (2, 3, 5, 8):
        dp_cost = contiguous_optimal(
            medium_db.sorted_by_benefit_ratio(), k
        )[1]
        drp_cost = drp_allocate(medium_db, k).cost
        assert dp_cost <= drp_cost + 1e-9
