"""Backend-parity and kernel tests (repro.core.kernels).

The vectorized kernels must be *indistinguishable* from the scalar
reference implementations: same split indices, same move sequences,
same tie-breaks, same costs.  These tests pin that contract over
seeded-random workloads, adversarial tie-heavy inputs and the paper's
worked example, and check the divide-and-conquer DP against the
quadratic oracle exactly.
"""

from __future__ import annotations

import pytest

import repro.core.drp as drp_module
from repro.core.cds import cds_refine
from repro.core.database import BroadcastDatabase
from repro.core.drp import drp_allocate
from repro.core.item import DataItem
from repro.core.kernels import BACKENDS, HAS_NUMPY, resolve_backend
from repro.core.partition import (
    PrefixSums,
    best_split,
    best_split_in,
    contiguous_optimal,
)
from repro.exceptions import ReproError
from repro.workloads.generator import WorkloadSpec, generate_database
from repro.workloads.paper_profile import (
    PAPER_CDS_COST,
    PAPER_DRP_COST,
    PAPER_INITIAL_COST,
    PAPER_NUM_CHANNELS,
    paper_database,
)

pytestmark = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")

#: The seeded grid the parity tests sweep (K is clamped to N).
PARITY_SIZES = (2, 3, 17, 257)
PARITY_CHANNELS = tuple(range(1, 9))


def _database(n: int, seed: int) -> BroadcastDatabase:
    return generate_database(
        WorkloadSpec(num_items=n, skewness=0.8, diversity=1.5, seed=seed)
    )


def _bad_seed_allocation(database: BroadcastDatabase, k: int):
    """Catalogue-order chunking: far from optimal, many CDS moves."""
    from repro.core.allocation import ChannelAllocation

    items = database.items
    size = max(1, len(items) // k)
    groups = [list(items[i * size: (i + 1) * size]) for i in range(k - 1)]
    groups.append(list(items[(k - 1) * size:]))
    return ChannelAllocation(database, groups)


class TestResolveBackend:
    def test_auto_prefers_numpy(self):
        assert resolve_backend("auto") == "numpy"

    def test_explicit_backends(self):
        assert resolve_backend("python") == "python"
        assert resolve_backend("numpy") == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError, match="unknown backend"):
            resolve_backend("cuda")

    def test_backends_tuple(self):
        assert BACKENDS == ("auto", "python", "numpy")


class TestSplitParity:
    @pytest.mark.parametrize("n", PARITY_SIZES)
    @pytest.mark.parametrize("seed", (0, 1))
    def test_best_split_same_index_and_cost(self, n, seed):
        if n < 2:
            pytest.skip("nothing to split")
        items = _database(n, seed).sorted_by_benefit_ratio()
        scalar = best_split(items, backend="python")
        vector = best_split(items, backend="numpy")
        assert scalar[0] == vector[0]
        assert scalar[1] == vector[1]  # bitwise-identical floats

    @pytest.mark.parametrize("seed", range(5))
    def test_range_scan_same_on_subranges(self, seed):
        items = _database(57, seed).sorted_by_benefit_ratio()
        sums = PrefixSums(items)
        for start, stop in [(0, 57), (3, 41), (10, 12), (30, 57)]:
            scalar = best_split_in(sums, start, stop, backend="python")
            vector = best_split_in(sums, start, stop, backend="numpy")
            assert scalar == vector

    def test_tie_break_first_minimum_wins(self):
        # Three identical items with dyadic features: splits 1|2 and
        # 2|1 tie exactly in floating point; both backends must return
        # the smallest offset.
        items = [DataItem(f"t{i}", 0.25, 2.0) for i in range(3)]
        assert best_split(items, backend="python")[0] == 1
        assert best_split(items, backend="numpy")[0] == 1


class TestDRPParity:
    @pytest.mark.parametrize("n", PARITY_SIZES)
    @pytest.mark.parametrize("k", PARITY_CHANNELS)
    @pytest.mark.parametrize("policy", ("max-cost", "max-reduction"))
    def test_same_allocation_and_cost(self, n, k, policy):
        if k > n:
            pytest.skip("K exceeds N")
        database = _database(n, seed=11)
        scalar = drp_allocate(database, k, split_policy=policy, backend="python")
        vector = drp_allocate(database, k, split_policy=policy, backend="numpy")
        assert scalar.allocation.as_id_lists() == vector.allocation.as_id_lists()
        assert scalar.cost == pytest.approx(vector.cost, abs=1e-9)

    def test_traces_identical(self):
        database = _database(40, seed=3)
        scalar = drp_allocate(
            database, 6, split_policy="max-reduction", trace=True,
            backend="python",
        )
        vector = drp_allocate(
            database, 6, split_policy="max-reduction", trace=True,
            backend="numpy",
        )
        assert scalar.snapshots == vector.snapshots


class TestCDSParity:
    @pytest.mark.parametrize("n", PARITY_SIZES)
    @pytest.mark.parametrize("k", PARITY_CHANNELS)
    def test_same_move_sequence_and_cost(self, n, k):
        if k > n:
            pytest.skip("K exceeds N")
        database = _database(n, seed=29)
        seed_allocation = _bad_seed_allocation(database, k)
        scalar = cds_refine(seed_allocation, backend="python")
        vector = cds_refine(seed_allocation, backend="numpy")
        # CDSMove equality is exact float equality — the backends must
        # produce bitwise-identical deltas, not merely close ones.
        assert scalar.moves == vector.moves
        assert scalar.cost == pytest.approx(vector.cost, abs=1e-9)
        assert (
            scalar.allocation.as_id_lists() == vector.allocation.as_id_lists()
        )

    def test_tie_break_first_maximum_wins(self):
        # Identical items make every improving move tie; the scan-order
        # contract (origin, then position, then destination) must pick
        # the same first maximum on both backends.
        items = [DataItem(f"t{i}", 1.0 / 9.0, 2.0) for i in range(9)]
        database = BroadcastDatabase(items)
        from repro.core.allocation import ChannelAllocation

        lopsided = ChannelAllocation(
            database, [items[:7], [items[7]], [items[8]]]
        )
        scalar = cds_refine(lopsided, backend="python")
        vector = cds_refine(lopsided, backend="numpy")
        assert scalar.moves == vector.moves
        assert scalar.cost == pytest.approx(vector.cost, abs=1e-9)

    def test_max_iterations_respected_on_numpy_backend(self, medium_db):
        seed_allocation = _bad_seed_allocation(medium_db, 5)
        capped = cds_refine(seed_allocation, max_iterations=2, backend="numpy")
        assert capped.iterations == 2
        assert not capped.converged


class TestPaperGoldenOnBothBackends:
    """Tables 2–4 of the paper must hold on either backend."""

    @pytest.mark.parametrize("backend", ("python", "numpy"))
    def test_pipeline_golden_values(self, backend):
        database = paper_database()
        from repro.core.cost import group_cost

        assert group_cost(database.items) == pytest.approx(
            PAPER_INITIAL_COST, abs=0.01
        )
        rough = drp_allocate(
            database,
            PAPER_NUM_CHANNELS,
            split_policy="max-reduction",
            backend=backend,
        )
        assert rough.cost == pytest.approx(PAPER_DRP_COST, abs=0.02)
        refined = cds_refine(rough.allocation, backend=backend)
        assert refined.cost == pytest.approx(PAPER_CDS_COST, abs=0.02)


class TestContiguousDPMethods:
    def test_oracle_match_on_twenty_seeded_instances(self):
        """The O(K·N log N) DP must reproduce the oracle's cost exactly."""
        checked = 0
        for seed in range(10):
            for n, k in ((23, 4), (60, 7)):
                items = _database(n, seed).sorted_by_benefit_ratio()
                _, quadratic = contiguous_optimal(items, k, method="quadratic")
                boundaries, fast = contiguous_optimal(
                    items, k, method="divide-conquer"
                )
                assert fast == quadratic, (seed, n, k)
                # The returned boundaries must themselves realise the cost.
                sums = PrefixSums(items)
                realised = sum(sums.cost(a, b) for a, b in boundaries)
                assert realised == pytest.approx(fast, rel=1e-9)
                checked += 1
        assert checked >= 20

    @pytest.mark.parametrize("method", ("auto", "quadratic", "divide-conquer"))
    def test_degenerate_group_counts(self, method, tiny_db):
        boundaries, cost = contiguous_optimal(tiny_db.items, 1, method=method)
        assert boundaries == [(0, 4)]
        boundaries, cost = contiguous_optimal(tiny_db.items, 4, method=method)
        assert boundaries == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_unknown_method_rejected(self, tiny_db):
        from repro.exceptions import InfeasibleProblemError

        with pytest.raises(InfeasibleProblemError, match="unknown method"):
            contiguous_optimal(tiny_db.items, 2, method="magic")


class TestSplitEvaluationCount:
    @pytest.mark.parametrize("policy", ("max-cost", "max-reduction"))
    def test_one_best_split_evaluation_per_group(self, monkeypatch, policy):
        """Each group is split-evaluated exactly once in its lifetime."""
        calls = []
        real = drp_module.best_split_in

        def counting(sums, start, stop, **kwargs):
            calls.append((start, stop))
            return real(sums, start, stop, **kwargs)

        monkeypatch.setattr(drp_module, "best_split_in", counting)
        database = _database(64, seed=5)
        drp_allocate(database, 8, split_policy=policy)
        assert len(calls) == len(set(calls)), (
            f"groups evaluated more than once: "
            f"{sorted(c for c in calls if calls.count(c) > 1)}"
        )
