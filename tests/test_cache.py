"""Tests for client-side caching (repro.simulation.cache)."""

from __future__ import annotations

import pytest

from repro.core.item import DataItem
from repro.core.scheduler import DRPCDSAllocator
from repro.exceptions import SimulationError
from repro.simulation.cache import (
    ClientCache,
    LFUPolicy,
    LRUPolicy,
    PIXPolicy,
    simulate_with_cache,
)


def entry_items():
    return [
        DataItem("a", 0.5, 4.0),
        DataItem("b", 0.3, 4.0),
        DataItem("c", 0.2, 4.0),
    ]


class TestClientCache:
    def test_insert_and_hit(self):
        cache = ClientCache(10.0, LRUPolicy())
        a, b, _ = entry_items()
        cache.insert(a, now=1.0)
        assert "a" in cache
        assert cache.touch("a", now=2.0)
        assert not cache.touch("zz", now=2.0)
        assert cache.used == 4.0
        cache.insert(b, now=3.0)
        assert len(cache) == 2

    def test_capacity_is_size_based(self):
        cache = ClientCache(8.0, LRUPolicy())
        a, b, c = entry_items()
        cache.insert(a, 1.0)
        cache.insert(b, 2.0)
        cache.insert(c, 3.0)  # must evict one of the 4-unit items
        assert cache.used <= 8.0
        assert len(cache) == 2

    def test_lru_evicts_least_recent(self):
        cache = ClientCache(8.0, LRUPolicy())
        a, b, c = entry_items()
        cache.insert(a, 1.0)
        cache.insert(b, 2.0)
        cache.touch("a", 5.0)  # refresh a; b is now LRU
        cache.insert(c, 6.0)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_lfu_evicts_least_used(self):
        cache = ClientCache(8.0, LFUPolicy())
        a, b, c = entry_items()
        cache.insert(a, 1.0)
        cache.insert(b, 2.0)
        for t in range(3, 8):
            cache.touch("b", float(t))
        cache.insert(c, 9.0)  # a has 1 use, b has many
        assert "b" in cache
        assert "a" not in cache

    def test_oversized_item_never_cached(self):
        cache = ClientCache(3.0, LRUPolicy())
        cache.insert(DataItem("big", 0.5, 100.0), 1.0)
        assert len(cache) == 0

    def test_reinsert_counts_as_touch(self):
        cache = ClientCache(10.0, LFUPolicy())
        a = entry_items()[0]
        cache.insert(a, 1.0)
        cache.insert(a, 2.0)
        assert len(cache) == 1
        assert cache.used == 4.0

    def test_zero_capacity(self):
        cache = ClientCache(0.0, LRUPolicy())
        cache.insert(entry_items()[0], 1.0)
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(SimulationError):
            ClientCache(-1.0, LRUPolicy())


class TestPIXPolicy:
    def test_requires_binding(self):
        from repro.simulation.cache import _Entry

        policy = PIXPolicy()
        with pytest.raises(SimulationError, match="not bound"):
            policy.score(
                _Entry(item=DataItem("a", 0.5, 1.0), last_used=0.0, use_count=1)
            )

    def test_prefers_keeping_slow_reappearing_items(self, medium_db):
        """Among equally popular items, the one on the longer cycle has
        the higher retention score (more expensive to refetch)."""
        from repro.simulation.cache import _Entry
        from repro.simulation.server import BroadcastProgram

        allocation = DRPCDSAllocator().allocate(medium_db, 4).allocation
        program = BroadcastProgram(allocation)
        policy = PIXPolicy()
        policy.bind(program)
        cycles = {
            channel.channel_id: channel.cycle_length
            for channel in program.channels
        }
        short_channel = min(cycles, key=cycles.get)
        long_channel = max(cycles, key=cycles.get)
        fast = allocation.channel_items(short_channel)[0]
        slow = allocation.channel_items(long_channel)[0]
        # Equalise popularity to isolate the broadcast-frequency term.
        fast_like_slow = DataItem(fast.item_id, slow.frequency, fast.size)
        fast_score = policy.score(
            _Entry(item=fast_like_slow, last_used=0.0, use_count=1)
        )
        slow_score = policy.score(
            _Entry(item=slow, last_used=0.0, use_count=1)
        )
        assert slow_score > fast_score


class TestSimulateWithCache:
    @pytest.fixture(scope="class")
    def allocation(self):
        from repro.workloads.generator import WorkloadSpec, generate_database

        db = generate_database(
            WorkloadSpec(num_items=50, skewness=1.2, diversity=1.5, seed=6)
        )
        return DRPCDSAllocator().allocate(db, 5).allocation

    def test_report_shape(self, allocation):
        report = simulate_with_cache(
            allocation, capacity=20.0, num_requests=2000, seed=0
        )
        assert report.hits + report.misses == 2000
        assert 0.0 <= report.hit_rate <= 1.0
        assert report.effective.count == 2000

    def test_zero_capacity_matches_uncached_model(self, allocation):
        from repro.core.cost import average_waiting_time

        report = simulate_with_cache(
            allocation, capacity=0.0, num_requests=30000, seed=1
        )
        assert report.hit_rate == 0.0
        assert report.effective.mean == pytest.approx(
            average_waiting_time(allocation), rel=0.03
        )

    def test_cache_reduces_effective_waiting(self, allocation):
        uncached = simulate_with_cache(
            allocation, capacity=0.0, num_requests=8000, seed=2
        )
        cached = simulate_with_cache(
            allocation, capacity=50.0, num_requests=8000, seed=2
        )
        assert cached.hit_rate > 0.1
        assert cached.effective.mean < uncached.effective.mean

    def test_hit_rate_grows_with_capacity(self, allocation):
        rates = [
            simulate_with_cache(
                allocation, capacity=capacity, num_requests=5000, seed=3
            ).hit_rate
            for capacity in (5.0, 50.0, 500.0)
        ]
        assert rates[0] <= rates[1] <= rates[2]

    def test_policies_all_run(self, allocation):
        for policy in (LRUPolicy(), LFUPolicy(), PIXPolicy()):
            report = simulate_with_cache(
                allocation,
                capacity=30.0,
                policy=policy,
                num_requests=3000,
                seed=4,
            )
            assert report.effective.count == 3000

    def test_validation(self, allocation):
        with pytest.raises(SimulationError):
            simulate_with_cache(allocation, capacity=10.0, num_requests=0)
        with pytest.raises(SimulationError):
            simulate_with_cache(
                allocation, capacity=10.0, arrival_rate=0.0
            )
