"""Property-based tests (hypothesis) for the simulation substrates.

Invariants of channel timing, Broadcast-Disks scheduling, the on-demand
server and query retrieval, for arbitrary valid inputs.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.simulation.channel import BroadcastChannel
from repro.simulation.disks import (
    MultiScheduleChannel,
    broadcast_disk_schedule,
)
from repro.simulation.ondemand import (
    MRFPolicy,
    RxWPolicy,
    simulate_on_demand,
)

_positive = st.floats(
    min_value=1e-2, max_value=1e2, allow_nan=False, allow_infinity=False
)


@st.composite
def item_lists(draw, min_items=1, max_items=10):
    n = draw(st.integers(min_value=min_items, max_value=max_items))
    raw = draw(st.lists(_positive, min_size=n, max_size=n))
    sizes = draw(st.lists(_positive, min_size=n, max_size=n))
    total = math.fsum(raw)
    return [
        DataItem(f"d{i}", f / total, z)
        for i, (f, z) in enumerate(zip(raw, sizes))
    ]


common = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestChannelProperties:
    @common
    @given(item_lists(), st.floats(min_value=0.0, max_value=1e4))
    def test_waiting_time_bounds(self, items, tune_in):
        channel = BroadcastChannel(0, items, 10.0)
        item = items[0]
        wait = channel.waiting_time(item.item_id, tune_in)
        download = item.size / 10.0
        # At least the download, at most a full cycle plus the download.
        assert wait >= download - 1e-9
        assert wait <= channel.cycle_length + download + 1e-9

    @common
    @given(item_lists(min_items=2), st.floats(min_value=0.0, max_value=1e3))
    def test_next_start_is_a_real_slot(self, items, tune_in):
        channel = BroadcastChannel(0, items, 10.0)
        item = items[-1]
        start = channel.next_transmission_start(item.item_id, tune_in)
        assert start >= tune_in - 1e-9
        # Start lies on the item's slot grid: offset + n*cycle.
        offset = channel.slot_offset(item.item_id)
        n = (start - offset) / channel.cycle_length
        assert abs(n - round(n)) < 1e-6

    @common
    @given(item_lists())
    def test_expectation_is_frequency_decomposable(self, items):
        """W^(i) computed two ways agrees (Eq. 1 vs Eq. 2 pieces)."""
        from repro.core.cost import channel_waiting_time, item_waiting_time

        direct = channel_waiting_time(items, bandwidth=10.0)
        total_f = math.fsum(i.frequency for i in items)
        weighted = (
            math.fsum(
                i.frequency * item_waiting_time(i, items, bandwidth=10.0)
                for i in items
            )
            / total_f
        )
        assert direct == pytest.approx(weighted, rel=1e-9)


class TestDiskProperties:
    @common
    @given(
        item_lists(min_items=2, max_items=8),
        st.integers(min_value=1, max_value=4),
    )
    def test_schedule_preserves_items_and_frequencies(self, items, hot_freq):
        middle = max(1, len(items) // 2)
        disks = [items[:middle], items[middle:]]
        if not disks[1]:
            disks = [items[:1], items[1:]] if len(items) > 1 else [items]
        frequencies = [hot_freq, 1][: len(disks)]
        schedule = broadcast_disk_schedule(disks, frequencies)
        channel = MultiScheduleChannel(0, schedule, 10.0)
        for disk, frequency in zip(disks, frequencies):
            for item in disk:
                assert channel.appearances(item.item_id) == frequency

    @common
    @given(item_lists(min_items=2, max_items=8))
    def test_gap_formula_matches_sampling(self, items):
        # Repeat the first item twice, arbitrary positions.
        schedule = [items[0]] + items[1:] + [items[0]]
        channel = MultiScheduleChannel(0, schedule, 10.0)
        expected = channel.expected_waiting_time(items[0].item_id)
        steps = 4000
        sampled = (
            sum(
                channel.waiting_time(
                    items[0].item_id,
                    (k + 0.5) * channel.cycle_length / steps,
                )
                for k in range(steps)
            )
            / steps
        )
        assert sampled == pytest.approx(expected, rel=5e-3)


class TestOnDemandProperties:
    @common
    @given(
        item_lists(min_items=2, max_items=6),
        st.floats(min_value=0.1, max_value=20.0),
        st.integers(min_value=0, max_value=3),
    )
    def test_conservation_and_bounds(self, items, rate, seed):
        database = BroadcastDatabase(items)
        report = simulate_on_demand(
            database,
            policy=RxWPolicy(),
            num_requests=120,
            arrival_rate=rate,
            seed=seed,
        )
        # Every request served exactly once.
        assert report.waiting.count == 120
        # Waits at least the item's own transmission time.
        min_transmission = min(i.size for i in items) / 10.0
        assert report.waiting.minimum >= min_transmission - 1e-9
        # Stretch >= 1 by definition.
        assert report.stretch.minimum >= 1.0 - 1e-9
        # Broadcast count never exceeds request count.
        assert 1 <= report.broadcasts <= 120

    @common
    @given(item_lists(min_items=2, max_items=6), st.integers(0, 3))
    def test_policies_serve_identical_request_sets(self, items, seed):
        database = BroadcastDatabase(items)
        reports = [
            simulate_on_demand(
                database,
                policy=policy,
                num_requests=80,
                arrival_rate=5.0,
                seed=seed,
            )
            for policy in (RxWPolicy(), MRFPolicy())
        ]
        assert reports[0].waiting.count == reports[1].waiting.count == 80
