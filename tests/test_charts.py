"""Unit tests for repro.analysis.charts."""

from __future__ import annotations

import pytest

from repro.analysis.charts import bar_chart, grouped_bar_chart, series_chart


class TestBarChart:
    def test_contains_labels_and_values(self):
        text = bar_chart(["alpha", "b"], [3.0, 1.5])
        assert "alpha" in text
        assert "3" in text
        assert "1.5" in text

    def test_longest_bar_is_maximum(self):
        text = bar_chart(["a", "b"], [10.0, 5.0], width=20)
        lines = text.splitlines()
        assert lines[0].count("█") == 20
        assert lines[1].count("█") == 10

    def test_title_and_unit(self):
        text = bar_chart(["a"], [1.0], title="T", unit="s")
        assert text.splitlines()[0] == "T"
        assert "1s" in text

    def test_zero_values_ok(self):
        text = bar_chart(["a", "b"], [0.0, 0.0])
        assert "█" not in text

    def test_half_block_for_odd_cells(self):
        # value 1 of max 4 at width 2 -> 1 of 4 cells -> half block.
        text = bar_chart(["a", "b"], [1.0, 4.0], width=2)
        assert "▌" in text.splitlines()[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)
        with pytest.raises(ValueError):
            bar_chart(["a"], [float("nan")])


class TestGroupedBarChart:
    def test_structure(self):
        text = grouped_bar_chart(
            ["K=4", "K=8"],
            {"drp": [2.0, 1.0], "gopt": [1.9, 0.9]},
        )
        lines = text.splitlines()
        assert lines[0] == "K=4:"
        assert sum(1 for line in lines if line.endswith(":")) == 2
        assert sum("drp" in line for line in lines) == 2

    def test_common_scale_across_groups(self):
        text = grouped_bar_chart(
            ["g1", "g2"],
            {"s": [10.0, 5.0]},
            width=20,
        )
        bars = [line for line in text.splitlines() if "█" in line]
        assert bars[0].count("█") == 20
        assert bars[1].count("█") == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            grouped_bar_chart([], {"s": []})
        with pytest.raises(ValueError):
            grouped_bar_chart(["g"], {})
        with pytest.raises(ValueError, match="has 1 values"):
            grouped_bar_chart(["g1", "g2"], {"s": [1.0]})


class TestSeriesChart:
    def test_marks_every_point(self):
        text = series_chart([(0, 0), (1, 1), (2, 4)], width=20, height=8)
        assert text.count("*") == 3

    def test_axis_labels(self):
        text = series_chart([(4, 10.0), (10, 2.5)], width=20, height=6)
        assert "10" in text
        assert "2.5" in text
        assert "4" in text

    def test_monotone_series_has_monotone_rows(self):
        """A decreasing series should place later points on lower rows."""
        points = [(1, 4.0), (2, 3.0), (3, 2.0), (4, 1.0)]
        text = series_chart(points, width=16, height=8, title=None)
        rows = [
            (line_index, line.index("*"))
            for line_index, line in enumerate(text.splitlines())
            if "*" in line
        ]
        # Sorted by row (top first) the column must decrease: higher
        # values (top rows) come from smaller x.
        columns = [column for _, column in rows]
        assert columns == sorted(columns)

    def test_flat_series_does_not_crash(self):
        text = series_chart([(0, 1.0), (1, 1.0)], width=10, height=4)
        assert text.count("*") >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            series_chart([(0, 0)])
        with pytest.raises(ValueError):
            series_chart([(0, 0), (1, float("inf"))])
        with pytest.raises(ValueError):
            series_chart([(0, 0), (1, 1)], width=1)
