"""Unit tests for repro.simulation.metrics."""

from __future__ import annotations

import math

import pytest

from repro.simulation.metrics import WaitingTimeCollector, summarize


class TestSummarize:
    def test_basic_statistics(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        # Sample std of 1..4 = sqrt(5/3).
        assert stats.std == pytest.approx(math.sqrt(5.0 / 3.0))

    def test_ci_halfwidth(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0], z_value=2.0)
        assert stats.ci_halfwidth == pytest.approx(2.0 * stats.std / 2.0)
        assert stats.ci_low == pytest.approx(stats.mean - stats.ci_halfwidth)
        assert stats.ci_high == pytest.approx(stats.mean + stats.ci_halfwidth)

    def test_contains(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.contains(stats.mean)
        assert not stats.contains(stats.mean + 10 * stats.ci_halfwidth + 1)

    def test_single_sample(self):
        stats = summarize([5.0])
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.ci_halfwidth == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestCollector:
    def test_records_and_counts(self):
        collector = WaitingTimeCollector()
        collector.record("a", 1.0)
        collector.record("a", 3.0)
        collector.record("b", 2.0)
        assert collector.count == 3
        assert set(collector.item_ids) == {"a", "b"}

    def test_overall_summary(self):
        collector = WaitingTimeCollector()
        for value in (1.0, 3.0, 2.0):
            collector.record("x", value)
        assert collector.overall().mean == pytest.approx(2.0)

    def test_per_item_summary(self):
        collector = WaitingTimeCollector()
        collector.record("a", 1.0)
        collector.record("a", 3.0)
        collector.record("b", 10.0)
        assert collector.for_item("a").mean == pytest.approx(2.0)
        assert collector.for_item("b").mean == pytest.approx(10.0)

    def test_unknown_item_returns_none(self):
        collector = WaitingTimeCollector()
        assert collector.for_item("never") is None

    def test_negative_waiting_time_rejected(self):
        collector = WaitingTimeCollector()
        with pytest.raises(ValueError):
            collector.record("a", -0.1)

    def test_zero_waiting_time_allowed(self):
        collector = WaitingTimeCollector()
        collector.record("a", 0.0)
        assert collector.overall().mean == 0.0
