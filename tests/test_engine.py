"""Unit tests for the DES kernel (repro.simulation.engine, .events)."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import SimulationError
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event, EventPriority


class TestEventOrdering:
    def test_time_orders_first(self):
        a = Event(1.0, 0, 5, callback=lambda: None)
        b = Event(2.0, 0, 1, callback=lambda: None)
        assert a < b

    def test_priority_breaks_time_ties(self):
        delivery = Event(1.0, EventPriority.DELIVERY, 9, callback=lambda: None)
        arrival = Event(1.0, EventPriority.ARRIVAL, 1, callback=lambda: None)
        assert delivery < arrival

    def test_sequence_breaks_remaining_ties(self):
        first = Event(1.0, 0, 1, callback=lambda: None)
        second = Event(1.0, 0, 2, callback=lambda: None)
        assert first < second

    def test_cancel_flag(self):
        event = Event(1.0, 0, 1, callback=lambda: None)
        assert not event.cancelled
        event.cancel()
        assert event.cancelled


class TestScheduling:
    def test_schedule_at_runs_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(3.0, lambda: fired.append("late"))
        engine.schedule_at(1.0, lambda: fired.append("early"))
        engine.schedule_at(2.0, lambda: fired.append("middle"))
        assert engine.run() == 3
        assert fired == ["early", "middle", "late"]

    def test_schedule_after_is_relative(self):
        engine = SimulationEngine()
        times = []
        engine.schedule_at(5.0, lambda: engine.schedule_after(
            2.5, lambda: times.append(engine.now)
        ))
        engine.run()
        assert times == [7.5]

    def test_past_scheduling_rejected(self):
        engine = SimulationEngine()
        engine.schedule_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError, match="before current time"):
            engine.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, lambda: None)

    @pytest.mark.parametrize("bad", [math.nan, math.inf])
    def test_nonfinite_time_rejected(self, bad):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_at(bad, lambda: None)

    def test_same_time_fifo(self):
        engine = SimulationEngine()
        fired = []
        for tag in ("a", "b", "c"):
            engine.schedule_at(
                1.0, lambda t=tag: fired.append(t)
            )
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_priority_overrides_fifo(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(
            1.0, lambda: fired.append("arrival"),
            priority=EventPriority.ARRIVAL,
        )
        engine.schedule_at(
            1.0, lambda: fired.append("delivery"),
            priority=EventPriority.DELIVERY,
        )
        engine.run()
        assert fired == ["delivery", "arrival"]


class TestExecution:
    def test_clock_monotone(self):
        engine = SimulationEngine()
        observed = []
        for t in (4.0, 1.0, 3.0, 2.0):
            engine.schedule_at(t, lambda: observed.append(engine.now))
        engine.run()
        assert observed == sorted(observed)

    def test_step_returns_false_when_empty(self):
        engine = SimulationEngine()
        assert engine.step() is False

    def test_run_until_stops_and_advances_clock(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(10.0, lambda: fired.append(10))
        executed = engine.run(until=5.0)
        assert executed == 1
        assert fired == [1]
        assert engine.now == 5.0
        # Remaining event still runs later.
        engine.run()
        assert fired == [1, 10]

    def test_max_events_cap(self):
        engine = SimulationEngine()

        def reschedule():
            engine.schedule_after(1.0, reschedule)

        engine.schedule_at(0.0, reschedule)
        executed = engine.run(max_events=25)
        assert executed == 25

    def test_cancelled_events_skipped(self):
        engine = SimulationEngine()
        fired = []
        keep = engine.schedule_at(1.0, lambda: fired.append("keep"))
        drop = engine.schedule_at(2.0, lambda: fired.append("drop"))
        drop.cancel()
        engine.run()
        assert fired == ["keep"]
        del keep

    def test_processed_and_pending_counters(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda: None)
        cancelled = engine.schedule_at(2.0, lambda: None)
        cancelled.cancel()
        engine.schedule_at(3.0, lambda: None)
        assert engine.pending_events == 2
        engine.run()
        assert engine.processed_events == 2
        assert engine.pending_events == 0

    def test_double_cancel_decrements_once(self):
        engine = SimulationEngine()
        event = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert engine.pending_events == 1
        engine.run()
        assert engine.pending_events == 0

    def test_cancel_after_pop_does_not_skew_counter(self):
        engine = SimulationEngine()
        events = []
        events.append(engine.schedule_at(1.0, lambda: None))
        engine.schedule_at(2.0, lambda: None)
        engine.run()
        assert engine.pending_events == 0
        # Cancelling an already-executed event must be a no-op for the
        # live counter, not drive it negative.
        events[0].cancel()
        assert engine.pending_events == 0

    def test_run_not_reentrant(self):
        engine = SimulationEngine()

        def nested():
            engine.run()

        engine.schedule_at(1.0, nested)
        with pytest.raises(SimulationError, match="re-entrant"):
            engine.run()

    def test_callbacks_can_chain(self):
        """A three-stage pipeline driven purely by event chaining."""
        engine = SimulationEngine()
        stages = []

        def stage(n):
            stages.append((n, engine.now))
            if n < 3:
                engine.schedule_after(n + 1.0, lambda: stage(n + 1))

        engine.schedule_at(0.0, lambda: stage(1))
        engine.run()
        assert stages == [(1, 0.0), (2, 2.0), (3, 5.0)]
