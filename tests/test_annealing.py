"""Unit tests for the simulated-annealing comparator."""

from __future__ import annotations

import pytest

from repro.baselines.annealing import AnnealingAllocator, AnnealingParameters
from repro.core.cost import allocation_cost, move_delta
from repro.core.drp import drp_allocate
from repro.exceptions import InfeasibleProblemError


def quick_params(**overrides):
    defaults = dict(epochs=20, moves_per_epoch=50)
    defaults.update(overrides)
    return AnnealingParameters(**defaults)


class TestParameters:
    def test_resolved_defaults_scale_with_n(self):
        params = AnnealingParameters()
        assert params.resolved_epochs(100) == 110
        assert params.resolved_moves(100) == 1000

    def test_explicit_values_win(self):
        params = quick_params()
        assert params.resolved_epochs(1000) == 20
        assert params.resolved_moves(1000) == 50


class TestAllocator:
    def test_valid_partition(self, medium_db):
        outcome = AnnealingAllocator(quick_params()).allocate(medium_db, 5)
        ids = sorted(
            i for group in outcome.allocation.as_id_lists() for i in group
        )
        assert ids == sorted(medium_db.item_ids)
        assert all(s.count >= 1 for s in outcome.allocation.channel_stats)

    def test_deterministic_for_seed(self, medium_db):
        a = AnnealingAllocator(quick_params(), seed=3).allocate(medium_db, 5)
        b = AnnealingAllocator(quick_params(), seed=3).allocate(medium_db, 5)
        assert a.allocation.as_id_lists() == b.allocation.as_id_lists()

    def test_never_worse_than_drp_seed(self, medium_db):
        """The final CDS descent guarantees a local optimum <= DRP."""
        annealed = AnnealingAllocator(quick_params()).allocate(medium_db, 6)
        rough = drp_allocate(medium_db, 6)
        assert annealed.cost <= rough.cost + 1e-9

    def test_result_is_local_optimum(self, medium_db):
        outcome = AnnealingAllocator(quick_params()).allocate(medium_db, 4)
        stats = outcome.allocation.channel_stats
        for origin, group in enumerate(outcome.allocation.channels):
            for item in group:
                for dest in range(outcome.allocation.num_channels):
                    if dest == origin:
                        continue
                    assert (
                        move_delta(
                            item,
                            origin_frequency=stats[origin].frequency,
                            origin_size=stats[origin].size,
                            dest_frequency=stats[dest].frequency,
                            dest_size=stats[dest].size,
                        )
                        <= 1e-9
                    )

    def test_metadata(self, medium_db):
        outcome = AnnealingAllocator(quick_params()).allocate(medium_db, 5)
        assert outcome.metadata["accepted_moves"] >= 0
        assert outcome.metadata["final_descent_moves"] >= 0
        assert outcome.cost == pytest.approx(
            allocation_cost(outcome.allocation)
        )

    def test_infeasible_rejected(self, tiny_db):
        with pytest.raises(InfeasibleProblemError):
            AnnealingAllocator(quick_params()).allocate(tiny_db, 9)
