"""Unit tests for the metamorphic relations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cds import cds_refine
from repro.core.drp import drp_allocate
from repro.verify.metamorphic import (
    relation_frequency_renormalization,
    relation_merge_split,
    relation_monotone_channels,
    relation_permutation,
    relation_size_scaling,
)
from repro.workloads.generator import WorkloadSpec, generate_database


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture(
    params=[
        WorkloadSpec(num_items=12, skewness=0.6, diversity=1.0, seed=11),
        WorkloadSpec(num_items=48, skewness=1.1, diversity=2.0, seed=12),
    ],
    ids=["n12", "n48"],
)
def database(request):
    return generate_database(request.param)


class TestPermutation:
    def test_clean_on_refined_allocation(self, database, rng):
        allocation = cds_refine(drp_allocate(database, 4).allocation).allocation
        assert relation_permutation(allocation, rng) == []

    def test_clean_on_paper_allocation(self, paper_db, rng):
        allocation = drp_allocate(paper_db, 5).allocation
        assert relation_permutation(allocation, rng) == []


class TestSizeScaling:
    @pytest.mark.parametrize("factor", (2.0, 0.5, 4.0))
    def test_clean_for_powers_of_two(self, database, factor):
        assert relation_size_scaling(database, 4, factor=factor) == []

    def test_rejects_non_power_of_two(self, database):
        with pytest.raises(ValueError, match="power of two"):
            relation_size_scaling(database, 4, factor=3.0)


class TestFrequencyRenormalization:
    @pytest.mark.parametrize("factor", (2.0, 0.25))
    def test_clean_for_powers_of_two(self, database, factor):
        assert (
            relation_frequency_renormalization(database, 4, factor=factor)
            == []
        )


class TestMonotoneChannels:
    def test_clean_on_generated_databases(self, database):
        assert relation_monotone_channels(database) == []

    def test_clean_on_paper_database(self, paper_db):
        assert relation_monotone_channels(paper_db) == []


class TestMergeSplit:
    def test_clean_on_refined_allocation(self, database, rng):
        allocation = cds_refine(drp_allocate(database, 4).allocation).allocation
        assert relation_merge_split(allocation, rng) == []

    def test_clean_on_paper_allocation(self, paper_db, rng):
        allocation = drp_allocate(paper_db, 5).allocation
        assert relation_merge_split(allocation, rng) == []
