"""Large-N smoke: the array-resident pipeline at N=10^5 in seconds.

Gated behind ``REPRO_LARGE_SMOKE=1`` so the tier-1 suite's selection
and runtime are unchanged; CI runs it as its own step on every matrix
leg.  The point is not micro-benchmarking — it is that DRP, CDS and
the SMAWK DP *complete* at 10^5 items in seconds-scale wall clock
(an accidental O(N²) slip or per-item object churn would blow the CI
step's budget immediately) while creating zero per-item objects and
keeping the SMAWK/divide-and-conquer bitwise cost parity.
"""

from __future__ import annotations

import os

import pytest

from repro.core.cds import cds_refine
from repro.core.cost import allocation_cost
from repro.core.drp import drp_allocate
from repro.core.item import items_created
from repro.core.partition import PrefixSums, contiguous_optimal
from repro.workloads.generator import WorkloadSpec, generate_database

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_LARGE_SMOKE") != "1",
    reason="large-N smoke runs only with REPRO_LARGE_SMOKE=1 (CI step)",
)

NUM_ITEMS = 100_000
NUM_CHANNELS = 64

#: CI exercises the dirty-pair incremental scan on one matrix leg by
#: exporting ``REPRO_SMOKE_SCAN=incremental``; everywhere else the
#: default "auto" resolves per the crossover (incremental at this tier
#: on the numpy backend).
SMOKE_SCAN = os.environ.get("REPRO_SMOKE_SCAN", "auto")


@pytest.fixture(scope="module")
def large_database():
    return generate_database(
        WorkloadSpec(
            num_items=NUM_ITEMS, skewness=0.8, diversity=1.5, seed=7
        )
    )


def test_drp_and_cds_zero_churn(large_database):
    before = items_created()
    allocation = drp_allocate(large_database, NUM_CHANNELS).allocation
    drp_cost = allocation_cost(allocation)
    refined = cds_refine(allocation, max_iterations=3, scan=SMOKE_SCAN)
    assert items_created() == before
    assert refined.cost <= drp_cost
    assert sum(
        len(group) for group in refined.allocation.channel_index_groups
    ) == NUM_ITEMS


def test_incremental_scan_parity_at_scale(large_database):
    """First moves at N=10^5/K=64: incremental == full, far fewer Δc.

    A capped budget keeps the full-scan reference seconds-scale while
    still exercising the dirty-pair refresh path (cold build + two
    apply_move rounds) at a tier where a stale cell would surface.
    """
    allocation = drp_allocate(large_database, NUM_CHANNELS).allocation
    full = cds_refine(
        allocation, max_iterations=3, backend="numpy", scan="full"
    )
    incr = cds_refine(
        allocation, max_iterations=3, backend="numpy", scan="incremental"
    )
    assert [
        (m.item_id, m.origin, m.destination, m.delta, m.cost_after)
        for m in incr.moves
    ] == [
        (m.item_id, m.origin, m.destination, m.delta, m.cost_after)
        for m in full.moves
    ]
    assert incr.cost == full.cost  # bitwise
    assert incr.delta_evaluations < full.delta_evaluations


def test_smawk_parity_at_scale(large_database):
    order = large_database.benefit_ratio_order()
    sums = PrefixSums.from_arrays(
        large_database.frequencies[order], large_database.sizes[order]
    )
    k = 8  # keeps the divide-and-conquer reference seconds-scale
    smawk_bounds, smawk_cost = contiguous_optimal(
        None, k, method="smawk", sums=sums
    )
    _, dc_cost = contiguous_optimal(
        None, k, method="divide-conquer", sums=sums
    )
    assert smawk_cost == dc_cost
    assert len(smawk_bounds) == k
    assert smawk_bounds[0][0] == 0 and smawk_bounds[-1][1] == NUM_ITEMS
