"""Tests for the dirty-pair incremental CDS scan (``scan="incremental"``).

The incremental scan maintains a K×K best-move candidate matrix and,
after each executed move, recomputes only the cells whose origin or
destination aggregates changed.  Its contract is *bitwise* equality
with the full-scan backends: the same move sequence, the same deltas,
the same final allocation — only the number of Δc evaluations differs.
Every test here is a facet of that contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import kernels
from repro.core.allocation import ChannelAllocation
from repro.core.cds import cds_refine
from repro.core.cost import allocation_cost
from repro.core.database import BroadcastDatabase
from repro.core.drp import drp_allocate
from repro.exceptions import ReproError
from repro.core.item import DataItem
from repro.core.kernels import (
    CDS_INCREMENTAL_SCAN_CROSSOVER,
    CDSPairIndex,
    resolve_scan,
)
from repro.workloads.generator import WorkloadSpec, generate_database

from .test_cds import worst_case_seed


def move_tuples(result):
    """The full move trajectory as comparable tuples (bitwise floats)."""
    return [
        (m.item_id, m.origin, m.destination, m.delta, m.cost_after)
        for m in result.moves
    ]


def assert_identical_runs(full, incremental):
    """Bitwise move-sequence + allocation parity between two results."""
    assert move_tuples(incremental) == move_tuples(full)
    assert incremental.cost == full.cost  # bitwise, not approx
    assert (
        incremental.allocation.as_id_lists() == full.allocation.as_id_lists()
    )
    assert incremental.converged == full.converged


# ----------------------------------------------------------------------
# Move-sequence parity vs both existing backends
# ----------------------------------------------------------------------


class TestMoveSequenceParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_eight_seed_parity_vs_both_backends(self, seed):
        """The issue's 8-seed sweep: python == numpy-full == incremental."""
        db = generate_database(
            WorkloadSpec(
                num_items=48,
                skewness=0.4 + 0.15 * seed,
                diversity=0.5 + 0.25 * seed,
                seed=9000 + seed,
            )
        )
        k = 3 + seed % 5
        alloc = worst_case_seed(db, k)
        python = cds_refine(alloc, backend="python", scan="full")
        vector = cds_refine(alloc, backend="numpy", scan="full")
        incr = cds_refine(alloc, backend="numpy", scan="incremental")
        assert_identical_runs(python, vector)
        assert_identical_runs(python, incr)

    def test_tie_heavy_uniform_database(self):
        """Equal f·z everywhere makes every candidate tie; the index
        must still pick the same (origin, position, destination) as the
        scan-order backends."""
        n = 24
        db = BroadcastDatabase(
            [DataItem(f"u{i}", 1.0 / n, 3.0) for i in range(n)]
        )
        for k in (3, 4, 6):
            alloc = worst_case_seed(db, k)
            full = cds_refine(alloc, backend="numpy", scan="full")
            incr = cds_refine(alloc, backend="numpy", scan="incremental")
            assert_identical_runs(full, incr)

    def test_paper_golden_trajectory(self, paper_db, paper_goldens):
        """The Table-2 worked example (22.29 optimum) move for move."""
        rough = drp_allocate(
            paper_db,
            paper_goldens["num_channels"],
            split_policy="max-reduction",
        )
        full = cds_refine(rough.allocation, backend="numpy", scan="full")
        incr = cds_refine(
            rough.allocation, backend="numpy", scan="incremental"
        )
        assert_identical_runs(full, incr)
        assert incr.cost == pytest.approx(paper_goldens["cds_cost"], abs=0.01)
        got = [
            {"item": m.item_id, "delta": m.delta, "cost_after": m.cost_after}
            for m in incr.moves
        ]
        for want, move in zip(paper_goldens["cds_moves"], got):
            assert move["item"] == want["item"]
            assert move["delta"] == pytest.approx(want["delta"], abs=0.01)
            assert move["cost_after"] == pytest.approx(
                want["cost_after"], abs=0.01
            )

    def test_long_move_chain_staleness(self):
        """Hundreds of moves from a pathological seed: every cached cell
        the index *didn't* refresh must still be exact, or the sequences
        diverge somewhere down the chain."""
        db = generate_database(
            WorkloadSpec(
                num_items=400, skewness=1.2, diversity=2.5, seed=77
            )
        )
        alloc = worst_case_seed(db, 12)
        full = cds_refine(alloc, backend="numpy", scan="full")
        incr = cds_refine(alloc, backend="numpy", scan="incremental")
        assert len(full.moves) > 100  # genuinely long chain
        assert_identical_runs(full, incr)

    def test_capped_runs_agree(self, medium_db):
        seed = worst_case_seed(medium_db, 5)
        for budget in (1, 2, 3):
            full = cds_refine(
                seed, backend="numpy", scan="full", max_iterations=budget
            )
            incr = cds_refine(
                seed,
                backend="numpy",
                scan="incremental",
                max_iterations=budget,
            )
            assert_identical_runs(full, incr)


# ----------------------------------------------------------------------
# Warm-start composition
# ----------------------------------------------------------------------


class TestWarmStartComposition:
    def test_initial_plus_incremental_scan(self, medium_db):
        """``initial=`` warm starts compose with ``scan="incremental"``:
        both scans resume from the same seeded allocation and agree."""
        rough = drp_allocate(medium_db, 5)
        seeded = cds_refine(
            rough.allocation, max_iterations=1, backend="numpy"
        )
        full = cds_refine(
            rough.allocation,
            initial=seeded.allocation,
            backend="numpy",
            scan="full",
        )
        incr = cds_refine(
            rough.allocation,
            initial=seeded.allocation,
            backend="numpy",
            scan="incremental",
        )
        assert_identical_runs(full, incr)
        assert incr.initial_cost == full.initial_cost

    def test_warm_start_refine_forwards_scan(self, medium_db):
        from repro.core.incremental import warm_start_refine

        rough = drp_allocate(medium_db, 5)
        base = cds_refine(rough.allocation, backend="numpy")
        shifted = generate_database(
            WorkloadSpec(num_items=30, skewness=0.9, diversity=1.5, seed=1234)
        )
        full = warm_start_refine(
            shifted, 5, base.allocation, backend="numpy", scan="full"
        )
        incr = warm_start_refine(
            shifted, 5, base.allocation, backend="numpy", scan="incremental"
        )
        assert incr.mode == full.mode
        assert incr.cost == full.cost  # bitwise
        assert incr.allocation.as_id_lists() == full.allocation.as_id_lists()


# ----------------------------------------------------------------------
# Evaluation accounting
# ----------------------------------------------------------------------


class TestEvaluationAccounting:
    def test_full_scan_measures_equal_derived(self, medium_db):
        """On the full scan, measured == the old derived count."""
        result = cds_refine(
            worst_case_seed(medium_db, 5), backend="numpy", scan="full"
        )
        assert result.delta_evaluations == result.full_scan_equivalent

    def test_python_backend_measures_equal_derived(self, medium_db):
        result = cds_refine(
            worst_case_seed(medium_db, 5), backend="python"
        )
        assert result.delta_evaluations == result.full_scan_equivalent

    def test_incremental_evaluates_fewer(self, medium_db):
        """Past the cold build, dirty-pair work undercuts full rescans."""
        seed = worst_case_seed(medium_db, 5)
        full = cds_refine(seed, backend="numpy", scan="full")
        incr = cds_refine(seed, backend="numpy", scan="incremental")
        assert len(incr.moves) > 2  # enough moves to amortise the build
        assert incr.delta_evaluations < full.delta_evaluations
        assert incr.delta_evaluations < incr.full_scan_equivalent

    def test_scan_mode_recorded_on_result(self, medium_db):
        seed = worst_case_seed(medium_db, 5)
        assert cds_refine(seed, backend="numpy", scan="full").scan_mode == (
            "full"
        )
        assert cds_refine(
            seed, backend="numpy", scan="incremental"
        ).scan_mode == "incremental"
        assert cds_refine(seed, backend="python").scan_mode == "full"


# ----------------------------------------------------------------------
# Chunked / threaded cold scan determinism
# ----------------------------------------------------------------------


class TestChunkedScanDeterminism:
    def make_index(self, db, k, **kwargs):
        alloc = worst_case_seed(db, k)
        groups = [
            [int(i) for i in group] for group in alloc.channel_index_groups
        ]
        stats = alloc.channel_stats
        agg_f = np.array([s.frequency for s in stats], dtype=np.float64)
        agg_z = np.array([s.size for s in stats], dtype=np.float64)
        return CDSPairIndex(
            db.frequencies, db.sizes, groups, agg_f, agg_z, **kwargs
        )

    def test_worker_count_invariance(self):
        db = generate_database(
            WorkloadSpec(num_items=200, skewness=1.0, diversity=2.0, seed=5)
        )
        base = self.make_index(db, 8, workers=1)
        for workers in (2, 3, 8):
            other = self.make_index(db, 8, workers=workers)
            assert np.array_equal(other.best_delta, base.best_delta)
            assert np.array_equal(other.best_pos, base.best_pos)

    def test_chunk_size_invariance(self):
        """Tiny chunk budgets force many partial merges; the leftmost-tie
        fold must land on the same candidates as one monolithic scan."""
        db = generate_database(
            WorkloadSpec(num_items=150, skewness=0.7, diversity=1.0, seed=6)
        )
        base = self.make_index(db, 6)
        for chunk in (64, 257, 1024):
            other = self.make_index(db, 6, chunk_elements=chunk)
            assert np.array_equal(other.best_delta, base.best_delta)
            assert np.array_equal(other.best_pos, base.best_pos)

    def test_refine_with_workers_matches_serial(self, medium_db):
        seed = worst_case_seed(medium_db, 5)
        serial = cds_refine(seed, backend="numpy", scan="incremental")
        threaded = cds_refine(
            seed, backend="numpy", scan="incremental", scan_workers=4
        )
        assert_identical_runs(serial, threaded)


# ----------------------------------------------------------------------
# Scan-mode resolution
# ----------------------------------------------------------------------


class TestResolveScan:
    def test_auto_small_stays_full(self):
        assert resolve_scan("auto", "numpy", 1000, 8) == "full"

    def test_auto_large_goes_incremental(self):
        n = CDS_INCREMENTAL_SCAN_CROSSOVER  # N·(K−1) ≥ crossover
        assert resolve_scan("auto", "numpy", n, 8) == "incremental"

    def test_auto_python_backend_stays_full(self):
        assert resolve_scan("auto", "python", 10**7, 128) == "full"

    def test_auto_two_channels_stays_full(self):
        """K=2 dirties every cell on each move — nothing to cache."""
        assert resolve_scan("auto", "numpy", 10**7, 2) == "full"

    def test_explicit_modes_pass_through(self):
        assert resolve_scan("full", "numpy", 10**7, 128) == "full"
        assert resolve_scan("incremental", "numpy", 10, 2) == "incremental"

    def test_unknown_scan_rejected(self):
        with pytest.raises(ReproError, match="unknown scan"):
            resolve_scan("sideways", "numpy", 10, 4)

    def test_incremental_on_python_rejected(self):
        with pytest.raises(ReproError, match="numpy backend"):
            resolve_scan("incremental", "python", 10, 4)

    def test_cds_refine_rejects_bad_combo(self, medium_db):
        with pytest.raises(ReproError):
            cds_refine(
                worst_case_seed(medium_db, 4),
                backend="python",
                scan="incremental",
            )

    def test_kernels_export_scan_constants(self):
        assert "incremental" in kernels.SCAN_MODES
        assert kernels.CDS_SCAN_MAX_WORKERS >= 1


# ----------------------------------------------------------------------
# Zero-budget fast path
# ----------------------------------------------------------------------


class TestZeroBudget:
    def test_zero_budget_is_constant_work(self, medium_db):
        from repro.core.item import items_created

        seed = worst_case_seed(medium_db, 5)
        before = items_created()
        result = cds_refine(seed, max_iterations=0)
        assert items_created() == before  # no DataItem churn at all
        assert result.iterations == 0
        assert result.delta_evaluations == 0
        assert not result.converged
        assert result.allocation is seed
        assert result.cost == pytest.approx(allocation_cost(seed))

    def test_zero_budget_all_scan_modes(self, medium_db):
        seed = worst_case_seed(medium_db, 5)
        for kwargs in (
            {"backend": "python"},
            {"backend": "numpy", "scan": "full"},
            {"backend": "numpy", "scan": "incremental"},
        ):
            result = cds_refine(seed, max_iterations=0, **kwargs)
            assert result.iterations == 0
            assert result.delta_evaluations == 0
