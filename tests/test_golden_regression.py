"""Golden regression tests: frozen outputs of the deterministic stack.

Every algorithm here is deterministic given a workload seed, so exact
costs can be frozen.  A failure means an algorithm's behaviour changed
— which must be a conscious decision, not an accident.  (Tolerances are
1e-6 relative, room for benign floating-point reassociation only.)

Golden values were produced by the current implementation; the paper's
own worked-example goldens live in tests/test_paper_example.py.
"""

from __future__ import annotations

import pytest

import repro.baselines  # noqa: F401  (registers allocators)
from repro.core.scheduler import make_allocator
from repro.workloads.generator import WorkloadSpec, generate_database

#: (seed, num_items, num_channels) -> {algorithm: frozen cost}
GOLDEN = {
    (11, 40, 5): {
        "vfk": 88.3803868171,
        "drp": 73.0925088202,
        "drp-cds": 66.5054231463,
        "contiguous-dp": 66.5054231463,
        "greedy": 72.3271278674,
    },
    (11, 75, 8): {
        "vfk": 90.0311765412,
        "drp": 64.9572987755,
        "drp-cds": 64.3855193785,
        "contiguous-dp": 64.5353179701,
        "greedy": 68.8461025918,
    },
    (22, 40, 5): {
        "vfk": 82.0637143495,
        "drp": 70.1291697340,
        "drp-cds": 66.3128026161,
        "contiguous-dp": 65.6118536601,
        "greedy": 69.2594756370,
    },
    (22, 75, 8): {
        "vfk": 113.1891542623,
        "drp": 88.7559419083,
        "drp-cds": 88.3654443139,
        "contiguous-dp": 88.3569589935,
        "greedy": 95.0314582297,
    },
}


@pytest.mark.parametrize("instance", sorted(GOLDEN))
def test_frozen_costs(instance):
    seed, num_items, num_channels = instance
    database = generate_database(
        WorkloadSpec(
            num_items=num_items, skewness=0.9, diversity=1.8, seed=seed
        )
    )
    for algorithm, frozen in GOLDEN[instance].items():
        cost = make_allocator(algorithm).allocate(database, num_channels).cost
        assert cost == pytest.approx(frozen, rel=1e-6), algorithm


def test_workload_generation_is_frozen():
    """The workload generator itself is part of the deterministic
    contract: figures are only comparable across machines if the same
    seed yields the same database."""
    database = generate_database(
        WorkloadSpec(num_items=5, skewness=0.9, diversity=1.8, seed=11)
    )
    frequencies = [item.frequency for item in database.items]
    sizes = [item.size for item in database.items]
    assert frequencies == pytest.approx(
        [0.41151820, 0.22052714, 0.15310167, 0.11817757, 0.09667542],
        rel=1e-6,
    )
    assert sizes == pytest.approx(
        [1.70383041, 12.09753936, 7.91954357, 1.12626403, 1.84614986],
        rel=1e-6,
    )


def test_golden_values_cover_expected_orderings():
    """Meta-check: the frozen numbers themselves tell the paper's story
    (VF^K worst, CDS refines DRP, DP within family optimum)."""
    for values in GOLDEN.values():
        assert values["drp-cds"] <= values["drp"]
        assert values["drp"] < values["vfk"]
        # DRP is never better than the contiguous-family optimum.
        assert values["contiguous-dp"] <= values["drp"] + 1e-9
