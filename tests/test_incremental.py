"""Tests for incremental program maintenance (repro.core.incremental)."""

from __future__ import annotations

import pytest

from repro.core.cost import allocation_cost
from repro.core.incremental import insert_item, remove_item, update_frequency
from repro.core.item import DataItem
from repro.core.scheduler import DRPCDSAllocator
from repro.exceptions import InfeasibleProblemError, InvalidDatabaseError


@pytest.fixture
def base(medium_db):
    return DRPCDSAllocator().allocate(medium_db, 4).allocation


class TestInsertItem:
    def test_item_added_and_partition_valid(self, base):
        new = DataItem("fresh", 0.05, 7.5)
        database, allocation = insert_item(base, new)
        assert "fresh" in database
        assert database.is_normalized
        ids = sorted(i.item_id for g in allocation.channels for i in g)
        assert ids == sorted(database.item_ids)

    def test_duplicate_rejected(self, base):
        existing = base.database.items[0]
        with pytest.raises(InvalidDatabaseError, match="already exists"):
            insert_item(base, existing)

    def test_without_repolish_item_lands_greedily(self, base):
        new = DataItem("fresh", 0.001, 0.001)
        _, allocation = insert_item(base, new, repolish=False)
        target = allocation.channel_of("fresh")
        # The near-zero item should cause near-zero marginal cost; the
        # chosen channel must minimise F_g*z + Z_g*f among channels.
        stats = base.channel_stats
        marginals = [
            stats[g].frequency * new.size + stats[g].size * new.frequency
            for g in range(base.num_channels)
        ]
        assert marginals[target] == pytest.approx(min(marginals))

    def test_repolish_is_local_optimum(self, base):
        from repro.core.cds import cds_refine

        _, allocation = insert_item(base, DataItem("fresh", 0.1, 30.0))
        assert cds_refine(allocation).iterations == 0

    def test_inputs_untouched(self, base):
        before = base.as_id_lists()
        insert_item(base, DataItem("fresh", 0.05, 1.0))
        assert base.as_id_lists() == before

    def test_incremental_close_to_rebuild(self, base):
        """Warm-start quality: within a few % of a full re-run."""
        new = DataItem("fresh", 0.08, 12.0)
        database, incremental = insert_item(base, new)
        rebuilt = DRPCDSAllocator().allocate(database, 4)
        assert allocation_cost(incremental) <= rebuilt.cost * 1.05


class TestRemoveItem:
    def test_item_gone_partition_valid(self, base):
        victim = base.database.items[3].item_id
        database, allocation = remove_item(base, victim)
        assert victim not in database
        assert database.is_normalized
        ids = sorted(i.item_id for g in allocation.channels for i in g)
        assert ids == sorted(database.item_ids)

    def test_unknown_item_rejected(self, base):
        with pytest.raises(InvalidDatabaseError, match="no item"):
            remove_item(base, "zz")

    def test_emptied_channel_is_dropped(self):
        from repro.core.allocation import ChannelAllocation
        from repro.core.database import BroadcastDatabase

        db = BroadcastDatabase(
            [
                DataItem("a", 0.5, 1.0),
                DataItem("b", 0.3, 2.0),
                DataItem("c", 0.2, 3.0),
            ]
        )
        allocation = ChannelAllocation(
            db, [[db["a"]], [db["b"], db["c"]]]
        )
        _, refreshed = remove_item(allocation, "a", repolish=False)
        assert refreshed.num_channels == 1

    def test_last_item_rejected(self):
        from repro.core.allocation import ChannelAllocation
        from repro.core.database import BroadcastDatabase

        db = BroadcastDatabase([DataItem("only", 1.0, 1.0)])
        allocation = ChannelAllocation(db, [db.items])
        with pytest.raises(InfeasibleProblemError):
            remove_item(allocation, "only")

    def test_removal_lowers_cost(self, base):
        heavy = max(base.database.items, key=lambda i: i.weight)
        _, refreshed = remove_item(base, heavy.item_id, repolish=False)
        # On the renormalised scale comparisons are apples-to-oranges,
        # but the physical invariant holds: fewer bytes on the air.
        assert (
            refreshed.database.total_size
            < base.database.total_size
        )


class TestUpdateFrequency:
    def test_profile_renormalised(self, base):
        item_id = base.database.items[0].item_id
        database, allocation = update_frequency(base, item_id, 0.5)
        assert database.is_normalized
        ids = sorted(i.item_id for g in allocation.channels for i in g)
        assert ids == sorted(database.item_ids)

    def test_promoted_item_moves_to_hotter_channel(self, medium_db):
        allocation = DRPCDSAllocator().allocate(medium_db, 4).allocation
        cold = medium_db.sorted_by_frequency()[-1]
        # Make the coldest item dominant; after the repolish it should
        # not share a channel with many heavy items anymore.
        database, refreshed = update_frequency(
            allocation, cold.item_id, 5.0
        )
        assert database[cold.item_id].frequency > 0.8
        new_channel = refreshed.channel_of(cold.item_id)
        stats = refreshed.channel_stats[new_channel]
        # Its channel's aggregate size should be small relative to the
        # whole catalogue — the classic hot-item isolation.
        assert stats.size < database.total_size / 2

    def test_validation(self, base):
        with pytest.raises(InvalidDatabaseError, match="no item"):
            update_frequency(base, "zz", 0.5)
        item_id = base.database.items[0].item_id
        with pytest.raises(InvalidDatabaseError, match="positive"):
            update_frequency(base, item_id, 0.0)

    def test_noop_update_keeps_cost(self, base):
        item = base.database.items[0]
        database, refreshed = update_frequency(
            base, item.item_id, item.frequency, repolish=False
        )
        assert allocation_cost(refreshed) == pytest.approx(
            allocation_cost(base), rel=1e-9
        )


class TestChainedEdits:
    def test_long_edit_sequence_stays_consistent(self, base):
        """A realistic day: add two items, drop one, repesize one."""
        database, allocation = insert_item(
            base, DataItem("n1", 0.03, 4.0)
        )
        database, allocation = insert_item(
            allocation, DataItem("n2", 0.02, 40.0)
        )
        victim = database.items[5].item_id
        database, allocation = remove_item(allocation, victim)
        hot = database.sorted_by_frequency()[0].item_id
        database, allocation = update_frequency(allocation, hot, 0.5)
        ids = sorted(i.item_id for g in allocation.channels for i in g)
        assert ids == sorted(database.item_ids)
        assert database.is_normalized
        from repro.core.cds import cds_refine

        assert cds_refine(allocation).iterations == 0
