"""Schema validation for observability artifacts.

Importable by the test suite and runnable as a script — the Makefile's
``trace-smoke`` target points it at the files a tiny traced sweep just
wrote:

    python tests/trace_schema.py --trace t.jsonl --chrome t.json \
        --metrics m.json --manifest t.manifest.json

Each ``validate_*`` function returns the number of validated entries
and raises :class:`SchemaError` with a precise message on the first
violation, so CI failures point at the offending line/key.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

__all__ = [
    "SchemaError",
    "validate_span",
    "validate_trace_jsonl",
    "validate_chrome_trace",
    "validate_metrics_snapshot",
    "validate_manifest",
    "main",
]

SPAN_REQUIRED_FIELDS = {
    "type": str,
    "schema": int,
    "name": str,
    "span_id": int,
    "pid": int,
    "ts": (int, float),
    "dur": (int, float),
    "attrs": dict,
}


class SchemaError(ValueError):
    """An observability artifact violated its documented schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def validate_span(record: Dict[str, Any], *, where: str = "span") -> None:
    """Validate one decoded JSONL span object."""
    for field, types in SPAN_REQUIRED_FIELDS.items():
        _require(field in record, f"{where}: missing field {field!r}")
        _require(
            isinstance(record[field], types),
            f"{where}: field {field!r} has type "
            f"{type(record[field]).__name__}",
        )
    _require(
        record["type"] == "span", f"{where}: type must be 'span'"
    )
    _require(record["schema"] == 1, f"{where}: unknown schema {record['schema']}")
    _require(record["dur"] >= 0, f"{where}: negative duration")
    parent = record.get("parent_id")
    _require(
        parent is None or isinstance(parent, int),
        f"{where}: parent_id must be int or null",
    )
    peak = record.get("peak_mem")
    _require(
        peak is None or isinstance(peak, int),
        f"{where}: peak_mem must be int or null",
    )


def validate_trace_jsonl(path: Path) -> int:
    """Validate a ``--trace out.jsonl`` file; returns the span count."""
    count = 0
    ids = set()
    parents = []
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"{path}:{lineno}: not JSON ({exc})")
            validate_span(record, where=f"{path}:{lineno}")
            _require(
                record["span_id"] not in ids,
                f"{path}:{lineno}: duplicate span_id {record['span_id']}",
            )
            ids.add(record["span_id"])
            if record.get("parent_id") is not None:
                parents.append((lineno, record["parent_id"]))
            count += 1
    _require(count > 0, f"{path}: no spans recorded")
    for lineno, parent in parents:
        _require(
            parent in ids,
            f"{path}:{lineno}: parent_id {parent} matches no span",
        )
    return count


def validate_chrome_trace(path: Path) -> int:
    """Validate a Chrome ``trace_event`` JSON file; returns event count."""
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: not JSON ({exc})")
    _require(isinstance(document, dict), f"{path}: top level must be an object")
    _require("traceEvents" in document, f"{path}: missing traceEvents")
    events = document["traceEvents"]
    _require(isinstance(events, list), f"{path}: traceEvents must be a list")
    _require(len(events) > 0, f"{path}: no trace events")
    complete = 0
    for index, event in enumerate(events):
        where = f"{path}: traceEvents[{index}]"
        _require(isinstance(event, dict), f"{where}: not an object")
        for field in ("ph", "pid", "name"):
            _require(field in event, f"{where}: missing {field!r}")
        _require(
            event["ph"] in ("X", "i", "M"),
            f"{where}: unexpected phase {event['ph']!r}",
        )
        if event["ph"] == "X":
            complete += 1
            for field in ("ts", "dur", "tid"):
                _require(field in event, f"{where}: missing {field!r}")
            _require(event["ts"] >= 0, f"{where}: negative ts")
            _require(event["dur"] >= 0, f"{where}: negative dur")
    _require(complete > 0, f"{path}: no complete ('X') events")
    return len(events)


def validate_metrics_snapshot(path: Path) -> int:
    """Validate a ``--metrics m.json`` snapshot; returns instrument count."""
    try:
        snapshot = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: not JSON ({exc})")
    _require(isinstance(snapshot, dict), f"{path}: top level must be an object")
    _require(snapshot.get("schema") in (1, 2), f"{path}: unknown schema")
    for section in ("counters", "gauges", "histograms"):
        _require(section in snapshot, f"{path}: missing {section!r}")
        _require(
            isinstance(snapshot[section], dict),
            f"{path}: {section} must be an object",
        )
    for name, value in snapshot["counters"].items():
        _require(
            isinstance(value, (int, float)) and value >= 0,
            f"{path}: counter {name!r} must be a non-negative number",
        )
    for name, value in snapshot["gauges"].items():
        _require(
            isinstance(value, (int, float)),
            f"{path}: gauge {name!r} must be a number",
        )
    for name, hist in snapshot["histograms"].items():
        where = f"{path}: histogram {name!r}"
        _require(isinstance(hist, dict), f"{where}: not an object")
        for field in ("buckets", "counts", "count", "sum"):
            _require(field in hist, f"{where}: missing {field!r}")
        _require(
            len(hist["counts"]) == len(hist["buckets"]) + 1,
            f"{where}: counts must have len(buckets)+1 entries",
        )
        _require(
            sum(hist["counts"]) == hist["count"],
            f"{where}: bucket counts do not sum to count",
        )
        if snapshot["schema"] >= 2:
            # v2 adds observed extremes; null only when the histogram
            # is empty (or merged from a v1 snapshot).
            for field in ("min", "max"):
                _require(field in hist, f"{where}: missing {field!r}")
                _require(
                    hist[field] is None
                    or isinstance(hist[field], (int, float)),
                    f"{where}: {field} must be a number or null",
                )
    return (
        len(snapshot["counters"])
        + len(snapshot["gauges"])
        + len(snapshot["histograms"])
    )


MANIFEST_REQUIRED_FIELDS = (
    "schema",
    "created_unix",
    "command",
    "argv",
    "python",
    "platform",
    "cpu_count",
    "backends",
    "env",
)


def validate_manifest(path: Path) -> int:
    """Validate a ``*.manifest.json``; returns the number of fields."""
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: not JSON ({exc})")
    _require(isinstance(manifest, dict), f"{path}: top level must be an object")
    for field in MANIFEST_REQUIRED_FIELDS:
        _require(field in manifest, f"{path}: missing {field!r}")
    _require(manifest["schema"] == 1, f"{path}: unknown schema")
    if "config_sha256" in manifest:
        digest = manifest["config_sha256"]
        _require(
            isinstance(digest, str) and len(digest) == 64,
            f"{path}: config_sha256 must be a sha256 hex digest",
        )
    return len(manifest)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="validate observability artifact schemas"
    )
    parser.add_argument("--trace", default=None, help="JSONL trace to check")
    parser.add_argument("--chrome", default=None, help="Chrome trace to check")
    parser.add_argument("--metrics", default=None, help="metrics snapshot")
    parser.add_argument("--manifest", default=None, help="run manifest")
    args = parser.parse_args(list(argv) if argv is not None else None)
    checks = [
        (args.trace, validate_trace_jsonl, "spans"),
        (args.chrome, validate_chrome_trace, "events"),
        (args.metrics, validate_metrics_snapshot, "instruments"),
        (args.manifest, validate_manifest, "fields"),
    ]
    ran = 0
    for target, validator, unit in checks:
        if target is None:
            continue
        count = validator(Path(target))
        print(f"ok: {target} ({count} {unit})")
        ran += 1
    if not ran:
        parser.error("nothing to validate; pass at least one artifact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
