"""Unit tests for repro.simulation.server."""

from __future__ import annotations

import pytest

from repro.core.allocation import ChannelAllocation
from repro.core.cost import average_waiting_time
from repro.exceptions import SimulationError
from repro.simulation.server import BroadcastProgram


@pytest.fixture
def allocation(tiny_db):
    return ChannelAllocation(tiny_db, [tiny_db.items[:2], tiny_db.items[2:]])


class TestConstruction:
    def test_one_channel_per_group(self, allocation):
        program = BroadcastProgram(allocation, bandwidth=10.0)
        assert program.num_channels == 2
        assert [len(c.items) for c in program.channels] == [2, 2]

    def test_bandwidth_applies_to_all_channels(self, allocation):
        program = BroadcastProgram(allocation, bandwidth=5.0)
        assert all(c.bandwidth == 5.0 for c in program.channels)

    def test_per_channel_bandwidths(self, allocation):
        program = BroadcastProgram(allocation, bandwidths=[5.0, 20.0])
        assert program.channels[0].bandwidth == 5.0
        assert program.channels[1].bandwidth == 20.0

    def test_bandwidth_count_mismatch(self, allocation):
        with pytest.raises(SimulationError, match="bandwidths"):
            BroadcastProgram(allocation, bandwidths=[5.0])


class TestRouting:
    def test_channel_for(self, allocation):
        program = BroadcastProgram(allocation)
        assert program.channel_for("a").channel_id == 0
        assert program.channel_for("d").channel_id == 1

    def test_channel_for_unknown(self, allocation):
        program = BroadcastProgram(allocation)
        with pytest.raises(SimulationError, match="no channel"):
            program.channel_for("zz")

    def test_waiting_time_delegates(self, allocation):
        program = BroadcastProgram(allocation, bandwidth=10.0)
        direct = program.channel_for("a").waiting_time("a", 0.25)
        assert program.waiting_time("a", 0.25) == pytest.approx(direct)


class TestExpectedWaitingTimes:
    def test_per_item_expectation_eq1(self, allocation):
        program = BroadcastProgram(allocation, bandwidth=10.0)
        # Channel 0 carries a(1.0) and b(2.0): cycle = 0.3 s.
        assert program.expected_waiting_time("a") == pytest.approx(
            0.3 / 2 + 0.1
        )

    def test_frequency_weighted_expectation_equals_model_wb(self, allocation):
        """Σ f_x · E[wait_x] == W_b of Eq. (2) — the whole-model identity."""
        program = BroadcastProgram(allocation, bandwidth=10.0)
        weighted = sum(
            item.frequency * program.expected_waiting_time(item.item_id)
            for item in allocation.database
        )
        assert weighted == pytest.approx(
            average_waiting_time(allocation, bandwidth=10.0)
        )
