"""Unit tests for repro.core.cost — the analytical model (paper §2)."""

from __future__ import annotations

import math

import pytest

from repro.core.allocation import ChannelAllocation
from repro.core.cost import (
    allocation_cost,
    average_waiting_time,
    channel_costs,
    channel_waiting_time,
    group_aggregates,
    group_cost,
    item_waiting_time,
    move_delta,
    waiting_time_from_cost,
)
from repro.core.item import DataItem
from repro.exceptions import InvalidAllocationError

from tests.conftest import PAPER_GOLDENS


class TestGroupQuantities:
    def test_group_aggregates(self, tiny_db):
        frequency, size = group_aggregates(tiny_db.items[:2])
        assert frequency == pytest.approx(0.7)
        assert size == pytest.approx(3.0)

    def test_group_cost_definition1(self, tiny_db):
        assert group_cost(tiny_db.items[:2]) == pytest.approx(0.7 * 3.0)

    def test_empty_group_cost_is_zero(self):
        assert group_cost([]) == 0.0

    def test_whole_paper_database_cost(self, paper_db):
        # Table 3(a): cost(D) = 135.60.
        assert group_cost(paper_db.items) == pytest.approx(
            PAPER_GOLDENS["initial_cost"], abs=0.01
        )


class TestAllocationCost:
    def test_channel_costs_and_total(self, tiny_db):
        allocation = ChannelAllocation(
            tiny_db, [tiny_db.items[:2], tiny_db.items[2:]]
        )
        per_channel = channel_costs(allocation)
        assert per_channel == pytest.approx([0.7 * 3.0, 0.3 * 7.0])
        assert allocation_cost(allocation) == pytest.approx(sum(per_channel))

    def test_single_channel_cost_equals_group_cost(self, paper_db):
        allocation = ChannelAllocation(paper_db, [paper_db.items])
        assert allocation_cost(allocation) == pytest.approx(
            group_cost(paper_db.items)
        )

    def test_cost_invariant_under_channel_permutation(self, medium_db):
        items = medium_db.items
        split = [items[:10], items[10:20], items[20:]]
        forward = ChannelAllocation(medium_db, split)
        backward = ChannelAllocation(medium_db, list(reversed(split)))
        assert allocation_cost(forward) == pytest.approx(
            allocation_cost(backward)
        )


class TestWaitingTimes:
    def test_item_waiting_time_eq1(self, tiny_db):
        channel = tiny_db.items[:2]  # sizes 1 and 2, aggregate 3
        w = item_waiting_time(tiny_db.items[0], channel, bandwidth=10.0)
        assert w == pytest.approx(3.0 / 20.0 + 1.0 / 10.0)

    def test_item_waiting_time_requires_membership(self, tiny_db):
        with pytest.raises(InvalidAllocationError, match="not on"):
            item_waiting_time(tiny_db.items[3], tiny_db.items[:2])

    def test_item_waiting_time_rejects_bad_bandwidth(self, tiny_db):
        with pytest.raises(InvalidAllocationError, match="bandwidth"):
            item_waiting_time(
                tiny_db.items[0], tiny_db.items[:2], bandwidth=0.0
            )

    def test_channel_waiting_time_is_frequency_weighted(self, tiny_db):
        channel = tiny_db.items[:2]
        expected = (
            0.4 * item_waiting_time(channel[0], channel)
            + 0.3 * item_waiting_time(channel[1], channel)
        ) / 0.7
        assert channel_waiting_time(channel) == pytest.approx(expected)

    def test_channel_waiting_time_empty_channel_undefined(self):
        with pytest.raises(InvalidAllocationError, match="empty"):
            channel_waiting_time([])

    def test_average_waiting_time_eq2_expansion(self, tiny_db):
        allocation = ChannelAllocation(
            tiny_db, [tiny_db.items[:2], tiny_db.items[2:]]
        )
        bandwidth = 10.0
        expected = allocation_cost(allocation) / (2 * bandwidth) + (
            tiny_db.fixed_download_cost / bandwidth
        )
        assert average_waiting_time(
            allocation, bandwidth=bandwidth
        ) == pytest.approx(expected)

    def test_average_waiting_time_is_weighted_channel_average(self, tiny_db):
        allocation = ChannelAllocation(
            tiny_db, [tiny_db.items[:2], tiny_db.items[2:]]
        )
        # W_b = sum_i F_i * W^(i) — the paper's first line of Eq. (2).
        expected = 0.7 * channel_waiting_time(
            tiny_db.items[:2]
        ) + 0.3 * channel_waiting_time(tiny_db.items[2:])
        assert average_waiting_time(allocation) == pytest.approx(expected)

    def test_waiting_time_from_cost_matches(self, tiny_db):
        allocation = ChannelAllocation(
            tiny_db, [tiny_db.items[:2], tiny_db.items[2:]]
        )
        direct = average_waiting_time(allocation, bandwidth=7.0)
        indirect = waiting_time_from_cost(
            allocation_cost(allocation),
            tiny_db.fixed_download_cost,
            bandwidth=7.0,
        )
        assert direct == pytest.approx(indirect)

    def test_bandwidth_scales_waiting_time_inversely(self, tiny_db):
        allocation = ChannelAllocation(tiny_db, [tiny_db.items])
        assert average_waiting_time(
            allocation, bandwidth=20.0
        ) == pytest.approx(average_waiting_time(allocation, bandwidth=10.0) / 2)

    def test_intro_formula_single_channel_equal_sizes(self):
        # Intro: N items of size z on one channel: W = Nz/2b + z/b.
        n, z, b = 8, 5.0, 10.0
        items = [DataItem(f"i{k}", 1.0 / n, z) for k in range(n)]
        from repro.core.database import BroadcastDatabase

        db = BroadcastDatabase(items)
        allocation = ChannelAllocation(db, [db.items])
        assert average_waiting_time(allocation, bandwidth=b) == pytest.approx(
            n * z / (2 * b) + z / b
        )


class TestMoveDelta:
    def test_eq4_matches_recomputation(self, tiny_db):
        items = tiny_db.items
        allocation = ChannelAllocation(tiny_db, [items[:2], items[2:]])
        before = allocation_cost(allocation)
        item = items[0]  # move "a" from channel 0 to channel 1
        after_alloc = ChannelAllocation(
            tiny_db, [[items[1]], [items[2], items[3], item]]
        )
        after = allocation_cost(after_alloc)
        stats = allocation.channel_stats
        delta = move_delta(
            item,
            origin_frequency=stats[0].frequency,
            origin_size=stats[0].size,
            dest_frequency=stats[1].frequency,
            dest_size=stats[1].size,
        )
        assert delta == pytest.approx(before - after)

    def test_moving_last_item_never_improves(self):
        # With F_p = f_x, Z_p = z_x the delta collapses to
        # -f_x*Z_q - z_x*F_q < 0 — the automatic non-empty guard.
        item = DataItem("x", 0.3, 2.0)
        delta = move_delta(
            item,
            origin_frequency=item.frequency,
            origin_size=item.size,
            dest_frequency=0.7,
            dest_size=5.0,
        )
        assert delta == pytest.approx(-(0.3 * 5.0) - (2.0 * 0.7))
        assert delta < 0

    def test_symmetric_groups_give_negative_delta(self):
        # Moving between identical groups always adds the -2fz term.
        item = DataItem("x", 0.1, 1.0)
        delta = move_delta(
            item,
            origin_frequency=0.5,
            origin_size=10.0,
            dest_frequency=0.5 - item.frequency,
            dest_size=10.0 - item.size,
        )
        # Z_p - Z_q = 1, F_p - F_q = 0.1 => 0.1*1 + 1*0.1 - 2*0.1 = 0
        assert delta == pytest.approx(0.0)


class TestDegenerateChannels:
    def test_zero_aggregate_frequency_raises_not_crashes(self):
        """A zero-frequency channel must raise InvalidAllocationError,
        not ZeroDivisionError (DataItem forbids f <= 0, but duck-typed
        items from adapters and estimator drift can reach the model)."""

        class Stub:
            item_id = "stub"
            frequency = 0.0
            size = 4.0
            weight = 0.0

        with pytest.raises(InvalidAllocationError, match="frequency"):
            channel_waiting_time([Stub()])

    def test_cancelling_frequencies_raise_too(self):
        class Stub:
            def __init__(self, item_id, frequency, size):
                self.item_id = item_id
                self.frequency = frequency
                self.size = size
                self.weight = frequency * size

        with pytest.raises(InvalidAllocationError, match="frequency"):
            channel_waiting_time([Stub("a", 0.3, 1.0), Stub("b", -0.3, 1.0)])


class TestMembershipLookupScaling:
    def test_large_channel_member_found(self):
        # Past the set-lookup threshold the behaviour must be identical.
        items = [DataItem(f"d{i}", 0.001, 2.0) for i in range(200)]
        direct = (200 * 2.0) / (2.0 * 10.0) + 2.0 / 10.0
        assert item_waiting_time(items[150], items) == pytest.approx(direct)

    def test_large_channel_nonmember_rejected(self):
        items = [DataItem(f"d{i}", 0.001, 2.0) for i in range(200)]
        outsider = DataItem("outsider", 0.5, 1.0)
        with pytest.raises(InvalidAllocationError, match="not on the given"):
            item_waiting_time(outsider, items)

    def test_small_and_large_paths_agree(self):
        small = [DataItem(f"s{i}", 0.01, 3.0) for i in range(4)]
        large = small + [DataItem(f"p{i}", 0.01, 0.5) for i in range(100)]
        for channel in (small, large):
            expected = (
                math.fsum(m.size for m in channel) / 20.0 + small[0].size / 10.0
            )
            assert item_waiting_time(small[0], channel) == pytest.approx(
                expected
            )
