"""Parametrized walk over the consolidated Table 2-4 golden values.

``tests/conftest.py`` owns the catalogue (``PAPER_GOLDENS``); this
module re-derives every number from one shared pipeline run so a drift
in any stage shows up as exactly one named parameter failing.  The
narrative, table-by-table assertions live in ``test_paper_example.py``;
here the point is coverage of the catalogue itself.
"""

from __future__ import annotations

import pytest

from repro.core.cds import cds_refine
from repro.core.cost import allocation_cost, group_cost
from repro.core.drp import drp_allocate
from repro.workloads.paper_profile import (
    PAPER_CDS_COST,
    PAPER_DRP_COST,
    PAPER_INITIAL_COST,
    PAPER_NUM_CHANNELS,
    paper_database,
)

from tests.conftest import PAPER_GOLDENS


@pytest.fixture(scope="module")
def db():
    return paper_database()


@pytest.fixture(scope="module")
def drp_result(db):
    return drp_allocate(
        db,
        PAPER_GOLDENS["num_channels"],
        split_policy="max-reduction",
        trace=True,
    )


@pytest.fixture(scope="module")
def cds_result(drp_result):
    return cds_refine(drp_result.allocation)


class TestCatalogueConsistency:
    """The catalogue must mirror the package's published constants."""

    @pytest.mark.parametrize(
        "key, constant",
        [
            ("num_channels", PAPER_NUM_CHANNELS),
            ("initial_cost", PAPER_INITIAL_COST),
            ("drp_cost", PAPER_DRP_COST),
            ("cds_cost", PAPER_CDS_COST),
        ],
    )
    def test_matches_paper_profile_constant(self, key, constant):
        assert PAPER_GOLDENS[key] == constant

    def test_costs_strictly_improve(self):
        assert (
            PAPER_GOLDENS["initial_cost"]
            > PAPER_GOLDENS["drp_cost"]
            > PAPER_GOLDENS["cds_cost"]
        )

    def test_channel_costs_sum_to_drp_cost(self):
        assert sum(PAPER_GOLDENS["drp_channel_costs"]) == pytest.approx(
            PAPER_GOLDENS["drp_cost"], abs=0.02
        )


class TestGoldensEndToEnd:
    def test_total_size(self, db, paper_goldens):
        assert db.total_size == pytest.approx(
            paper_goldens["total_size"], abs=0.01
        )

    def test_initial_cost(self, db, paper_goldens):
        assert group_cost(db.items) == pytest.approx(
            paper_goldens["initial_cost"], abs=0.01
        )

    @pytest.mark.parametrize("snapshot_index", (1, 2))
    def test_split_snapshot_costs(
        self, drp_result, paper_goldens, snapshot_index
    ):
        key = ("first_split_costs", "second_split_costs")[snapshot_index - 1]
        snap = drp_result.snapshots[snapshot_index]
        assert sorted(snap.costs) == pytest.approx(
            sorted(paper_goldens[key]), abs=0.02
        )

    def test_drp_channel_costs(self, drp_result, paper_goldens):
        costs = sorted(
            stat.cost for stat in drp_result.allocation.channel_stats
        )
        assert costs == pytest.approx(
            sorted(paper_goldens["drp_channel_costs"]), abs=0.02
        )

    def test_drp_cost(self, drp_result, paper_goldens):
        assert drp_result.cost == pytest.approx(
            paper_goldens["drp_cost"], abs=0.02
        )
        assert allocation_cost(drp_result.allocation) == pytest.approx(
            paper_goldens["drp_cost"], abs=0.02
        )

    @pytest.mark.parametrize("move_index", (0, 1))
    def test_cds_moves(self, cds_result, paper_goldens, move_index):
        golden = paper_goldens["cds_moves"][move_index]
        move = cds_result.moves[move_index]
        assert move.item_id == golden["item"]
        assert move.delta == pytest.approx(golden["delta"], abs=0.01)
        assert move.cost_after == pytest.approx(
            golden["cost_after"], abs=0.02
        )

    def test_cds_cost(self, cds_result, paper_goldens):
        assert cds_result.cost == pytest.approx(
            paper_goldens["cds_cost"], abs=0.02
        )

    def test_max_cost_policy_cost(self, db, paper_goldens):
        listing = drp_allocate(
            db, paper_goldens["num_channels"], split_policy="max-cost"
        )
        assert listing.cost == pytest.approx(
            paper_goldens["max_cost_policy_cost"], abs=0.02
        )
