"""Unit tests for the simple baselines (repro.baselines.flat)."""

from __future__ import annotations

import pytest

from repro.baselines.flat import (
    GreedyCostAllocator,
    RandomAllocator,
    RoundRobinAllocator,
)
from repro.core.cost import allocation_cost
from repro.exceptions import InfeasibleProblemError


class TestRoundRobin:
    def test_deals_in_catalogue_order(self, tiny_db):
        outcome = RoundRobinAllocator().allocate(tiny_db, 2)
        assert outcome.allocation.as_id_lists() == [["a", "c"], ["b", "d"]]

    def test_channel_counts_balanced(self, medium_db):
        outcome = RoundRobinAllocator().allocate(medium_db, 4)
        counts = [s.count for s in outcome.allocation.channel_stats]
        assert max(counts) - min(counts) <= 1

    def test_infeasible_rejected(self, tiny_db):
        with pytest.raises(InfeasibleProblemError):
            RoundRobinAllocator().allocate(tiny_db, 5)


class TestRandom:
    def test_same_seed_same_allocation(self, medium_db):
        first = RandomAllocator(seed=9).allocate(medium_db, 5)
        second = RandomAllocator(seed=9).allocate(medium_db, 5)
        assert first.allocation.as_id_lists() == second.allocation.as_id_lists()

    def test_different_seeds_usually_differ(self, medium_db):
        first = RandomAllocator(seed=1).allocate(medium_db, 5)
        second = RandomAllocator(seed=2).allocate(medium_db, 5)
        assert first.allocation.as_id_lists() != second.allocation.as_id_lists()

    def test_every_channel_nonempty(self, medium_db):
        for seed in range(10):
            outcome = RandomAllocator(seed=seed).allocate(medium_db, 7)
            assert all(
                s.count >= 1 for s in outcome.allocation.channel_stats
            )

    def test_k_equals_n(self, tiny_db):
        outcome = RandomAllocator(seed=0).allocate(tiny_db, 4)
        assert all(s.count == 1 for s in outcome.allocation.channel_stats)

    def test_seed_recorded_in_metadata(self, tiny_db):
        outcome = RandomAllocator(seed=42).allocate(tiny_db, 2)
        assert outcome.metadata["seed"] == 42


class TestGreedy:
    def test_valid_partition(self, medium_db):
        outcome = GreedyCostAllocator().allocate(medium_db, 5)
        ids = sorted(
            item for group in outcome.allocation.as_id_lists() for item in group
        )
        assert ids == sorted(medium_db.item_ids)

    def test_beats_random_on_average(self, medium_db):
        greedy = GreedyCostAllocator().allocate(medium_db, 5).cost
        random_costs = [
            RandomAllocator(seed=s).allocate(medium_db, 5).cost
            for s in range(10)
        ]
        assert greedy < sum(random_costs) / len(random_costs)

    def test_deterministic(self, medium_db):
        a = GreedyCostAllocator().allocate(medium_db, 5)
        b = GreedyCostAllocator().allocate(medium_db, 5)
        assert a.allocation.as_id_lists() == b.allocation.as_id_lists()

    def test_greedy_cost_is_reported_consistently(self, medium_db):
        outcome = GreedyCostAllocator().allocate(medium_db, 5)
        assert outcome.cost == pytest.approx(
            allocation_cost(outcome.allocation)
        )
