"""Lazy item views over the array-resident core: identity, liveness,
pickling, and the zero-churn guarantee.

The structure-of-arrays refactor keeps ``BroadcastDatabase`` and
``ChannelAllocation`` array-resident and materialises ``DataItem``
objects only at API edges.  These tests pin the contract:

* views are *lazy* (no objects until ``.items`` is touched — observed
  through the :func:`repro.core.item.items_created` counter) and
  *cached* (repeated access returns the identical tuple);
* mutation is pinned shut on both representations — frozen dataclass
  on the object side, read-only ndarray on the array side;
* array-resident databases and allocations pickle, round-trip intact,
  and cross a ``ProcessPoolExecutor`` worker boundary (the
  ``experiments/parallel.py`` transport);
* the hot pipeline (generate → DRP → CDS → cost) runs end to end
  without creating a single per-item object.
"""

from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest

from repro.core.allocation import ChannelAllocation
from repro.core.cds import cds_refine
from repro.core.cost import allocation_cost
from repro.core.database import BroadcastDatabase
from repro.core.drp import drp_allocate
from repro.core.incremental import database_fingerprint
from repro.core.item import DataItem, items_created
from repro.experiments.parallel import map_ordered


def _array_database(n: int = 24, seed: int = 5) -> BroadcastDatabase:
    rng = np.random.default_rng(seed)
    frequencies = rng.random(n) + 1e-3
    frequencies /= frequencies.sum()
    sizes = rng.random(n) * 9.0 + 1.0
    return BroadcastDatabase.from_arrays(
        frequencies.tolist(), sizes.tolist()
    )


class TestLazyItemViews:
    def test_array_construction_creates_no_items(self):
        before = items_created()
        database = _array_database()
        database.frequencies
        database.sizes
        database.benefit_ratio_order()
        assert items_created() == before

    def test_items_materialize_once_and_are_cached(self):
        database = _array_database(n=10)
        before = items_created()
        first = database.items
        assert items_created() - before == 10
        second = database.items
        assert second is first  # cached — no second materialization
        assert items_created() - before == 10

    def test_views_mirror_the_arrays_bitwise(self):
        database = _array_database(n=12)
        for index, item in enumerate(database.items):
            assert item.frequency == float(database.frequencies[index])
            assert item.size == float(database.sizes[index])
            assert item.item_id == database.item_id_at(index)

    def test_item_mutation_raises(self):
        database = _array_database(n=3)
        item = database.items[0]
        with pytest.raises(dataclasses.FrozenInstanceError):
            item.frequency = 0.5  # type: ignore[misc]

    def test_feature_arrays_are_read_only(self):
        database = _array_database(n=3)
        with pytest.raises(ValueError):
            database.frequencies[0] = 0.5
        with pytest.raises(ValueError):
            database.sizes[0] = 0.5

    def test_item_view_slicing(self):
        database = _array_database(n=9)
        window = database.items[2:5]
        assert len(window) == 3
        assert all(isinstance(item, DataItem) for item in window)
        assert [item.item_id for item in window] == [
            database.item_id_at(index) for index in range(2, 5)
        ]


class TestPickling:
    def test_database_round_trip(self):
        database = _array_database()
        clone = pickle.loads(pickle.dumps(database))
        assert clone == database
        assert clone.item_ids == database.item_ids
        assert clone.frequencies.tolist() == database.frequencies.tolist()
        assert clone.sizes.tolist() == database.sizes.tolist()
        assert database_fingerprint(clone, 4) == database_fingerprint(
            database, 4
        )

    def test_database_round_trip_stays_lazy(self):
        database = _array_database(n=16)
        payload = pickle.dumps(database)
        before = items_created()
        clone = pickle.loads(payload)
        clone.benefit_ratio_order()
        assert items_created() == before

    def test_allocation_round_trip(self):
        database = _array_database()
        allocation = drp_allocate(database, 4).allocation
        clone = pickle.loads(pickle.dumps(allocation))
        assert clone == allocation
        assert allocation_cost(clone) == allocation_cost(allocation)
        assert [
            group.tolist() for group in clone.channel_index_groups
        ] == [group.tolist() for group in allocation.channel_index_groups]


def _inspect_allocation(payload: bytes):
    """ProcessPool worker: unpickle an allocation, use it, report back."""
    allocation = pickle.loads(payload)
    return (
        len(allocation.database),
        allocation.num_channels,
        allocation_cost(allocation),
        tuple(len(group) for group in allocation.channel_index_groups),
    )


class TestProcessPoolBoundary:
    def test_allocation_crosses_worker_boundary(self):
        database = _array_database(n=30, seed=9)
        allocation = cds_refine(
            drp_allocate(database, 5).allocation, max_iterations=3
        ).allocation
        payload = pickle.dumps(allocation)
        expected = (
            len(database),
            5,
            allocation_cost(allocation),
            tuple(len(g) for g in allocation.channel_index_groups),
        )
        serial, pooled = map_ordered(
            _inspect_allocation, [payload, payload], workers=2
        )
        assert serial == expected
        assert pooled == expected


class TestZeroChurnPipeline:
    def test_generate_allocate_refine_without_items(self):
        database = _array_database(n=400, seed=11)
        before = items_created()
        allocation = drp_allocate(database, 8).allocation
        refined = cds_refine(allocation, max_iterations=5).allocation
        allocation_cost(refined)
        assert items_created() == before

    def test_assignment_vector_matches_groups(self):
        database = _array_database(n=40)
        allocation = drp_allocate(database, 4).allocation
        vector = allocation.assignment_vector()
        for channel, group in enumerate(allocation.channel_index_groups):
            for index in group.tolist():
                assert vector[index] == channel
        rebuilt = ChannelAllocation.from_assignment_vector(
            database, vector, 4
        )
        assert rebuilt == allocation
