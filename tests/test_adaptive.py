"""Tests for the adaptive re-allocation loop (repro.simulation.adaptive)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scheduler import DRPCDSAllocator
from repro.exceptions import SimulationError
from repro.simulation.adaptive import (
    EpochReport,
    RotatingDrift,
    run_adaptive_simulation,
)
from repro.workloads.generator import WorkloadSpec, generate_database


@pytest.fixture(scope="module")
def drift_db():
    return generate_database(
        WorkloadSpec(num_items=40, skewness=1.2, diversity=1.5, seed=21)
    )


class TestRotatingDrift:
    def test_epoch_zero_is_base(self):
        drift = RotatingDrift([0.5, 0.3, 0.2], shift_per_epoch=1)
        assert drift.probabilities(0).tolist() == [0.5, 0.3, 0.2]

    def test_rotation(self):
        drift = RotatingDrift([0.5, 0.3, 0.2], shift_per_epoch=1)
        assert drift.probabilities(1).tolist() == [0.2, 0.5, 0.3]
        assert drift.probabilities(2).tolist() == [0.3, 0.2, 0.5]

    def test_shift_multiplies(self):
        drift = RotatingDrift([0.5, 0.3, 0.2], shift_per_epoch=2)
        assert drift.probabilities(1).tolist() == [0.3, 0.2, 0.5]

    def test_full_cycle_returns_to_base(self):
        base = [0.4, 0.3, 0.2, 0.1]
        drift = RotatingDrift(base, shift_per_epoch=1)
        assert drift.probabilities(4).tolist() == base

    def test_validation(self):
        with pytest.raises(SimulationError):
            RotatingDrift([0.5], shift_per_epoch=-1)
        with pytest.raises(SimulationError):
            RotatingDrift([])
        drift = RotatingDrift([1.0])
        with pytest.raises(SimulationError):
            drift.probabilities(-1)


class TestAdaptiveSimulation:
    @pytest.fixture(scope="class")
    def reports(self, drift_db):
        return run_adaptive_simulation(
            drift_db,
            DRPCDSAllocator(),
            num_channels=4,
            epochs=5,
            requests_per_epoch=1500,
            drift=RotatingDrift(
                [item.frequency for item in drift_db.items],
                shift_per_epoch=8,
            ),
            seed=5,
        )

    def test_one_report_per_epoch(self, reports):
        assert len(reports) == 5
        assert [r.epoch for r in reports] == list(range(5))
        assert all(isinstance(r, EpochReport) for r in reports)

    def test_first_epoch_knows_the_truth(self, reports):
        # Epoch 0's program was built from the undrifted profile.
        assert reports[0].profile_error < 0.05

    def test_reallocation_flags(self, reports):
        assert reports[0].reallocated is True
        assert all(r.reallocated for r in reports[1:])

    def test_measured_statistics_present(self, reports):
        for report in reports:
            assert report.measured.count == 1500
            assert report.measured.mean > 0

    def test_adaptive_beats_static_under_drift(self, drift_db):
        drift = RotatingDrift(
            [item.frequency for item in drift_db.items], shift_per_epoch=10
        )
        common = dict(
            num_channels=4,
            epochs=5,
            requests_per_epoch=2500,
            drift=drift,
            seed=9,
        )
        adaptive = run_adaptive_simulation(
            drift_db, DRPCDSAllocator(), adapt=True, **common
        )
        static = run_adaptive_simulation(
            drift_db, DRPCDSAllocator(), adapt=False, **common
        )
        # Same requests in epoch 0 (identical programs and seeds).
        assert adaptive[0].measured.mean == pytest.approx(
            static[0].measured.mean
        )
        # After drift sets in, adaptation wins on cost under the truth.
        adaptive_cost = np.mean([r.cost_under_truth for r in adaptive[2:]])
        static_cost = np.mean([r.cost_under_truth for r in static[2:]])
        assert adaptive_cost < static_cost

    def test_static_profile_error_grows(self, drift_db):
        drift = RotatingDrift(
            [item.frequency for item in drift_db.items], shift_per_epoch=10
        )
        static = run_adaptive_simulation(
            drift_db,
            DRPCDSAllocator(),
            num_channels=4,
            epochs=4,
            requests_per_epoch=500,
            drift=drift,
            adapt=False,
            seed=1,
        )
        assert static[-1].profile_error > static[0].profile_error
        assert not any(r.reallocated for r in static[1:])

    def test_validation(self, drift_db):
        with pytest.raises(SimulationError):
            run_adaptive_simulation(
                drift_db, DRPCDSAllocator(), 4, epochs=0
            )
        with pytest.raises(SimulationError):
            run_adaptive_simulation(
                drift_db, DRPCDSAllocator(), 4, requests_per_epoch=0
            )
