"""Integration tests: observability across allocators, runner, workers.

The contracts under test:

* **Parity** — enabling tracing/metrics changes *nothing* about the
  computed results: identical allocations, identical experiment rows
  (wall-clock ``elapsed`` aggregates excepted), serial and parallel.
* **Golden trace** — on the paper's Table 2 example, the CDS cost
  trajectory is monotonically non-increasing and ends at the paper's
  22.29.
* **Worker spans** — with ``workers=2`` the merged trace contains every
  cell's span, tagged with the worker pid and the queue wait measured
  by the parent.
* **Overhead** — the disabled (no-op) instrumentation costs less than
  5% on a small DRP+CDS workload.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import sys
import time

import pytest

from repro import obs
from repro.core.cds import cds_refine
from repro.core.cost import allocation_cost
from repro.core.drp import drp_allocate
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.workloads.generator import WorkloadSpec, generate_database
from repro.workloads.paper_profile import PAPER_NUM_CHANNELS, paper_database

from tests.trace_schema import validate_metrics_snapshot, validate_trace_jsonl

_FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=False) != "fork"
    and sys.platform != "linux",
    reason="worker tests assume a fork-capable platform",
)

from tests.conftest import PAPER_GOLDENS


@pytest.fixture(autouse=True)
def _reset_obs():
    obs.reset()
    yield
    obs.reset()


def small_config(**overrides):
    defaults = dict(
        name="obs-test",
        description="observability integration sweep",
        sweep_parameter="num_channels",
        sweep_values=(3.0, 4.0),
        algorithms=("drp", "drp-cds"),
        num_items=20,
        replications=2,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def rows_without_elapsed(result):
    return [
        dataclasses.replace(
            row, mean_elapsed_seconds=0.0, std_elapsed_seconds=0.0
        )
        for row in result.rows
    ]


# ----------------------------------------------------------------------
# Parity: observability must never change results
# ----------------------------------------------------------------------
class TestParity:
    def test_allocation_identical_with_tracing(self):
        database = generate_database(
            WorkloadSpec(num_items=40, skewness=0.8, seed=3)
        )
        baseline = drp_allocate(database, 5)
        refined_baseline = cds_refine(baseline.allocation)

        obs.configure(trace=True, metrics=True)
        traced = drp_allocate(database, 5)
        refined_traced = cds_refine(traced.allocation)

        assert traced.allocation.as_id_lists() == baseline.allocation.as_id_lists()
        assert traced.cost == baseline.cost
        assert (
            refined_traced.allocation.as_id_lists()
            == refined_baseline.allocation.as_id_lists()
        )
        assert refined_traced.cost == refined_baseline.cost
        assert [m.item_id for m in refined_traced.moves] == [
            m.item_id for m in refined_baseline.moves
        ]

    def test_serial_rows_identical_with_tracing(self):
        config = small_config()
        baseline = run_experiment(config)
        obs.configure(trace=True, metrics=True)
        traced = run_experiment(config)
        assert rows_without_elapsed(traced) == rows_without_elapsed(baseline)
        assert traced.errors == baseline.errors

    @_FORK_ONLY
    def test_parallel_rows_identical_with_tracing(self):
        config = small_config()
        baseline = run_experiment(config)
        obs.configure(trace=True, metrics=True)
        traced = run_experiment(config, workers=2)
        assert rows_without_elapsed(traced) == rows_without_elapsed(baseline)


# ----------------------------------------------------------------------
# Golden trace: the paper's worked example, observable end to end
# ----------------------------------------------------------------------
class TestGoldenTrace:
    def test_cds_trajectory_reaches_paper_cost(self):
        database = paper_database()
        rough = drp_allocate(
            database, PAPER_NUM_CHANNELS, split_policy="max-reduction"
        )
        refined = cds_refine(rough.allocation)
        trajectory = refined.cost_trajectory
        assert trajectory[0] == pytest.approx(rough.cost)
        assert all(
            later <= earlier
            for earlier, later in zip(trajectory, trajectory[1:])
        ), "CDS cost trajectory must be monotonically non-increasing"
        assert trajectory[-1] == pytest.approx(
            PAPER_GOLDENS["cds_cost"], abs=0.005
        )
        assert abs(trajectory[-1] - refined.cost) < 1e-9

    def test_cds_span_carries_the_trajectory(self):
        tracer, _ = obs.configure(trace=True)
        database = paper_database()
        rough = drp_allocate(
            database, PAPER_NUM_CHANNELS, split_policy="max-reduction"
        )
        cds_refine(rough.allocation)
        span = tracer.find("cds.refine")[0]
        trajectory = span.attributes["cost_trajectory"]
        assert trajectory == list(cds_refine(rough.allocation).cost_trajectory)
        assert span.attributes["cost_final"] == pytest.approx(
            PAPER_GOLDENS["cds_cost"], abs=0.005
        )
        assert span.attributes["converged"] is True

    def test_drp_trajectory_tracks_running_cost(self):
        database = paper_database()
        result = drp_allocate(
            database, PAPER_NUM_CHANNELS, split_policy="max-reduction"
        )
        trajectory = result.cost_trajectory
        # Initial one-group cost plus one entry per split.
        assert len(trajectory) == result.iterations + 1
        assert all(
            later <= earlier
            for earlier, later in zip(trajectory, trajectory[1:])
        )
        assert trajectory[-1] == pytest.approx(result.cost)
        assert trajectory[-1] == pytest.approx(
            allocation_cost(result.allocation)
        )


# ----------------------------------------------------------------------
# Worker spans: parallel runs produce a complete merged trace
# ----------------------------------------------------------------------
@_FORK_ONLY
class TestWorkerSpans:
    def test_parallel_trace_has_every_cell(self):
        config = small_config()
        tracer, registry = obs.configure(trace=True, metrics=True)
        run_experiment(config, workers=2)

        cells = tracer.find("experiment.cell")
        grid = (
            len(config.sweep_values)
            * config.replications
            * len(config.algorithms)
        )
        assert len(cells) == grid
        run_span = tracer.find("experiment.run")[0]
        for cell in cells:
            assert cell.parent_id == run_span.span_id
            assert isinstance(cell.attributes["worker_pid"], int)
            assert cell.attributes["queue_wait_seconds"] >= 0.0
            assert cell.attributes["compute_seconds"] >= 0.0
        # Algorithm spans from the workers nest under their cells.
        cell_ids = {cell.span_id for cell in cells}
        drp_spans = tracer.find("drp.allocate")
        assert drp_spans
        assert all(span.parent_id in cell_ids for span in drp_spans)

        snapshot = registry.snapshot()
        assert snapshot["counters"]["experiment.cells"] == grid
        assert snapshot["counters"]["drp.runs"] == grid
        assert "experiment.queue_wait_seconds" in snapshot["histograms"]

    def test_exported_artifacts_validate(self, tmp_path):
        config = small_config(replications=1)
        tracer, registry = obs.configure(trace=True, metrics=True)
        run_experiment(config, workers=2)
        trace_path = tmp_path / "run.jsonl"
        metrics_path = tmp_path / "metrics.json"
        tracer.export_jsonl(trace_path)
        registry.export_json(metrics_path)
        assert validate_trace_jsonl(trace_path) == len(tracer.records)
        assert validate_metrics_snapshot(metrics_path) > 0


# ----------------------------------------------------------------------
# Overhead: disabled instrumentation must be (nearly) free
# ----------------------------------------------------------------------
class TestOverhead:
    def test_noop_span_cost_is_sub_microsecond_scale(self):
        """A disabled span costs a fraction of the smallest real run."""
        obs.reset()
        iterations = 20_000
        start = time.perf_counter()
        for _ in range(iterations):
            with obs.span("noop", a=1, b=2):
                pass
        per_span = (time.perf_counter() - start) / iterations
        # Generous CI bound: tens of microseconds would still pass the
        # <5% budget below; anything worse points at a regression on
        # the disabled path (e.g. building records while disabled).
        assert per_span < 50e-6

    def test_disabled_overhead_under_five_percent(self):
        """Instrumented-but-disabled runs stay within 5% of their cost.

        Spans are opened per *run*, never per item/move, so the no-op
        budget is spans-per-run x per-span cost.  Measuring two
        end-to-end timings in CI is hopelessly noisy; instead measure
        the per-span no-op cost, count the spans a run opens, and
        require head-room of 10x against 5% of the run's time.
        """
        obs.reset()
        database = generate_database(
            WorkloadSpec(num_items=120, skewness=0.8, seed=1)
        )

        def workload():
            rough = drp_allocate(database, 7)
            cds_refine(rough.allocation)

        workload()  # warm-up
        runs = 5
        start = time.perf_counter()
        for _ in range(runs):
            workload()
        run_seconds = (time.perf_counter() - start) / runs

        spans_per_run = 2  # drp.allocate + cds.refine
        iterations = 20_000
        start = time.perf_counter()
        for _ in range(iterations):
            with obs.span("noop", items=60, channels=5):
                pass
        per_span = (time.perf_counter() - start) / iterations

        overhead = spans_per_run * per_span
        assert overhead * 10 < run_seconds * 0.05, (
            f"no-op instrumentation costs {overhead * 1e6:.2f}us per run "
            f"against a {run_seconds * 1e3:.2f}ms workload"
        )
