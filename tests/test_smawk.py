"""SMAWK contiguous DP: triple parity, ties, SoA entry, vector path.

The SMAWK method must return *bitwise* the same optimal cost as the
O(K·N²) quadratic oracle and the divide-and-conquer DP — all three
evaluate the identical ``dp_prev[j] + (F_i − F_j)(Z_i − Z_j)`` floats —
while its boundary *choices* may legitimately differ among exact ties
(leftmost-window vs leftmost-``j``), so boundaries are validated by the
cost they realise.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.partition as partition
from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.core.partition import (
    DP_METHODS,
    PrefixSums,
    contiguous_optimal,
)


def _random_sums(rng, n):
    frequencies = rng.random(n) + 1e-3
    sizes = rng.random(n) + 1e-3
    order = np.argsort(-(frequencies / sizes), kind="stable")
    return PrefixSums.from_arrays(frequencies[order], sizes[order])


def _realized(sums, bounds):
    return sum(sums.cost(start, stop) for start, stop in bounds)


class TestTripleParity:
    def test_smawk_registered(self):
        assert "smawk" in DP_METHODS

    @pytest.mark.parametrize("seed", range(8))
    def test_costs_bitwise_equal_across_methods(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 120))
        k = int(rng.integers(1, min(9, n) + 1))
        sums = _random_sums(rng, n)
        bounds_by_method = {}
        costs = {}
        for method in ("quadratic", "divide-conquer", "smawk"):
            bounds, cost = contiguous_optimal(
                None, k, method=method, sums=sums
            )
            bounds_by_method[method] = bounds
            costs[method] = cost
        assert costs["quadratic"] == costs["smawk"]
        assert costs["divide-conquer"] == costs["smawk"]
        for method, bounds in bounds_by_method.items():
            assert _realized(sums, bounds) == pytest.approx(
                costs[method], rel=1e-12, abs=1e-12
            )

    def test_auto_resolves_to_smawk(self):
        rng = np.random.default_rng(42)
        sums = _random_sums(rng, 50)
        auto_bounds, auto_cost = contiguous_optimal(
            None, 4, method="auto", sums=sums
        )
        smawk_bounds, smawk_cost = contiguous_optimal(
            None, 4, method="smawk", sums=sums
        )
        assert auto_cost == smawk_cost
        assert auto_bounds == smawk_bounds

    def test_tie_heavy_uniform_items(self):
        # Identical items make every split cost equal at each layer —
        # maximal tie pressure on the argmin rules.
        items = [DataItem(f"d{i}", 0.1, 2.0) for i in range(1, 11)]
        database = BroadcastDatabase(items, require_normalized=False)
        ordered = database.sorted_by_benefit_ratio()
        sums = PrefixSums(ordered)
        for k in (1, 2, 3, 5, 10):
            _, quad = contiguous_optimal(ordered, k, method="quadratic")
            smawk_bounds, smawk = contiguous_optimal(
                ordered, k, method="smawk"
            )
            assert quad == smawk
            assert _realized(sums, smawk_bounds) == pytest.approx(
                smawk, rel=1e-12, abs=1e-12
            )

    def test_edge_shapes(self):
        rng = np.random.default_rng(3)
        sums = _random_sums(rng, 6)
        # K = N: every group a single item; total cost is the sum of
        # the diagonal F·Z products for every method.
        for method in ("quadratic", "divide-conquer", "smawk"):
            bounds, cost = contiguous_optimal(None, 6, method=method, sums=sums)
            assert bounds == [(i, i + 1) for i in range(6)]
        # K = 1: one group spanning everything.
        for method in ("quadratic", "divide-conquer", "smawk"):
            bounds, cost = contiguous_optimal(None, 1, method=method, sums=sums)
            assert bounds == [(0, 6)]
            assert cost == sums.cost(0, 6)


class TestSoAEntry:
    def test_from_arrays_matches_item_construction(self):
        rng = np.random.default_rng(17)
        n = 60
        frequencies = rng.random(n) + 1e-3
        sizes = rng.random(n) + 1e-3
        items = [
            DataItem(f"d{i + 1}", float(frequencies[i]), float(sizes[i]))
            for i in range(n)
        ]
        items.sort(key=lambda item: (-item.benefit_ratio, item.item_id))
        object_sums = PrefixSums(items)
        array_sums = PrefixSums.from_arrays(
            np.array([item.frequency for item in items]),
            np.array([item.size for item in items]),
        )
        for k in (1, 3, 7):
            _, object_cost = contiguous_optimal(
                items, k, method="smawk"
            )
            _, array_cost = contiguous_optimal(
                None, k, method="smawk", sums=array_sums
            )
            assert object_cost == array_cost
        assert object_sums.cost(5, 31) == array_sums.cost(5, 31)


class TestVectorizedInterpolate:
    def test_vector_path_matches_scalar_bitwise(self, monkeypatch):
        rng = np.random.default_rng(23)
        cases = [
            (int(rng.integers(8, 200)), int(rng.integers(2, 8)))
            for _ in range(12)
        ]
        for n, k in cases:
            k = min(k, n)
            sums = _random_sums(rng, n)
            monkeypatch.setattr(partition, "_SMAWK_VECTOR_ROWS", 1 << 30)
            scalar_bounds, scalar_cost = contiguous_optimal(
                None, k, method="smawk", sums=sums
            )
            monkeypatch.setattr(partition, "_SMAWK_VECTOR_ROWS", 2)
            vector_bounds, vector_cost = contiguous_optimal(
                None, k, method="smawk", sums=sums
            )
            assert vector_cost == scalar_cost
            assert vector_bounds == scalar_bounds
