"""Unit tests for mechanism CDS (repro.core.cds)."""

from __future__ import annotations

import pytest

from repro.core.allocation import ChannelAllocation
from repro.core.cds import cds_refine
from repro.core.cost import allocation_cost, move_delta
from repro.core.drp import drp_allocate


def worst_case_seed(db, k):
    """A deliberately bad contiguous allocation in catalogue order."""
    items = db.items
    size = max(1, len(items) // k)
    groups = [list(items[i * size: (i + 1) * size]) for i in range(k - 1)]
    groups.append(list(items[(k - 1) * size:]))
    return ChannelAllocation(db, groups)


class TestConvergence:
    def test_cost_never_increases(self, medium_db):
        seed = worst_case_seed(medium_db, 5)
        result = cds_refine(seed)
        assert result.cost <= result.initial_cost + 1e-9
        assert result.converged

    def test_moves_strictly_decrease_cost(self, medium_db):
        seed = worst_case_seed(medium_db, 5)
        result = cds_refine(seed)
        costs = [result.initial_cost] + [m.cost_after for m in result.moves]
        assert all(a > b for a, b in zip(costs, costs[1:]))

    def test_result_is_local_optimum(self, medium_db):
        """No single move can improve the refined allocation."""
        result = cds_refine(worst_case_seed(medium_db, 4))
        stats = result.allocation.channel_stats
        for origin, group in enumerate(result.allocation.channels):
            for item in group:
                for dest in range(result.allocation.num_channels):
                    if dest == origin:
                        continue
                    delta = move_delta(
                        item,
                        origin_frequency=stats[origin].frequency,
                        origin_size=stats[origin].size,
                        dest_frequency=stats[dest].frequency,
                        dest_size=stats[dest].size,
                    )
                    assert delta <= 1e-9

    def test_fixpoint_when_seeded_with_local_optimum(self, medium_db):
        once = cds_refine(worst_case_seed(medium_db, 5))
        twice = cds_refine(once.allocation)
        assert twice.iterations == 0
        assert twice.cost == pytest.approx(once.cost)

    def test_channels_stay_nonempty(self, medium_db):
        result = cds_refine(worst_case_seed(medium_db, 6))
        assert all(
            stat.count >= 1 for stat in result.allocation.channel_stats
        )

    def test_partition_preserved(self, medium_db):
        seed = worst_case_seed(medium_db, 6)
        result = cds_refine(seed)
        moved_ids = sorted(
            item.item_id
            for group in result.allocation.channels
            for item in group
        )
        assert moved_ids == sorted(medium_db.item_ids)


class TestAccounting:
    def test_reported_cost_matches_allocation(self, medium_db):
        result = cds_refine(worst_case_seed(medium_db, 5))
        assert result.cost == pytest.approx(
            allocation_cost(result.allocation)
        )

    def test_improvement_property(self, medium_db):
        result = cds_refine(worst_case_seed(medium_db, 5))
        assert result.improvement == pytest.approx(
            result.initial_cost - result.cost
        )

    def test_moves_sum_to_improvement(self, medium_db):
        result = cds_refine(worst_case_seed(medium_db, 5))
        assert sum(m.delta for m in result.moves) == pytest.approx(
            result.improvement, rel=1e-6
        )

    def test_iterations_counts_moves(self, medium_db):
        result = cds_refine(worst_case_seed(medium_db, 5))
        assert result.iterations == len(result.moves)


class TestMaxIterations:
    def test_zero_budget_returns_seed(self, medium_db):
        seed = worst_case_seed(medium_db, 5)
        result = cds_refine(seed, max_iterations=0)
        assert result.iterations == 0
        assert result.cost == pytest.approx(allocation_cost(seed))

    def test_budget_caps_moves_and_flags_nonconvergence(self, medium_db):
        unbounded = cds_refine(worst_case_seed(medium_db, 5))
        assert unbounded.iterations > 1
        capped = cds_refine(worst_case_seed(medium_db, 5), max_iterations=1)
        assert capped.iterations == 1
        assert not capped.converged

    def test_capped_first_move_is_the_best_move(self, medium_db):
        unbounded = cds_refine(worst_case_seed(medium_db, 5))
        capped = cds_refine(worst_case_seed(medium_db, 5), max_iterations=1)
        assert capped.moves[0] == unbounded.moves[0]


class TestWithDRP:
    def test_refines_drp_output(self, medium_db):
        rough = drp_allocate(medium_db, 6)
        refined = cds_refine(rough.allocation)
        assert refined.cost <= rough.cost + 1e-9

    def test_greedy_move_choice_is_maximal(self, medium_db):
        """The first executed move has the largest achievable delta."""
        seed = worst_case_seed(medium_db, 4)
        result = cds_refine(seed, max_iterations=1)
        if not result.moves:
            pytest.skip("seed already locally optimal")
        best = result.moves[0].delta
        stats = seed.channel_stats
        for origin, group in enumerate(seed.channels):
            for item in group:
                for dest in range(seed.num_channels):
                    if dest == origin:
                        continue
                    delta = move_delta(
                        item,
                        origin_frequency=stats[origin].frequency,
                        origin_size=stats[origin].size,
                        dest_frequency=stats[dest].frequency,
                        dest_size=stats[dest].size,
                    )
                    assert delta <= best + 1e-9
