"""Live telemetry must never perturb the authoritative metrics.

The live path (periodic worker snapshots merged into a throwaway
overlay registry, the OpenMetrics endpoint, the JSONL stream) is a
*view*; the per-cell drain-merge pipeline stays the source of truth.
These tests pin that invariant:

* overlay units — ``obs.live_snapshot`` merges worker overlays
  additively and never mutates the in-process registry;
* parity — the final snapshot of a ``workers=2`` sweep is identical
  with live telemetry on and off, and identical to the serial run,
  once wall-clock-derived instruments (``*seconds*``, ``*heartbeat*``)
  are set aside;
* the endpoint serves the merged result after the pool drains.
"""

from __future__ import annotations

import json
import multiprocessing
import sys
import urllib.request

import pytest

from repro import obs
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.obs.metrics import MetricsRegistry

_FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=False) != "fork"
    and sys.platform != "linux",
    reason="worker tests assume a fork-capable platform",
)


@pytest.fixture(autouse=True)
def _reset_obs():
    obs.reset()
    yield
    obs.reset()


def small_config(**overrides):
    defaults = dict(
        name="live-test",
        description="live telemetry sweep",
        sweep_parameter="num_channels",
        sweep_values=(3.0, 4.0),
        algorithms=("drp", "drp-cds"),
        num_items=20,
        replications=2,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def deterministic_part(snapshot):
    """The snapshot minus wall-clock-derived instruments.

    Timing histograms (``*_seconds``), EWMA rate gauges
    (``*_per_second``) and heartbeat emissions (throttled on wall
    time) legitimately vary run to run; everything else must be
    bit-for-bit reproducible.
    """

    def keep(key):
        return "seconds" not in key and "heartbeat" not in key

    return json.dumps(
        {
            section: {
                key: value
                for key, value in snapshot[section].items()
                if keep(key)
            }
            for section in ("counters", "gauges", "histograms")
        },
        sort_keys=True,
    )


class TestLiveOverlay:
    def test_without_overlays_live_snapshot_is_plain_snapshot(self):
        obs.configure(metrics=True)
        obs.get_metrics().counter("x").inc(2)
        assert obs.live_snapshot() == obs.get_metrics().snapshot()

    def test_overlays_merge_additively_in_the_view_only(self):
        obs.configure(metrics=True)
        obs.get_metrics().counter("moves").inc(10)
        worker = MetricsRegistry()
        worker.counter("moves").inc(5)
        worker.counter("worker.only").inc(1)
        obs.update_live_overlay(4242, worker.snapshot())
        live = obs.live_snapshot()
        assert live["counters"]["moves"] == 15
        assert live["counters"]["worker.only"] == 1
        # The authoritative registry is untouched by the overlay.
        assert obs.get_metrics().snapshot()["counters"]["moves"] == 10
        assert "worker.only" not in obs.get_metrics().snapshot()["counters"]

    def test_overlay_replacement_is_not_cumulative(self):
        obs.configure(metrics=True)
        worker = MetricsRegistry()
        worker.counter("moves").inc(5)
        obs.update_live_overlay(1, worker.snapshot())
        worker.counter("moves").inc(5)  # worker ships cumulative totals
        obs.update_live_overlay(1, worker.snapshot())
        assert obs.live_snapshot()["counters"]["moves"] == 10

    def test_clear_overlay_drops_the_worker_view(self):
        obs.configure(metrics=True)
        worker = MetricsRegistry()
        worker.counter("moves").inc(5)
        obs.update_live_overlay(1, worker.snapshot())
        obs.clear_live_overlay(1)
        assert "moves" not in obs.live_snapshot()["counters"]
        obs.update_live_overlay(2, worker.snapshot())
        obs.clear_live_overlays()
        assert "moves" not in obs.live_snapshot()["counters"]


@_FORK_ONLY
class TestLiveParity:
    def _run(self, *, workers=None, live=False, tmp_path=None):
        obs.reset()
        obs.configure(metrics=True)
        if live:
            obs.start_metrics_server(0)
            obs.start_metrics_stream(
                str(tmp_path / f"stream-{workers}.jsonl"), interval=3600.0
            )
        result = run_experiment(small_config(), workers=workers)
        snapshot = obs.get_metrics().snapshot()
        obs.stop_live()
        return result, snapshot

    def test_parallel_snapshot_unchanged_by_live_telemetry(self, tmp_path):
        _, plain = self._run(workers=2)
        _, live = self._run(workers=2, live=True, tmp_path=tmp_path)
        assert deterministic_part(plain) == deterministic_part(live)

    def test_serial_and_parallel_agree_under_live_telemetry(self, tmp_path):
        result_serial, serial = self._run(
            workers=None, live=True, tmp_path=tmp_path
        )
        result_parallel, parallel = self._run(
            workers=2, live=True, tmp_path=tmp_path
        )
        # The computed rows are identical; the parallel layer adds its
        # own bookkeeping counters (experiment.cells*) on top of the
        # serial set, so metric parity is subset equality: every
        # deterministic instrument the serial run records must come out
        # of the worker drain-merge with the exact same value.
        assert [row.algorithm for row in result_serial.rows] == [
            row.algorithm for row in result_parallel.rows
        ]
        serial_part = json.loads(deterministic_part(serial))
        parallel_part = json.loads(deterministic_part(parallel))
        for section in ("counters", "gauges", "histograms"):
            for key, value in serial_part[section].items():
                assert parallel_part[section][key] == value, key

    def test_no_overlays_survive_the_pool(self, tmp_path):
        obs.configure(metrics=True)
        obs.start_metrics_server(0)
        run_experiment(small_config(), workers=2)
        # Pool teardown cleared every worker overlay: the live view is
        # exactly the in-process registry again.
        assert obs.live_snapshot() == obs.get_metrics().snapshot()
        obs.stop_live()

    def test_endpoint_serves_merged_worker_metrics(self, tmp_path):
        obs.configure(metrics=True)
        server = obs.start_metrics_server(0)
        run_experiment(small_config(), workers=2)
        url = f"http://127.0.0.1:{server.port}/metrics"
        with urllib.request.urlopen(url, timeout=5) as response:
            body = response.read().decode("utf-8")
        grid = 2 * 2 * 2  # sweep values x replications x algorithms
        assert f"repro_experiment_cells_total {grid}" in body
        obs.stop_live()

    def test_stream_final_tick_reflects_the_run(self, tmp_path):
        obs.configure(metrics=True)
        path = tmp_path / "stream.jsonl"
        obs.start_metrics_stream(str(path), interval=3600.0)
        run_experiment(small_config(), workers=2)
        obs.stop_live()
        ticks = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        assert ticks
        assert ticks[-1]["counters"]["experiment.cells"]["total"] == 8
