"""Unit tests for the pure invariant checkers."""

from __future__ import annotations

import pytest

from repro.core.allocation import ChannelAllocation
from repro.core.cds import cds_refine
from repro.core.cost import move_delta
from repro.core.drp import drp_allocate
from repro.verify.invariants import (
    Violation,
    check_allocation_wellformed,
    check_cost_identities,
    check_lower_bounds,
    check_move_delta,
    check_prefix_sums,
)


@pytest.fixture
def paper_allocation(paper_db):
    return drp_allocate(paper_db, 5).allocation


class TestViolation:
    def test_to_dict_roundtrip(self):
        violation = Violation(
            check="invariants.example", message="boom", context={"k": 3}
        )
        assert violation.to_dict() == {
            "check": "invariants.example",
            "message": "boom",
            "context": {"k": 3},
        }


class TestWellformed:
    def test_clean_on_valid_allocation(self, paper_allocation):
        assert check_allocation_wellformed(paper_allocation) == []

    def test_flags_empty_channel(self, tiny_db):
        allocation = ChannelAllocation(
            tiny_db,
            [list(tiny_db.items), []],
            allow_empty_channels=True,
        )
        violations = check_allocation_wellformed(allocation)
        assert any("empty" in v.message for v in violations)
        assert check_allocation_wellformed(
            allocation, allow_empty_channels=True
        ) == []

    def test_flags_duplicate_item(self, tiny_db):
        items = tiny_db.items
        # Public construction validates, so build the broken shape
        # through the trusted path the kernels use internally.
        allocation = ChannelAllocation._trusted(
            tiny_db,
            [[items[0], items[1]], [items[1], items[2], items[3]]],
        )
        violations = check_allocation_wellformed(allocation)
        messages = " ".join(v.message for v in violations)
        assert "channels 0 and 1" in messages


class TestCostIdentities:
    def test_clean_on_drp_and_cds_output(self, paper_db):
        drp = drp_allocate(paper_db, 5)
        cds = cds_refine(drp.allocation)
        assert check_cost_identities(drp.allocation) == []
        assert check_cost_identities(cds.allocation) == []

    def test_clean_on_uniform_db(self, uniform_db):
        allocation = drp_allocate(uniform_db, 3).allocation
        assert check_cost_identities(allocation) == []


class TestMoveDelta:
    def test_clean_with_production_delta(self, paper_allocation):
        assert check_move_delta(paper_allocation) == []

    def test_sign_flip_is_caught(self, paper_allocation):
        def flipped(item, **kwargs):
            return -move_delta(item, **kwargs)

        violations = check_move_delta(paper_allocation, delta_fn=flipped)
        assert violations
        assert all(v.check == "invariants.move-delta" for v in violations)

    def test_dropped_term_is_caught(self, paper_allocation):
        def dropped(item, **kwargs):
            # Forget the -2 f z self-interaction term of Eq. (4).
            return move_delta(item, **kwargs) + 2.0 * (
                item.frequency * item.size
            )

        assert check_move_delta(paper_allocation, delta_fn=dropped)

    def test_single_channel_has_no_moves(self, tiny_db):
        allocation = ChannelAllocation(tiny_db, [list(tiny_db.items)])
        assert check_move_delta(allocation) == []


class TestPrefixSums:
    def test_clean_on_paper_items(self, paper_db):
        assert check_prefix_sums(paper_db.sorted_by_benefit_ratio()) == []

    def test_clean_on_empty_and_single(self, tiny_db):
        assert check_prefix_sums([]) == []
        assert check_prefix_sums(tiny_db.items[:1]) == []


class TestLowerBounds:
    def test_clean_on_paper_database(self, paper_db):
        assert check_lower_bounds(paper_db, 5) == []

    def test_clean_on_medium_db(self, medium_db):
        assert check_lower_bounds(medium_db, 4) == []

    def test_infeasible_channel_count_is_vacuous(self, tiny_db):
        assert check_lower_bounds(tiny_db, 99) == []
