"""Tests for the sharded, resumable experiment fabric.

The headline property: for any (shard layout x worker count x resume
history) — including a SIGKILL mid-shard that leaves a torn trailing
record and a stale done-set entry — ``merge_shards`` reproduces the
serial ``run_experiment`` rows exactly (wall-clock ``elapsed``
aggregates excepted).
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.allocation import ChannelAllocation
from repro.core.scheduler import Allocator, register_allocator
from repro.exceptions import ShardError
from repro.experiments.config import ExperimentConfig
from repro.experiments.records import cell_key, identity_key
from repro.experiments.runner import run_experiment
from repro.experiments.shards import (
    KILL_AFTER_ENV_VAR,
    ShardManifest,
    compile_manifest,
    load_manifest,
    merge_shards,
    run_shard,
    save_manifest,
    shard_cells,
    shard_status,
    spec_key,
)
from repro.experiments.parallel import build_cell_grid
from repro.experiments.store import (
    ShardStore,
    scan_chunk,
    store_chunk_path,
    store_done_path,
)

_FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=False) != "fork",
    reason="pool tests assume the fork start method",
)


class _ShardExplodingAllocator(Allocator):
    name = "test-shard-exploding"

    def _allocate(self, database, num_channels) -> ChannelAllocation:
        raise RuntimeError("boom on purpose")


register_allocator("test-shard-exploding", _ShardExplodingAllocator)


def small_config(**overrides):
    defaults = dict(
        name="shards-test",
        description="shard fabric test sweep",
        sweep_parameter="num_channels",
        sweep_values=(3.0, 4.0),
        algorithms=("drp", "drp-cds"),
        num_items=20,
        replications=2,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def rows_without_elapsed(result):
    """Rows with the only legitimately nondeterministic fields zeroed."""
    return [
        dataclasses.replace(
            row, mean_elapsed_seconds=0.0, std_elapsed_seconds=0.0
        )
        for row in result.rows
    ]


def run_all_shards(manifest, results_dir, **kwargs):
    return [
        run_shard(manifest, shard, results_dir=results_dir, **kwargs)
        for shard in range(manifest.num_shards)
    ]


# ----------------------------------------------------------------------
# Manifest compilation
# ----------------------------------------------------------------------
class TestManifest:
    def test_compile_is_deterministic(self):
        config = small_config()
        first = compile_manifest(config, num_shards=3)
        second = compile_manifest(config, num_shards=3)
        assert first == second
        assert first.config_sha256 == second.config_sha256

    def test_assignments_partition_the_grid(self):
        config = small_config(replications=3)
        manifest = compile_manifest(config, num_shards=3)
        grid = build_cell_grid(config)
        seen = sorted(
            index for shard in manifest.assignments for index in shard
        )
        assert seen == list(range(len(grid)))
        # Contiguous slices: every shard's cells are a run of grid order.
        for shard in manifest.assignments:
            assert list(shard) == list(range(shard[0], shard[-1] + 1))

    def test_shard_count_bounds(self):
        config = small_config()
        with pytest.raises(ShardError):
            compile_manifest(config, num_shards=0)
        with pytest.raises(ShardError):
            compile_manifest(config, num_shards=10_000)

    def test_save_load_round_trip(self, tmp_path):
        config = small_config()
        manifest = compile_manifest(config, num_shards=2, warm_start=True)
        path = tmp_path / "manifest.json"
        save_manifest(manifest, path)
        loaded = load_manifest(path)
        assert loaded == manifest
        assert isinstance(loaded, ShardManifest)
        assert loaded.warm_start is True

    def test_load_rejects_unknown_schema(self, tmp_path):
        config = small_config()
        manifest = compile_manifest(config, num_shards=2)
        path = tmp_path / "manifest.json"
        save_manifest(manifest, path)
        payload = json.loads(path.read_text())
        payload["schema"] = "repro.shards.manifest/v999"
        path.write_text(json.dumps(payload))
        with pytest.raises(ShardError, match="schema"):
            load_manifest(path)

    def test_load_rejects_tampered_config(self, tmp_path):
        config = small_config()
        manifest = compile_manifest(config, num_shards=2)
        path = tmp_path / "manifest.json"
        save_manifest(manifest, path)
        payload = json.loads(path.read_text())
        payload["config"]["num_items"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ShardError, match="digest"):
            load_manifest(path)

    def test_load_rejects_broken_partition(self, tmp_path):
        config = small_config()
        manifest = compile_manifest(config, num_shards=2)
        path = tmp_path / "manifest.json"
        save_manifest(manifest, path)
        payload = json.loads(path.read_text())
        payload["assignments"][0] = payload["assignments"][0][1:]
        path.write_text(json.dumps(payload))
        with pytest.raises(ShardError, match="partition"):
            load_manifest(path)

    def test_shard_cells_returns_grid_specs(self):
        config = small_config()
        manifest = compile_manifest(config, num_shards=2)
        grid = build_cell_grid(config)
        cells = shard_cells(manifest, 0)
        assert cells == [grid[i] for i in manifest.assignments[0]]


# ----------------------------------------------------------------------
# Cell identity keys
# ----------------------------------------------------------------------
class TestIdentityKeys:
    def test_identity_key_format(self):
        key = identity_key([("algorithm", "drp"), ("seed", 7)])
        assert key == "[algorithm=drp,seed=7]"

    def test_cell_key_is_stable(self):
        key = cell_key(
            algorithm="drp", value=4, replication=1, seed=20051004
        )
        assert key == (
            "[algorithm=drp,value=4.0,replication=1,seed=20051004]"
        )

    def test_spec_key_embeds_derived_seed(self):
        config = small_config()
        grid = build_cell_grid(config)
        spec = grid[-1]
        key = spec_key(config, spec)
        assert f"seed={config.seed_for(spec.value_index, spec.replication)}" in key
        assert f"algorithm={spec.algorithm}" in key

    def test_spec_keys_unique_across_grid(self):
        config = small_config(replications=3)
        grid = build_cell_grid(config)
        keys = {spec_key(config, spec) for spec in grid}
        assert len(keys) == len(grid)


# ----------------------------------------------------------------------
# Chunked on-disk store
# ----------------------------------------------------------------------
class TestShardStore:
    PAYLOAD = {"cost": 1.25, "error": None, "algorithm": "drp"}

    def test_round_trip(self, tmp_path):
        with ShardStore.open(tmp_path, 0, config_sha256="abc") as store:
            assert store.append_cell("[k=1]", self.PAYLOAD)
            assert store.append_seed("seed[k=1]", {"cost": 2.0})
        scan = ShardStore.scan(tmp_path, 0)
        assert scan.cells == {"[k=1]": self.PAYLOAD}
        assert scan.seeds == {"seed[k=1]": {"cost": 2.0}}

    def test_duplicate_append_is_noop(self, tmp_path):
        with ShardStore.open(tmp_path, 0) as store:
            assert store.append_cell("[k=1]", self.PAYLOAD)
            assert not store.append_cell("[k=1]", self.PAYLOAD)
            assert store.is_done("[k=1]")
            assert set(store.completed_keys()) == {"[k=1]"}

    def test_reopen_resumes_done_set(self, tmp_path):
        with ShardStore.open(tmp_path, 0, config_sha256="abc") as store:
            store.append_cell("[k=1]", self.PAYLOAD)
        with ShardStore.open(tmp_path, 0, config_sha256="abc") as store:
            assert store.is_done("[k=1]")
            assert store.cells["[k=1]"] == self.PAYLOAD

    def test_reopen_rejects_other_config(self, tmp_path):
        with ShardStore.open(tmp_path, 0, config_sha256="abc"):
            pass
        with pytest.raises(ShardError, match="digest"):
            ShardStore.open(tmp_path, 0, config_sha256="other")

    def test_torn_trailing_record_dropped_on_open(self, tmp_path):
        with ShardStore.open(tmp_path, 0) as store:
            store.append_cell("[k=1]", self.PAYLOAD)
        chunk = store_chunk_path(tmp_path, 0)
        with chunk.open("ab") as handle:
            handle.write(b'{"kind": "cell", "key": "[torn')
        with ShardStore.open(tmp_path, 0) as store:
            assert store.torn_dropped == 1
            assert store.cells == {"[k=1]": self.PAYLOAD}
        # The truncation is persistent: a second open is clean.
        assert ShardStore.scan(tmp_path, 0).torn_dropped == 0

    def test_mid_file_corruption_is_an_error(self, tmp_path):
        with ShardStore.open(tmp_path, 0) as store:
            store.append_cell("[k=1]", self.PAYLOAD)
            store.append_cell("[k=2]", self.PAYLOAD)
        chunk = store_chunk_path(tmp_path, 0)
        lines = chunk.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"garbage": true}\n'
        chunk.write_bytes(b"".join(lines))
        with pytest.raises(ShardError, match="corrupt"):
            scan_chunk(chunk)

    def test_crc_mismatch_mid_file_is_an_error(self, tmp_path):
        with ShardStore.open(tmp_path, 0) as store:
            store.append_cell("[k=1]", self.PAYLOAD)
            store.append_cell("[k=2]", self.PAYLOAD)
        chunk = store_chunk_path(tmp_path, 0)
        lines = chunk.read_bytes().splitlines(keepends=True)
        record = json.loads(lines[1])
        record["crc"] = (record["crc"] + 1) & 0xFFFFFFFF
        lines[1] = json.dumps(record).encode() + b"\n"
        chunk.write_bytes(b"".join(lines))
        with pytest.raises(ShardError, match="corrupt"):
            scan_chunk(chunk)

    def test_stale_done_entry_dropped(self, tmp_path):
        with ShardStore.open(tmp_path, 0) as store:
            store.append_cell("[k=1]", self.PAYLOAD)
        done = store_done_path(tmp_path, 0)
        with done.open("a") as handle:
            handle.write("[stale-entry]\n")
        with ShardStore.open(tmp_path, 0) as store:
            assert store.stale_done_dropped == 1
            assert not store.is_done("[stale-entry]")
            assert store.is_done("[k=1]")

    def test_missing_done_file_rebuilt_from_chunk(self, tmp_path):
        with ShardStore.open(tmp_path, 0) as store:
            store.append_cell("[k=1]", self.PAYLOAD)
        store_done_path(tmp_path, 0).unlink()
        with ShardStore.open(tmp_path, 0) as store:
            assert store.is_done("[k=1]")
        assert "[k=1]" in store_done_path(tmp_path, 0).read_text()


# ----------------------------------------------------------------------
# Layout invariance: the headline property
# ----------------------------------------------------------------------
class TestLayoutInvariance:
    @pytest.mark.parametrize("num_shards", [1, 2, 3])
    def test_merge_matches_serial(self, tmp_path, num_shards):
        config = small_config()
        serial = run_experiment(config)
        manifest = compile_manifest(config, num_shards=num_shards)
        run_all_shards(manifest, tmp_path)
        merged = merge_shards(manifest, results_dir=tmp_path)
        assert rows_without_elapsed(merged) == rows_without_elapsed(serial)
        assert merged.errors == serial.errors

    @_FORK_ONLY
    def test_pooled_shard_matches_serial(self, tmp_path):
        config = small_config()
        serial = run_experiment(config)
        manifest = compile_manifest(config, num_shards=2)
        run_shard(manifest, 0, results_dir=tmp_path, workers=2)
        run_shard(manifest, 1, results_dir=tmp_path)
        merged = merge_shards(manifest, results_dir=tmp_path)
        assert rows_without_elapsed(merged) == rows_without_elapsed(serial)

    def test_error_cells_surface_in_merge(self, tmp_path):
        config = small_config(algorithms=("drp", "test-shard-exploding"))
        manifest = compile_manifest(config, num_shards=2)
        reports = run_all_shards(manifest, tmp_path)
        assert sum(r.cell_errors for r in reports) == 4
        merged = merge_shards(manifest, results_dir=tmp_path)
        # workers=1 selects the inline fan-out layer, which records the
        # failures instead of raising (serial mode would raise).
        reference = run_experiment(config, workers=1)
        assert rows_without_elapsed(merged) == rows_without_elapsed(reference)
        assert len(merged.errors) == 4
        assert all("boom on purpose" in e.message for e in merged.errors)

    def test_merge_refuses_incomplete_sweep(self, tmp_path):
        config = small_config()
        manifest = compile_manifest(config, num_shards=2)
        run_shard(manifest, 0, results_dir=tmp_path)
        with pytest.raises(ShardError, match="missing"):
            merge_shards(manifest, results_dir=tmp_path)

    def test_status_reports_progress(self, tmp_path):
        config = small_config()
        manifest = compile_manifest(config, num_shards=2)
        run_shard(manifest, 0, results_dir=tmp_path)
        status = shard_status(manifest, results_dir=tmp_path)
        assert status[0]["missing"] == 0
        assert status[1]["missing"] == status[1]["cells"]


# ----------------------------------------------------------------------
# Idempotent resume (satellite: kill/resume)
# ----------------------------------------------------------------------
class TestResume:
    def test_rerun_recomputes_nothing(self, tmp_path):
        config = small_config()
        manifest = compile_manifest(config, num_shards=1)
        first = run_shard(manifest, 0, results_dir=tmp_path)
        second = run_shard(manifest, 0, results_dir=tmp_path)
        assert first.computed == manifest.num_cells
        assert second.computed == 0
        assert second.already_complete == manifest.num_cells

    def test_max_cells_bounds_one_invocation(self, tmp_path):
        config = small_config()
        manifest = compile_manifest(config, num_shards=1)
        partial = run_shard(manifest, 0, results_dir=tmp_path, max_cells=3)
        assert partial.computed == 3
        assert partial.remaining == manifest.num_cells - 3
        rest = run_shard(manifest, 0, results_dir=tmp_path)
        assert rest.already_complete == 3
        assert rest.computed == manifest.num_cells - 3

    def test_torn_record_and_stale_done_resume(self, tmp_path):
        """The satellite scenario: a partial store with a truncated
        trailing JSONL record AND a stale done-set entry resumes by
        dropping both, recomputing only the missing cells, and merging
        rows identical to a clean serial run."""
        config = small_config()
        serial = run_experiment(config)
        manifest = compile_manifest(config, num_shards=1)
        partial = run_shard(manifest, 0, results_dir=tmp_path, max_cells=2)
        assert partial.computed == 2

        chunk = store_chunk_path(tmp_path, 0)
        with chunk.open("ab") as handle:
            handle.write(b'{"kind": "cell", "key": "[torn')
        done = store_done_path(tmp_path, 0)
        with done.open("a") as handle:
            handle.write("[stale-done-entry]\n")

        resumed = run_shard(manifest, 0, results_dir=tmp_path)
        assert resumed.torn_records_dropped == 1
        assert resumed.stale_done_dropped == 1
        assert resumed.already_complete == 2
        assert resumed.computed == manifest.num_cells - 2

        merged = merge_shards(manifest, results_dir=tmp_path)
        assert rows_without_elapsed(merged) == rows_without_elapsed(serial)

    def test_sigkill_mid_shard_resumes_clean(self, tmp_path):
        """End-to-end: SIGKILL a real shard subprocess mid-run via the
        kill-switch env var, then resume in-process and merge."""
        config = small_config()
        serial = run_experiment(config)
        manifest = compile_manifest(config, num_shards=1)
        manifest_path = tmp_path / "manifest.json"
        save_manifest(manifest, manifest_path)
        results_dir = tmp_path / "results"

        env = dict(os.environ)
        src = Path(__file__).resolve().parents[1] / "src"
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        env[KILL_AFTER_ENV_VAR] = "2"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "shard", "run",
                str(manifest_path), "--shard", "0",
                "--results-dir", str(results_dir), "--quiet",
            ],
            env=env,
            capture_output=True,
        )
        assert proc.returncode == -signal.SIGKILL or proc.returncode == 137

        status = shard_status(manifest, results_dir=results_dir)
        assert status[0]["torn_trailing_record"] is True
        assert status[0]["done"] == 2

        resumed = run_shard(manifest, 0, results_dir=results_dir)
        assert resumed.torn_records_dropped == 1
        assert resumed.already_complete == 2
        merged = merge_shards(manifest, results_dir=results_dir)
        assert rows_without_elapsed(merged) == rows_without_elapsed(serial)


# ----------------------------------------------------------------------
# Warm-start seed DAG across shard boundaries
# ----------------------------------------------------------------------
class TestWarmAcrossShards:
    def warm_config(self, **overrides):
        # 2 values x 3 replications x 2 algorithms = 12 cells; 3 shards
        # of 4 cells cut across each value's replications, so rep>0
        # cells land on a different shard than the rep0 whose warm seed
        # they consume — the cross-shard seed DAG is actually exercised.
        return small_config(
            sweep_values=(3.0, 4.0), replications=3, **overrides
        )

    def test_warm_in_order_matches_serial_warm(self, tmp_path):
        config = self.warm_config()
        serial = run_experiment(config, warm_start=True)
        manifest = compile_manifest(config, num_shards=3, warm_start=True)
        reports = run_all_shards(manifest, tmp_path)
        merged = merge_shards(manifest, results_dir=tmp_path)
        assert rows_without_elapsed(merged) == rows_without_elapsed(serial)
        # Later shards consumed earlier shards' persisted seeds.
        assert any(report.seeds_imported > 0 for report in reports[1:])

    def test_warm_out_of_order_matches_serial_warm(self, tmp_path):
        config = self.warm_config()
        serial = run_experiment(config, warm_start=True)
        manifest = compile_manifest(config, num_shards=3, warm_start=True)
        reports = {
            shard: run_shard(manifest, shard, results_dir=tmp_path)
            for shard in (2, 0, 1)
        }
        merged = merge_shards(manifest, results_dir=tmp_path)
        assert rows_without_elapsed(merged) == rows_without_elapsed(serial)
        # Shard 2 ran first with no upstream stores: the seed chain was
        # recomputed cold, deterministically.
        assert reports[2].seed_recomputes > 0

    def test_seed_edges_stay_within_grid(self):
        config = self.warm_config()
        manifest = compile_manifest(config, num_shards=2, warm_start=True)
        total = manifest.num_cells
        for src, dst in manifest.seed_edges:
            assert 0 <= src < total
            assert 0 <= dst < total
