"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

from tests.conftest import PAPER_GOLDENS


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("list", "example", "allocate", "figure", "simulate"):
            args = parser.parse_args(
                [command] + (["figure2"] if command == "figure" else [])
            )
            assert args.command == command

    def test_figure_requires_valid_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "figure99"])


class TestListCommand:
    def test_lists_algorithms_and_figures(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for token in ("drp-cds", "gopt", "vfk", "figure2", "figure7"):
            assert token in output


class TestExampleCommand:
    def test_walks_paper_tables(self, capsys):
        assert main(["example"]) == 0
        output = capsys.readouterr().out
        assert f"{PAPER_GOLDENS['initial_cost']:.1f}" in output  # Table 3(a)
        assert f"{PAPER_GOLDENS['drp_cost']:.2f}" in output      # DRP cost
        assert f"{PAPER_GOLDENS['cds_cost']:.2f}" in output      # CDS cost
        assert "move d10" in output       # first CDS move
        assert "channel 5" in output      # five channels printed


class TestAllocateCommand:
    def test_runs_selected_algorithms(self, capsys):
        code = main(
            [
                "allocate",
                "--items", "20",
                "--channels", "3",
                "--algorithms", "drp", "drp-cds",
                "--seed", "7",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "drp-cds" in output
        assert "lower bound" in output

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            main(
                [
                    "allocate",
                    "--items", "10",
                    "--channels", "2",
                    "--algorithms", "not-an-algo",
                ]
            )


class TestFigureCommand:
    def test_quick_figure_run_with_exports(self, capsys, tmp_path, monkeypatch):
        # Shrink the sweep via replications override; figure6 has only
        # two algorithms and is the fastest.
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        code = main(
            [
                "figure", "figure6",
                "--replications", "1",
                "--quiet",
                "--csv", str(csv_path),
                "--json", str(json_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        assert json_path.exists()
        output = capsys.readouterr().out
        assert "mean_elapsed_seconds" in output


class TestSimulateCommand:
    def test_reports_measured_vs_analytical(self, capsys):
        code = main(
            [
                "simulate",
                "--items", "20",
                "--channels", "3",
                "--requests", "2000",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "measured waiting time" in output
        assert "analytical waiting time" in output
        assert "relative error" in output
