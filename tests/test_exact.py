"""Unit tests for the exact solvers (repro.baselines.exact)."""

from __future__ import annotations

import pytest

from repro.baselines.exact import (
    BruteForceAllocator,
    ContiguousDPAllocator,
    brute_force_optimal,
    partitions_into_k,
    stirling2,
)
from repro.core.cost import allocation_cost
from repro.core.scheduler import DRPCDSAllocator
from repro.exceptions import InfeasibleProblemError, SolverLimitError
from repro.workloads.generator import WorkloadSpec, generate_database


class TestStirling:
    @pytest.mark.parametrize(
        "n,k,expected",
        [
            (0, 0, 1),
            (1, 1, 1),
            (4, 2, 7),
            (5, 3, 25),
            (6, 3, 90),
            (10, 5, 42525),
            (5, 6, 0),
            (5, 0, 0),
        ],
    )
    def test_known_values(self, n, k, expected):
        assert stirling2(n, k) == expected

    def test_recurrence(self):
        for n in range(2, 10):
            for k in range(1, n):
                assert stirling2(n, k) == (
                    k * stirling2(n - 1, k) + stirling2(n - 1, k - 1)
                )

    def test_negative_rejected(self):
        with pytest.raises(InfeasibleProblemError):
            stirling2(-1, 2)


class TestPartitionEnumeration:
    def test_count_matches_stirling(self):
        for n in range(1, 8):
            for k in range(1, n + 1):
                count = sum(1 for _ in partitions_into_k(n, k))
                assert count == stirling2(n, k)

    def test_partitions_are_canonical_rgs(self):
        for assignment in partitions_into_k(5, 3):
            assert assignment[0] == 0
            running_max = 0
            for label in assignment[1:]:
                assert label <= running_max + 1
                running_max = max(running_max, label)
            assert set(assignment) == {0, 1, 2}

    def test_partitions_unique(self):
        seen = set()
        for assignment in partitions_into_k(6, 3):
            key = tuple(assignment)
            assert key not in seen
            seen.add(key)

    def test_infeasible(self):
        with pytest.raises(InfeasibleProblemError):
            list(partitions_into_k(3, 4))
        with pytest.raises(InfeasibleProblemError):
            list(partitions_into_k(3, 0))


class TestBruteForce:
    def test_matches_manual_enumeration(self, tiny_db):
        _, cost = brute_force_optimal(tiny_db, 2)
        # Manually verified best 2-way partition of the tiny fixture.
        best = min(
            allocation_cost(allocation)
            for allocation in _all_two_way(tiny_db)
        )
        assert cost == pytest.approx(best)

    def test_dominates_every_heuristic(self):
        db = generate_database(WorkloadSpec(num_items=9, seed=11))
        _, optimal = brute_force_optimal(db, 3)
        heuristic = DRPCDSAllocator().allocate(db, 3)
        assert optimal <= heuristic.cost + 1e-9

    def test_budget_guard(self, medium_db):
        with pytest.raises(SolverLimitError, match="exceeds"):
            brute_force_optimal(medium_db, 10, partition_budget=1000)

    def test_allocator_wrapper(self, tiny_db):
        outcome = BruteForceAllocator().allocate(tiny_db, 2)
        _, cost = brute_force_optimal(tiny_db, 2)
        assert outcome.cost == pytest.approx(cost)
        assert outcome.metadata["searched_partitions"] == stirling2(4, 2)

    def test_infeasible(self, tiny_db):
        with pytest.raises(InfeasibleProblemError):
            brute_force_optimal(tiny_db, 0)


class TestContiguousDP:
    def test_never_worse_than_drp(self, medium_db):
        for k in (2, 4, 6):
            dp = ContiguousDPAllocator().allocate(medium_db, k)
            from repro.core.drp import drp_allocate

            assert dp.cost <= drp_allocate(medium_db, k).cost + 1e-9

    def test_never_better_than_brute_force(self):
        db = generate_database(WorkloadSpec(num_items=10, seed=5))
        _, optimal = brute_force_optimal(db, 3)
        dp = ContiguousDPAllocator().allocate(db, 3)
        assert dp.cost >= optimal - 1e-9

    def test_metadata_cost_matches(self, medium_db):
        outcome = ContiguousDPAllocator().allocate(medium_db, 4)
        assert outcome.metadata["contiguous_cost"] == pytest.approx(
            outcome.cost
        )


def _all_two_way(db):
    """Yield every 2-way allocation of a 4-item database."""
    from repro.core.allocation import ChannelAllocation

    items = db.items
    n = len(items)
    for mask in range(1, 2 ** n - 1):
        left = [items[i] for i in range(n) if mask & (1 << i)]
        right = [items[i] for i in range(n) if not mask & (1 << i)]
        yield ChannelAllocation(db, [left, right])
