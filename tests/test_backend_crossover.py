"""Backend-parity regression pinned at the auto-resolution crossover.

PR 4 introduced the rule that ``backend="auto"`` resolves to the scalar
kernels below :data:`repro.core.drp.AUTO_BACKEND_CROSSOVER` items and
to the vectorized kernels at or above it.  These tests pin the rule at
exactly N = 511 / 512 / 513 and assert the two backends stay bitwise
interchangeable on both sides of the switch, so neither a crossover
drift nor a backend divergence can land silently.
"""

from __future__ import annotations

import pytest

from repro.core.drp import AUTO_BACKEND_CROSSOVER, drp_allocate
from repro.workloads.generator import WorkloadSpec, generate_database

CROSSOVER_SIZES = (
    AUTO_BACKEND_CROSSOVER - 1,  # 511
    AUTO_BACKEND_CROSSOVER,      # 512
    AUTO_BACKEND_CROSSOVER + 1,  # 513
)

NUM_CHANNELS = 7


def _database(num_items: int):
    return generate_database(
        WorkloadSpec(num_items=num_items, skewness=0.8, diversity=1.5, seed=97)
    )


class TestAutoResolutionRule:
    def test_crossover_constant_unchanged(self):
        assert AUTO_BACKEND_CROSSOVER == 512

    @pytest.mark.parametrize("num_items", CROSSOVER_SIZES)
    def test_auto_resolves_by_documented_rule(self, num_items):
        result = drp_allocate(_database(num_items), NUM_CHANNELS)
        expected = (
            "python" if num_items < AUTO_BACKEND_CROSSOVER else "numpy"
        )
        assert result.resolved_backend == expected

    @pytest.mark.parametrize("num_items", CROSSOVER_SIZES)
    def test_explicit_backends_identical_at_crossover(self, num_items):
        database = _database(num_items)
        python = drp_allocate(database, NUM_CHANNELS, backend="python")
        vectorized = drp_allocate(database, NUM_CHANNELS, backend="numpy")
        auto = drp_allocate(database, NUM_CHANNELS, backend="auto")
        assert python.resolved_backend == "python"
        assert vectorized.resolved_backend == "numpy"
        assert (
            python.allocation.as_id_lists()
            == vectorized.allocation.as_id_lists()
            == auto.allocation.as_id_lists()
        )
        assert python.cost == vectorized.cost == auto.cost
        assert python.iterations == vectorized.iterations == auto.iterations
