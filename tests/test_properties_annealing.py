"""Hypothesis properties for the simulated-annealing baseline.

The instances are kept small enough that :func:`brute_force_optimal`
enumerates the true global optimum, which is the *exact* oracle here:
the contiguous DP is exact only over contiguous partitions of the
benefit-ratio ordering, so it upper-bounds — and can sit above — the
global optimum that annealing searches for.  The properties:

* annealing's output always passes the verification layer's checkers;
* annealing never beats the exact optimum (it ends with a CDS descent,
  so its cost is a local-optimum cost ≥ the global one) — and neither
  does the exact DP;
* annealing never exceeds the flat single-channel cost;
* a fixed seed makes the whole anneal deterministic.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.annealing import AnnealingAllocator, AnnealingParameters
from repro.baselines.exact import brute_force_optimal
from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.core.partition import contiguous_optimal
from repro.verify.invariants import (
    REL_TOL,
    check_allocation_wellformed,
    check_cost_identities,
)

pytestmark = pytest.mark.slow

_positive = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)

#: Small, fast anneal — the properties hold for any schedule.
_FAST_SCHEDULE = AnnealingParameters(epochs=12, moves_per_epoch=30)


@st.composite
def exact_instances(draw, min_items=3, max_items=7, max_channels=3):
    """Instances small enough for exhaustive enumeration."""
    n = draw(st.integers(min_value=min_items, max_value=max_items))
    raw_freqs = draw(st.lists(_positive, min_size=n, max_size=n))
    sizes = draw(st.lists(_positive, min_size=n, max_size=n))
    total = math.fsum(raw_freqs)
    db = BroadcastDatabase(
        [
            DataItem(f"d{i}", frequency=f / total, size=z)
            for i, (f, z) in enumerate(zip(raw_freqs, sizes))
        ]
    )
    k = draw(st.integers(min_value=2, max_value=min(max_channels, n)))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    return db, k, seed


common_settings = settings(
    max_examples=30,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestAnnealingProperties:
    @common_settings
    @given(exact_instances())
    def test_output_passes_invariant_checkers(self, instance):
        db, k, seed = instance
        outcome = AnnealingAllocator(_FAST_SCHEDULE, seed=seed).allocate(db, k)
        assert check_allocation_wellformed(outcome.allocation) == []
        assert check_cost_identities(outcome.allocation) == []

    @common_settings
    @given(exact_instances())
    def test_never_beats_the_exact_optimum(self, instance):
        db, k, seed = instance
        outcome = AnnealingAllocator(_FAST_SCHEDULE, seed=seed).allocate(db, k)
        _, exact_cost = brute_force_optimal(db, k)
        slack = REL_TOL * max(1.0, exact_cost)
        assert outcome.cost >= exact_cost - slack
        # The contiguous DP is bounded the same way: exact over a
        # subset of the partition space, never below the global optimum.
        _, dp_cost = contiguous_optimal(db.sorted_by_benefit_ratio(), k)
        assert dp_cost >= exact_cost - slack

    @common_settings
    @given(exact_instances())
    def test_never_exceeds_flat_cost(self, instance):
        db, k, seed = instance
        outcome = AnnealingAllocator(_FAST_SCHEDULE, seed=seed).allocate(db, k)
        flat = db.total_frequency * db.total_size
        assert outcome.cost <= flat + REL_TOL * max(1.0, flat)

    @settings(
        max_examples=10,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(exact_instances())
    def test_fixed_seed_is_deterministic(self, instance):
        db, k, seed = instance
        allocator = AnnealingAllocator(_FAST_SCHEDULE, seed=seed)
        first = allocator.allocate(db, k)
        second = allocator.allocate(db, k)
        assert first.cost == second.cost
        assert (
            first.allocation.as_id_lists() == second.allocation.as_id_lists()
        )
