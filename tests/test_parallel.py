"""Tests for the parallel experiment execution layer.

The headline property: ``run_experiment(config, workers=N)`` reproduces
the serial rows exactly (costs, waiting times, stds — everything except
the wall-clock ``elapsed`` aggregates, which measure the machine, not
the experiment), for any worker count, with failures degrading to
recorded cell errors instead of crashes.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time

import pytest

from repro.core.allocation import ChannelAllocation
from repro.core.scheduler import Allocator, register_allocator
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import figure2, run_figure
from repro.experiments.gap import run_gap_experiment
from repro.experiments.parallel import (
    CellSpec,
    WorkloadMemo,
    build_cell_grid,
    execute_cells,
    map_ordered,
    resolve_workers,
    run_cell,
)
from repro.experiments.runner import run_experiment
from repro.workloads.generator import WorkloadSpec


def small_config(**overrides):
    defaults = dict(
        name="parallel-test",
        description="parallel layer test sweep",
        sweep_parameter="num_channels",
        sweep_values=(3.0, 4.0),
        algorithms=("drp", "drp-cds"),
        num_items=20,
        replications=2,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def rows_without_elapsed(result):
    """Rows with the only legitimately nondeterministic fields zeroed."""
    return [
        dataclasses.replace(
            row, mean_elapsed_seconds=0.0, std_elapsed_seconds=0.0
        )
        for row in result.rows
    ]


_FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="test-local allocator registrations only reach fork()ed workers",
)


class _ExplodingAllocator(Allocator):
    name = "test-exploding"

    def _allocate(self, database, num_channels) -> ChannelAllocation:
        raise RuntimeError("boom on purpose")


class _SleepyAllocator(Allocator):
    name = "test-sleepy"

    def _allocate(self, database, num_channels) -> ChannelAllocation:
        time.sleep(1.5)
        items = list(database.items)
        groups = [items[c::num_channels] for c in range(num_channels)]
        return ChannelAllocation(database, [g for g in groups if g])


register_allocator("test-exploding", _ExplodingAllocator)
register_allocator("test-sleepy", _SleepyAllocator)


class TestDeterministicFanOut:
    def test_workers_match_serial_rows_exactly(self):
        config = small_config()
        serial = run_experiment(config)
        inline = run_experiment(config, workers=1)
        pooled = run_experiment(config, workers=4)
        assert rows_without_elapsed(serial) == rows_without_elapsed(inline)
        assert rows_without_elapsed(serial) == rows_without_elapsed(pooled)
        assert serial.errors == inline.errors == pooled.errors == []

    def test_figure2_config_identical_at_two_worker_counts(self):
        # The acceptance check: the actual figure-2 config (scaled to
        # one replication to keep the suite fast — same grid shape,
        # same algorithms including GOPT) at two different N.
        config = figure2().scaled_down(replications=1)
        serial = run_experiment(config)
        two = run_experiment(config, workers=2)
        four = run_experiment(config, workers=4)
        assert rows_without_elapsed(serial) == rows_without_elapsed(two)
        assert rows_without_elapsed(serial) == rows_without_elapsed(four)

    def test_replication_count_preserved(self):
        result = run_experiment(small_config(), workers=2)
        assert all(row.replications == 2 for row in result.rows)

    def test_progress_lines_identical_to_serial(self):
        config = small_config()
        serial_lines, parallel_lines = [], []
        run_experiment(config, progress=serial_lines.append)
        run_experiment(config, workers=2, progress=parallel_lines.append)
        assert serial_lines == parallel_lines

    def test_run_figure_wrapper_routes_workers(self):
        config, result = run_figure(
            "figure2", replications=1, workers=1
        )
        assert config.replications == 1
        assert len(result.rows) == len(config.sweep_values) * len(
            config.algorithms
        )

    def test_gap_experiment_parallel_matches_serial(self):
        kwargs = dict(
            num_items=8,
            num_channels=3,
            instances=3,
            algorithms=("drp", "drp-cds"),
        )
        serial = run_gap_experiment(**kwargs)
        pooled = run_gap_experiment(workers=2, **kwargs)
        assert serial == pooled


class TestErrorCapture:
    def test_unknown_algorithm_is_recorded_not_raised(self):
        # "no-such-algo" passes config validation but fails in the
        # worker at make_allocator time — a representative cell error
        # that works under any multiprocessing start method.
        config = small_config(algorithms=("drp", "no-such-algo"))
        result = run_experiment(config, workers=2)
        good_rows = [(row.sweep_value, row.algorithm) for row in result.rows]
        assert good_rows == [(3.0, "drp"), (4.0, "drp")]
        assert len(result.errors) == 4  # 2 sweep values x 2 replications
        assert all(e.algorithm == "no-such-algo" for e in result.errors)
        assert all("unknown allocator" in e.message for e in result.errors)

    def test_inline_worker_captures_allocator_exception(self):
        config = small_config(algorithms=("drp", "test-exploding"))
        result = run_experiment(config, workers=1)
        assert len(result.errors) == 4
        assert all("boom on purpose" in e.message for e in result.errors)
        assert [row.algorithm for row in result.rows] == ["drp", "drp"]

    @_FORK_ONLY
    def test_worker_process_captures_allocator_exception(self):
        config = small_config(algorithms=("drp", "test-exploding"))
        result = run_experiment(config, workers=2)
        assert len(result.errors) == 4
        assert all("boom on purpose" in e.message for e in result.errors)

    @_FORK_ONLY
    def test_cell_timeout_degrades_to_recorded_error(self):
        # Two cells so the pool path (not the single-cell inline
        # shortcut, which cannot enforce timeouts) is exercised.
        config = small_config(
            algorithms=("test-sleepy",), sweep_values=(3.0,), replications=2
        )
        result = run_experiment(config, workers=2, cell_timeout=0.2)
        assert result.rows == []
        assert len(result.errors) == 2
        assert all("timed out" in error.message for error in result.errors)

    def test_serial_path_still_raises(self):
        # Legacy contract: without the fan-out layer an allocator
        # failure propagates (no silent degradation).
        config = small_config(algorithms=("test-exploding",))
        with pytest.raises(RuntimeError, match="boom on purpose"):
            run_experiment(config)

    def test_errors_survive_json_round_trip(self):
        from repro.experiments.records import ExperimentResult

        config = small_config(algorithms=("drp", "no-such-algo"))
        result = run_experiment(config, workers=1)
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.errors == result.errors


class TestBuildingBlocks:
    def test_grid_is_canonically_ordered(self):
        grid = build_cell_grid(small_config())
        assert len(grid) == 2 * 2 * 2
        assert grid[0] == CellSpec(0, 0, "drp")
        assert grid[1] == CellSpec(0, 0, "drp-cds")
        assert grid[2] == CellSpec(0, 1, "drp")
        assert grid[-1] == CellSpec(1, 1, "drp-cds")

    def test_run_cell_measures_one_cell(self):
        config = small_config()
        outcome = run_cell(config, CellSpec(0, 0, "drp"))
        assert outcome.error is None
        assert outcome.cost > 0
        assert outcome.waiting_time > 0
        assert outcome.elapsed_seconds >= 0

    def test_execute_cells_preserves_submission_order(self):
        config = small_config()
        cells = list(reversed(build_cell_grid(config)))
        outcomes = execute_cells(config, cells, workers=2)
        assert [
            (o.value_index, o.replication, o.algorithm) for o in outcomes
        ] == [(c.value_index, c.replication, c.algorithm) for c in cells]

    def test_workload_memo_generates_once(self):
        memo = WorkloadMemo()
        spec = WorkloadSpec(num_items=10, seed=42)
        first = memo.get(spec)
        second = memo.get(spec)
        assert first is second
        assert (memo.hits, memo.misses) == (1, 1)

    def test_workload_memo_evicts_fifo(self):
        memo = WorkloadMemo(max_entries=2)
        specs = [WorkloadSpec(num_items=5, seed=s) for s in range(3)]
        for spec in specs:
            memo.get(spec)
        assert len(memo) == 2
        memo.get(specs[0])  # evicted, regenerated
        assert memo.misses == 4

    def test_map_ordered_serial_and_parallel_agree(self):
        items = list(range(6))
        assert map_ordered(abs, items, workers=1) == items
        assert map_ordered(abs, items, workers=3) == items


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) is None

    def test_env_var_enables_fanout(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(2) == 2

    def test_auto_uses_usable_cpus(self):
        import os

        from repro.experiments.parallel import auto_workers

        resolved = resolve_workers("auto")
        assert resolved == auto_workers()
        # Clamped to the CPUs this process may actually run on — on a
        # restricted-affinity host that is fewer than os.cpu_count().
        assert 1 <= resolved <= (os.cpu_count() or 1)
        if hasattr(os, "sched_getaffinity"):
            assert resolved <= len(os.sched_getaffinity(0))

    def test_strings_parsed(self):
        assert resolve_workers("2") == 2

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="worker count"):
            resolve_workers("plenty")

    def test_env_honoured_by_run_experiment(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        config = small_config(algorithms=("drp", "test-exploding"))
        # Serial mode would raise; REPRO_WORKERS=1 selects the fan-out
        # layer, which records the failure instead.
        result = run_experiment(config)
        assert len(result.errors) == 4
