"""Unit tests for repro.analysis.stats."""

from __future__ import annotations

import math

import pytest

from repro.analysis.stats import aggregate, geometric_mean, relative_gap


class TestAggregate:
    def test_mean_and_std(self):
        agg = aggregate([2.0, 4.0, 6.0])
        assert agg.count == 3
        assert agg.mean == pytest.approx(4.0)
        assert agg.std == pytest.approx(2.0)

    def test_sem(self):
        agg = aggregate([2.0, 4.0, 6.0])
        assert agg.sem == pytest.approx(2.0 / math.sqrt(3))

    def test_single_value(self):
        agg = aggregate([7.0])
        assert agg.mean == 7.0
        assert agg.std == 0.0
        assert agg.sem == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])


class TestRelativeGap:
    def test_positive_when_worse(self):
        assert relative_gap(110.0, 100.0) == pytest.approx(0.10)

    def test_negative_when_better(self):
        assert relative_gap(90.0, 100.0) == pytest.approx(-0.10)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            relative_gap(1.0, 0.0)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_scale_invariance(self):
        values = [1.5, 2.5, 9.0]
        scaled = [10 * v for v in values]
        assert geometric_mean(scaled) == pytest.approx(
            10 * geometric_mean(values)
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
