"""Cross-extension integration tests.

The extensions were built to compose; these tests exercise realistic
combinations the individual suites don't touch.
"""

from __future__ import annotations

import pytest

from repro.core.hetero import HeteroDRPCDSAllocator
from repro.core.incremental import insert_item, update_frequency
from repro.core.item import DataItem
from repro.core.scheduler import DRPCDSAllocator
from repro.simulation.cache import PIXPolicy, simulate_with_cache
from repro.simulation.indexing import IndexedChannel
from repro.simulation.queries import simulate_query_workload
from repro.simulation.simulator import run_broadcast_simulation
from repro.workloads.catalog import build_catalogue
from repro.workloads.estimator import estimate_database
from repro.workloads.generator import WorkloadSpec, generate_database
from repro.workloads.queries import generate_query_workload
from repro.workloads.trace import synthesize_trace


class TestEstimatedProfileDownstream:
    """A trace-estimated profile must flow through the whole stack."""

    @pytest.fixture(scope="class")
    def estimated_db(self):
        truth = generate_database(WorkloadSpec(num_items=40, seed=31))
        trace = synthesize_trace(truth, 20000, seed=1)
        sizes = {item.item_id: item.size for item in truth.items}
        return estimate_database(trace, sizes)

    def test_simulation_on_estimated_program(self, estimated_db):
        allocation = DRPCDSAllocator().allocate(estimated_db, 4).allocation
        report = run_broadcast_simulation(
            allocation, num_requests=10000, seed=2
        )
        # Requests are drawn from the estimated profile itself, so the
        # analytical model must hold as usual.
        assert report.relative_error < 0.05

    def test_hetero_on_estimated_profile(self, estimated_db):
        bandwidths = [20.0, 10.0, 5.0, 5.0]
        outcome = HeteroDRPCDSAllocator(bandwidths).allocate(
            estimated_db, 4
        )
        assert outcome.metadata["hetero_waiting_time"] > 0

    def test_incremental_edit_on_estimated_profile(self, estimated_db):
        allocation = DRPCDSAllocator().allocate(estimated_db, 4).allocation
        database, refreshed = insert_item(
            allocation, DataItem("breaking-news", 0.1, 2.0)
        )
        assert "breaking-news" in database
        assert refreshed.num_channels == 4


class TestMultimediaCatalogueDownstream:
    """The content-class catalogue through caching, indexing, queries."""

    @pytest.fixture(scope="class")
    def portal(self):
        database = build_catalogue(seed=9)
        allocation = DRPCDSAllocator().allocate(database, 6).allocation
        return database, allocation

    def test_pix_cache_over_portal(self, portal):
        database, allocation = portal
        report = simulate_with_cache(
            allocation,
            capacity=500.0,
            policy=PIXPolicy(),
            num_requests=4000,
            bandwidth=100.0,
            seed=3,
        )
        assert report.hit_rate > 0.05
        assert report.effective.count == 4000

    def test_indexing_hot_portal_channel(self, portal):
        database, allocation = portal
        hot = max(
            range(allocation.num_channels),
            key=lambda i: allocation.channel_stats[i].frequency,
        )
        items = allocation.channel_items(hot)
        channel = IndexedChannel(
            hot, items, 100.0, replication=min(2, len(items)),
            index_entry_size=0.1,
        )
        timing = channel.expected_timing(items[0].item_id)
        assert 0 < timing.tuning_time <= timing.waiting_time

    def test_query_workload_over_portal(self, portal):
        database, allocation = portal
        workload = generate_query_workload(
            database, 25, min_items=1, max_items=3, seed=4
        )
        summary = simulate_query_workload(
            allocation,
            workload,
            num_requests=600,
            bandwidth=100.0,
            seed=5,
        )
        assert summary.count == 600


class TestEditThenMeasure:
    def test_frequency_update_improves_measured_wait_for_item(self):
        """Promote an item, re-polish, and verify the *simulator*
        confirms its waiting time dropped — analytics and measurement
        agree through the edit path."""
        database = generate_database(WorkloadSpec(num_items=30, seed=17))
        allocation = DRPCDSAllocator().allocate(database, 4).allocation
        cold = database.sorted_by_frequency()[-1].item_id

        before = run_broadcast_simulation(
            allocation, num_requests=15000, seed=6
        )
        new_db, promoted = update_frequency(allocation, cold, 2.0)
        after = run_broadcast_simulation(
            promoted, num_requests=15000, seed=6
        )
        # The item is now dominant; its per-item measured wait must
        # shrink (it gets a short cycle).
        item_before = before.per_item.get(cold)
        item_after = after.per_item.get(cold)
        assert item_after is not None
        if item_before is not None:
            assert item_after.mean < item_before.mean
        # And the whole program's measured wait matches its own model.
        assert after.relative_error < 0.05
