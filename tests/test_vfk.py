"""Unit tests for the VF^K comparator (repro.baselines.vfk)."""

from __future__ import annotations

import itertools

import pytest

from repro.baselines.vfk import VFKAllocator, unit_size_contiguous_optimal
from repro.core.cost import allocation_cost
from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.exceptions import InfeasibleProblemError


class TestUnitSizeDP:
    def test_single_group(self, tiny_db):
        boundaries, cost = unit_size_contiguous_optimal(tiny_db.items, 1)
        assert boundaries == [(0, 4)]
        assert cost == pytest.approx(1.0 * 4)

    def test_singletons(self, tiny_db):
        boundaries, cost = unit_size_contiguous_optimal(tiny_db.items, 4)
        assert len(boundaries) == 4
        assert cost == pytest.approx(1.0)  # sum f_i * 1

    def test_matches_exhaustive(self, medium_db):
        items = medium_db.sorted_by_frequency()[:10]
        k = 3
        _, dp_cost = unit_size_contiguous_optimal(items, k)
        freqs = [i.frequency for i in items]
        exhaustive = min(
            sum(
                sum(freqs[a:b]) * (b - a)
                for a, b in zip((0,) + cut, cut + (len(items),))
            )
            for cut in itertools.combinations(range(1, len(items)), k - 1)
        )
        assert dp_cost == pytest.approx(exhaustive)

    def test_infeasible(self, tiny_db):
        with pytest.raises(InfeasibleProblemError):
            unit_size_contiguous_optimal(tiny_db.items, 0)
        with pytest.raises(InfeasibleProblemError):
            unit_size_contiguous_optimal(tiny_db.items, 9)


class TestVFKAllocator:
    def test_groups_contiguous_in_frequency_order(self, medium_db):
        outcome = VFKAllocator().allocate(medium_db, 5)
        rank = {
            item.item_id: index
            for index, item in enumerate(medium_db.sorted_by_frequency())
        }
        for group in outcome.allocation.channels:
            ranks = sorted(rank[item.item_id] for item in group)
            assert ranks == list(range(ranks[0], ranks[-1] + 1))

    def test_popular_items_get_smaller_channels(self, medium_db):
        """The highest-frequency group has at most the average count."""
        outcome = VFKAllocator().allocate(medium_db, 5)
        hot_channel = outcome.allocation.channel_of(
            medium_db.sorted_by_frequency()[0].item_id
        )
        hot_count = outcome.allocation.channel_stats[hot_channel].count
        assert hot_count <= len(medium_db) / 5 + 1

    def test_metadata_reports_unit_cost(self, medium_db):
        outcome = VFKAllocator().allocate(medium_db, 5)
        assert outcome.metadata["unit_size_cost"] > 0

    def test_optimal_in_conventional_environment(self, uniform_db):
        """With equal sizes and frequencies VF^K is exactly optimal."""
        from repro.baselines.exact import brute_force_optimal

        outcome = VFKAllocator().allocate(uniform_db, 3)
        _, optimal_cost = brute_force_optimal(uniform_db, 3)
        assert outcome.cost == pytest.approx(optimal_cost)

    def test_suboptimal_in_diverse_environment(self):
        """A diverse profile where frequency-only allocation must lose.

        Two popular-but-huge items and two unpopular-but-tiny items:
        VF^K pairs the popular (huge) ones on the short channel, the
        diverse-aware optimum does not.
        """
        db = BroadcastDatabase(
            [
                DataItem("big-hot-1", 0.4, 100.0),
                DataItem("big-hot-2", 0.35, 100.0),
                DataItem("tiny-cold-1", 0.15, 1.0),
                DataItem("tiny-cold-2", 0.10, 1.0),
            ]
        )
        from repro.baselines.exact import brute_force_optimal

        vfk_cost = VFKAllocator().allocate(db, 2).cost
        _, optimal_cost = brute_force_optimal(db, 2)
        assert vfk_cost > optimal_cost + 1e-9

    def test_cost_reported_under_true_sizes(self, medium_db):
        outcome = VFKAllocator().allocate(medium_db, 5)
        assert outcome.cost == pytest.approx(
            allocation_cost(outcome.allocation)
        )
