"""Tests for the heterogeneous-bandwidth extension (repro.core.hetero)."""

from __future__ import annotations

import itertools
import math

import pytest

from repro.core.allocation import ChannelAllocation
from repro.core.cost import average_waiting_time
from repro.core.drp import drp_allocate
from repro.core.hetero import (
    HeteroDRPCDSAllocator,
    assign_groups_to_bandwidths,
    channel_load,
    hetero_cds_refine,
    hetero_move_delta,
    hetero_waiting_time,
)
from repro.core.scheduler import DRPCDSAllocator
from repro.exceptions import InfeasibleProblemError, InvalidAllocationError


@pytest.fixture
def allocation(medium_db):
    return drp_allocate(medium_db, 4).allocation


class TestObjective:
    def test_reduces_to_homogeneous_model(self, allocation):
        """Equal bandwidths must reproduce Eq. (2) exactly."""
        b = 10.0
        hetero = hetero_waiting_time(allocation, [b] * 4)
        assert hetero == pytest.approx(
            average_waiting_time(allocation, bandwidth=b)
        )

    def test_channel_load_definition(self, tiny_db):
        items = tiny_db.items[:2]
        expected = (0.7 * 3.0) / 2 + (0.4 * 1.0 + 0.3 * 2.0)
        assert channel_load(items) == pytest.approx(expected)

    def test_faster_channels_lower_waits(self, allocation):
        slow = hetero_waiting_time(allocation, [10.0] * 4)
        fast = hetero_waiting_time(allocation, [20.0] * 4)
        assert fast == pytest.approx(slow / 2.0)

    def test_bandwidth_count_validated(self, allocation):
        with pytest.raises(InvalidAllocationError):
            hetero_waiting_time(allocation, [10.0] * 3)

    def test_bad_bandwidth_values(self, allocation):
        with pytest.raises(InvalidAllocationError):
            hetero_waiting_time(allocation, [10.0, -1.0, 10.0, 10.0])


class TestMoveDelta:
    def test_matches_recomputation(self, allocation):
        bandwidths = [5.0, 10.0, 20.0, 40.0]
        before = hetero_waiting_time(allocation, bandwidths)
        groups = [list(g) for g in allocation.channels]
        agg_f = [math.fsum(i.frequency for i in g) for g in groups]
        agg_z = [math.fsum(i.size for i in g) for g in groups]
        for origin in range(4):
            if len(groups[origin]) < 2:
                continue
            item = groups[origin][0]
            for dest in range(4):
                if dest == origin:
                    continue
                predicted = hetero_move_delta(
                    item,
                    origin_frequency=agg_f[origin],
                    origin_size=agg_z[origin],
                    dest_frequency=agg_f[dest],
                    dest_size=agg_z[dest],
                    origin_bandwidth=bandwidths[origin],
                    dest_bandwidth=bandwidths[dest],
                )
                moved = [list(g) for g in groups]
                moved[origin] = moved[origin][1:]
                moved[dest] = moved[dest] + [item]
                after = hetero_waiting_time(
                    allocation.replace_channels(moved), bandwidths
                )
                assert predicted == pytest.approx(
                    before - after, rel=1e-9, abs=1e-12
                )

    def test_collapses_to_eq4_when_equal(self, allocation):
        """With b_p = b_q the delta is Eq. (4) / (2b)."""
        from repro.core.cost import move_delta

        b = 10.0
        stats = allocation.channel_stats
        item = allocation.channels[0][0]
        hetero = hetero_move_delta(
            item,
            origin_frequency=stats[0].frequency,
            origin_size=stats[0].size,
            dest_frequency=stats[1].frequency,
            dest_size=stats[1].size,
            origin_bandwidth=b,
            dest_bandwidth=b,
        )
        classic = move_delta(
            item,
            origin_frequency=stats[0].frequency,
            origin_size=stats[0].size,
            dest_frequency=stats[1].frequency,
            dest_size=stats[1].size,
        )
        assert hetero == pytest.approx(classic / (2.0 * b))


class TestAssignment:
    def test_optimal_over_all_permutations(self, allocation):
        bandwidths = [5.0, 12.0, 25.0, 50.0]
        groups = list(allocation.channels)
        mapping = assign_groups_to_bandwidths(groups, bandwidths)
        chosen = sum(
            channel_load(groups[mapping[i]]) / bandwidths[i]
            for i in range(4)
        )
        best = min(
            sum(
                channel_load(groups[perm[i]]) / bandwidths[i]
                for i in range(4)
            )
            for perm in itertools.permutations(range(4))
        )
        assert chosen == pytest.approx(best)

    def test_mapping_is_permutation(self, allocation):
        mapping = assign_groups_to_bandwidths(
            list(allocation.channels), [1.0, 2.0, 3.0, 4.0]
        )
        assert sorted(mapping) == [0, 1, 2, 3]

    def test_heaviest_group_on_fastest_channel(self, allocation):
        bandwidths = [1.0, 100.0, 2.0, 3.0]
        groups = list(allocation.channels)
        mapping = assign_groups_to_bandwidths(groups, bandwidths)
        heaviest = max(range(4), key=lambda g: channel_load(groups[g]))
        assert mapping[1] == heaviest  # channel 1 is fastest


class TestHeteroCDS:
    BANDWIDTHS = [4.0, 8.0, 16.0, 32.0]

    def test_never_increases_waiting_time(self, allocation):
        result = hetero_cds_refine(allocation, self.BANDWIDTHS)
        assert result.waiting_time <= result.initial_waiting_time + 1e-9
        assert result.converged

    def test_result_is_move_stable(self, allocation):
        result = hetero_cds_refine(allocation, self.BANDWIDTHS)
        again = hetero_cds_refine(result.allocation, self.BANDWIDTHS)
        assert again.moves == 0
        assert again.reassignments == 0

    def test_preserves_partition(self, allocation, medium_db):
        result = hetero_cds_refine(allocation, self.BANDWIDTHS)
        ids = sorted(
            i.item_id for g in result.allocation.channels for i in g
        )
        assert ids == sorted(medium_db.item_ids)
        assert all(
            s.count >= 1 for s in result.allocation.channel_stats
        )

    def test_equal_bandwidths_match_classic_cds(self, allocation):
        """With equal bandwidths the refined cost equals classic CDS's."""
        from repro.core.cds import cds_refine

        hetero = hetero_cds_refine(allocation, [10.0] * 4)
        classic = cds_refine(allocation)
        assert hetero.waiting_time == pytest.approx(
            average_waiting_time(classic.allocation, bandwidth=10.0)
        )

    def test_max_iterations(self, allocation):
        result = hetero_cds_refine(
            allocation, self.BANDWIDTHS, max_iterations=0
        )
        assert result.moves == 0
        assert not result.converged

    def test_equal_loads_terminate(self):
        """Regression: equal-load groups must not cycle through phase 2.

        With identical loads every group→channel mapping is optimal, so
        ``assign_groups_to_bandwidths`` keeps proposing the same
        non-identity permutation; before the strict-improvement gate
        the refine loop swapped the groups forever.
        """
        from repro.core.database import BroadcastDatabase
        from repro.core.item import DataItem

        a, b = DataItem("a", 0.5, 1.0), DataItem("b", 0.5, 1.0)
        db = BroadcastDatabase([a, b])
        seed = ChannelAllocation(db, [[a], [b]])
        result = hetero_cds_refine(seed, [1.0, 2.0])
        assert result.converged
        assert result.reassignments == 0
        assert result.waiting_time == pytest.approx(
            result.initial_waiting_time
        )


class TestHeteroAllocator:
    BANDWIDTHS = [4.0, 8.0, 16.0, 32.0]

    def test_beats_bandwidth_oblivious_pipeline(self, medium_db):
        """The hetero-aware pipeline must beat classic DRP-CDS dropped
        naively onto unequal channels."""
        hetero = HeteroDRPCDSAllocator(self.BANDWIDTHS)
        outcome = hetero.allocate(medium_db, 4)
        aware = hetero_waiting_time(outcome.allocation, self.BANDWIDTHS)

        oblivious = DRPCDSAllocator().allocate(medium_db, 4).allocation
        naive = hetero_waiting_time(oblivious, self.BANDWIDTHS)
        assert aware < naive

    def test_metadata(self, medium_db):
        outcome = HeteroDRPCDSAllocator(self.BANDWIDTHS).allocate(
            medium_db, 4
        )
        assert outcome.metadata["hetero_waiting_time"] == pytest.approx(
            hetero_waiting_time(outcome.allocation, self.BANDWIDTHS)
        )

    def test_channel_count_must_match(self, medium_db):
        with pytest.raises(InfeasibleProblemError, match="configured for"):
            HeteroDRPCDSAllocator(self.BANDWIDTHS).allocate(medium_db, 3)

    def test_empty_bandwidths_rejected(self):
        with pytest.raises(InfeasibleProblemError):
            HeteroDRPCDSAllocator([])

    def test_equal_bandwidths_recover_paper_quality(self, medium_db):
        """Degenerate hetero == the paper's pipeline, cost-wise."""
        hetero = HeteroDRPCDSAllocator([10.0] * 5).allocate(medium_db, 5)
        classic = DRPCDSAllocator().allocate(medium_db, 5)
        assert hetero_waiting_time(
            hetero.allocation, [10.0] * 5
        ) == pytest.approx(
            average_waiting_time(classic.allocation, bandwidth=10.0),
            rel=1e-6,
        )
