"""A deterministic virtual clock for wall-clock-free service tests.

Implements the :class:`repro.service.clock.Clock` protocol: ``now()``
reads virtual time, ``sleep()`` advances it instantly.  Every sleep is
logged so tests can assert how a paced loop *would* have slept without
ever touching ``time.sleep``.
"""

from __future__ import annotations

from typing import List


class FakeClock:
    """Virtual monotonic time: sleeps advance instantly, never block."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.sleeps: List[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep a negative duration: {seconds}")
        self.sleeps.append(float(seconds))
        self._now += float(seconds)

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep (external event)."""
        if seconds < 0:
            raise ValueError(f"cannot advance backwards: {seconds}")
        self._now += float(seconds)


def forbid_real_sleep(monkeypatch) -> None:
    """Make any ``time.sleep`` call in the test body raise.

    Serve tests install this first: the suite's determinism claim is
    that nothing under test ever blocks on the wall clock.
    """
    import time

    def _boom(seconds: float) -> None:
        raise AssertionError(
            f"time.sleep({seconds!r}) called — serve tests must be "
            "wall-clock-free (inject a FakeClock)"
        )

    monkeypatch.setattr(time, "sleep", _boom)
