"""Tests for content-class catalogues (repro.workloads.catalog)."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidDatabaseError
from repro.workloads.catalog import (
    ContentClass,
    MULTIMEDIA_CLASSES,
    build_catalogue,
    class_of,
    per_class_summary,
)


class TestContentClass:
    def test_valid(self):
        spec = ContentClass("text", 10, (0.5, 2.0), 0.5)
        assert spec.skew == 0.9

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="", count=1, size_range=(1, 2), share=0.5),
            dict(name="x", count=0, size_range=(1, 2), share=0.5),
            dict(name="x", count=1, size_range=(2, 1), share=0.5),
            dict(name="x", count=1, size_range=(0, 1), share=0.5),
            dict(name="x", count=1, size_range=(1, 2), share=0.0),
            dict(name="x", count=1, size_range=(1, 2), share=1.5),
            dict(name="x", count=1, size_range=(1, 2), share=0.5, skew=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(InvalidDatabaseError):
            ContentClass(**kwargs)


class TestBuildCatalogue:
    def test_default_multimedia_catalogue(self):
        db = build_catalogue(seed=42)
        assert len(db) == sum(spec.count for spec in MULTIMEDIA_CLASSES)
        assert db.is_normalized

    def test_class_shares_respected(self):
        db = build_catalogue(seed=1)
        summary = per_class_summary(db)
        for spec in MULTIMEDIA_CLASSES:
            count, freq, _ = summary[spec.name]
            assert count == spec.count
            assert freq == pytest.approx(spec.share, rel=1e-9)

    def test_sizes_within_class_ranges(self):
        db = build_catalogue(seed=2)
        for item in db:
            spec = next(
                s for s in MULTIMEDIA_CLASSES if s.name == item.label
            )
            low, high = spec.size_range
            assert low <= item.size <= high

    def test_rank1_most_popular_within_class(self):
        db = build_catalogue(seed=3)
        for spec in MULTIMEDIA_CLASSES:
            top = db[f"{spec.name}-1"]
            second = db[f"{spec.name}-2"]
            assert top.frequency > second.frequency

    def test_items_labelled(self):
        db = build_catalogue(seed=0)
        assert db["video-3"].label == "video"

    def test_reproducible(self):
        assert build_catalogue(seed=7) == build_catalogue(seed=7)

    def test_custom_classes(self):
        db = build_catalogue(
            [
                ContentClass("hot", 2, (1.0, 1.0), 0.8, skew=0.0),
                ContentClass("cold", 3, (10.0, 10.0), 0.2, skew=0.0),
            ],
            seed=0,
        )
        assert len(db) == 5
        # Zero skew: equal split within class.
        assert db["hot-1"].frequency == pytest.approx(0.4)
        assert db["cold-2"].frequency == pytest.approx(0.2 / 3)

    def test_validation(self):
        with pytest.raises(InvalidDatabaseError, match="at least one"):
            build_catalogue([])
        with pytest.raises(InvalidDatabaseError, match="unique"):
            build_catalogue(
                [
                    ContentClass("x", 1, (1, 2), 0.5),
                    ContentClass("x", 1, (1, 2), 0.5),
                ]
            )
        with pytest.raises(InvalidDatabaseError, match="sum to 1"):
            build_catalogue([ContentClass("x", 1, (1, 2), 0.5)])


class TestHelpers:
    def test_class_of(self):
        assert class_of("image-17") == "image"
        assert class_of("my-class-3") == "my-class"

    def test_class_of_invalid(self):
        with pytest.raises(InvalidDatabaseError):
            class_of("noformat")

    def test_per_class_summary_totals(self):
        db = build_catalogue(seed=5)
        summary = per_class_summary(db)
        assert sum(c for c, _, _ in summary.values()) == len(db)
        assert sum(f for _, f, _ in summary.values()) == pytest.approx(1.0)


class TestEndToEnd:
    def test_allocation_respects_media_classes(self):
        """DRP-CDS on the multimedia catalogue gives text far shorter
        waits than video — the motivating scenario, as a test."""
        from repro.core.scheduler import DRPCDSAllocator
        from repro.simulation.server import BroadcastProgram

        db = build_catalogue(seed=42)
        allocation = DRPCDSAllocator().allocate(db, 8).allocation
        program = BroadcastProgram(allocation, bandwidth=100.0)

        def class_wait(name):
            members = [i for i in db if i.label == name]
            mass = sum(i.frequency for i in members)
            return (
                sum(
                    i.frequency * program.expected_waiting_time(i.item_id)
                    for i in members
                )
                / mass
            )

        assert class_wait("text") < class_wait("video") / 5
