"""Cross-module integration tests.

These tie the layers together: algorithm quality orderings on shared
workloads, the analytical model against the discrete-event simulator,
and the experiment harness against the paper's qualitative claims.
"""

from __future__ import annotations

import pytest

import repro.baselines  # noqa: F401
from repro.analysis.stats import relative_gap
from repro.analysis.theory import cost_lower_bound
from repro.baselines.exact import brute_force_optimal
from repro.core.cost import average_waiting_time
from repro.core.scheduler import make_allocator
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.simulation.simulator import run_broadcast_simulation
from repro.workloads.generator import WorkloadSpec, generate_database


class TestQualityOrdering:
    """The paper's headline ordering on shared random workloads."""

    @pytest.fixture(scope="class")
    def workloads(self):
        return [
            generate_database(
                WorkloadSpec(num_items=60, skewness=0.8, diversity=1.5, seed=s)
            )
            for s in range(3)
        ]

    def test_gopt_dominates_drp_cds_dominates_drp(self, workloads):
        for db in workloads:
            gopt = make_allocator("gopt").allocate(db, 6).cost
            drpcds = make_allocator("drp-cds").allocate(db, 6).cost
            drp = make_allocator("drp").allocate(db, 6).cost
            assert gopt <= drpcds + 1e-9
            assert drpcds <= drp + 1e-9

    def test_drp_cds_beats_vfk_in_diverse_environment(self, workloads):
        for db in workloads:
            vfk = make_allocator("vfk").allocate(db, 6).cost
            drpcds = make_allocator("drp-cds").allocate(db, 6).cost
            assert drpcds < vfk

    def test_drp_cds_close_to_optimum(self, workloads):
        """The paper reports ~3% error vs GOPT; allow a little slack."""
        for db in workloads:
            gopt = make_allocator("gopt").allocate(db, 6).cost
            drpcds = make_allocator("drp-cds").allocate(db, 6).cost
            assert relative_gap(drpcds, gopt) < 0.05

    def test_every_algorithm_respects_lower_bound(self, workloads):
        for db in workloads:
            bound = cost_lower_bound(db, 6)
            for name in ("vfk", "drp", "drp-cds", "gopt", "greedy", "random"):
                cost = make_allocator(name).allocate(db, 6).cost
                assert cost >= bound - 1e-9


class TestExactGroundTruth:
    def test_drp_cds_optimality_gap_small_instances(self):
        """Exact gap measurement — the claim GOPT can only approximate."""
        gaps = []
        for seed in range(5):
            db = generate_database(WorkloadSpec(num_items=10, seed=seed))
            _, optimal = brute_force_optimal(db, 3)
            drpcds = make_allocator("drp-cds").allocate(db, 3).cost
            gaps.append(relative_gap(drpcds, optimal))
        assert all(gap >= -1e-9 for gap in gaps)
        assert sum(gaps) / len(gaps) < 0.03

    def test_gopt_finds_optimum_on_small_instances(self):
        for seed in range(3):
            db = generate_database(WorkloadSpec(num_items=9, seed=seed))
            _, optimal = brute_force_optimal(db, 3)
            gopt = make_allocator("gopt").allocate(db, 3).cost
            assert gopt == pytest.approx(optimal, rel=1e-6)


class TestModelVersusSimulation:
    def test_simulator_validates_model_for_all_algorithms(self):
        db = generate_database(WorkloadSpec(num_items=40, seed=2))
        for name in ("vfk", "drp-cds", "round-robin"):
            allocation = make_allocator(name).allocate(db, 5).allocation
            report = run_broadcast_simulation(
                allocation, num_requests=30000, seed=3
            )
            assert report.relative_error < 0.03, name

    def test_better_allocations_measure_better(self):
        """The cost ordering survives the trip through the simulator."""
        db = generate_database(WorkloadSpec(num_items=40, seed=4))
        good = make_allocator("drp-cds").allocate(db, 5).allocation
        bad = make_allocator("round-robin").allocate(db, 5).allocation
        good_report = run_broadcast_simulation(good, num_requests=30000, seed=1)
        bad_report = run_broadcast_simulation(bad, num_requests=30000, seed=1)
        assert good_report.measured.mean < bad_report.measured.mean


class TestHarnessQualitativeClaims:
    """Scaled-down versions of the paper's figure-level observations."""

    @pytest.fixture(scope="class")
    def channel_sweep(self):
        return run_experiment(
            ExperimentConfig(
                name="mini-fig2",
                description="K sweep",
                sweep_parameter="num_channels",
                sweep_values=(4.0, 8.0),
                algorithms=("vfk", "drp", "drp-cds", "gopt"),
                num_items=60,
                replications=2,
            )
        )

    def test_waiting_time_decreases_with_k(self, channel_sweep):
        for algorithm in channel_sweep.algorithms:
            series = channel_sweep.series(algorithm)
            assert series[-1][1] < series[0][1]

    def test_vfk_trails_gopt(self, channel_sweep):
        for value in channel_sweep.sweep_values():
            vfk = channel_sweep.cell(value, "vfk").mean_waiting_time
            gopt = channel_sweep.cell(value, "gopt").mean_waiting_time
            assert vfk > gopt

    def test_diversity_zero_makes_vfk_competitive(self):
        result = run_experiment(
            ExperimentConfig(
                name="mini-fig4",
                description="diversity endpoints",
                sweep_parameter="diversity",
                sweep_values=(0.0, 3.0),
                algorithms=("vfk", "gopt"),
                num_items=60,
                replications=2,
            )
        )
        gap_low = relative_gap(
            result.cell(0.0, "vfk").mean_waiting_time,
            result.cell(0.0, "gopt").mean_waiting_time,
        )
        gap_high = relative_gap(
            result.cell(3.0, "vfk").mean_waiting_time,
            result.cell(3.0, "gopt").mean_waiting_time,
        )
        assert gap_low < 0.02       # near-optimal in conventional setting
        assert gap_high > gap_low   # falls behind as diversity grows

    def test_waiting_time_decreases_with_skewness(self):
        result = run_experiment(
            ExperimentConfig(
                name="mini-fig5",
                description="skewness endpoints",
                sweep_parameter="skewness",
                sweep_values=(0.4, 1.6),
                algorithms=("drp-cds",),
                num_items=60,
                replications=2,
            )
        )
        series = result.series("drp-cds")
        assert series[1][1] < series[0][1]

    def test_gopt_much_slower_than_drp_cds(self):
        result = run_experiment(
            ExperimentConfig(
                name="mini-fig6",
                description="execution time",
                sweep_parameter="num_channels",
                sweep_values=(7.0,),
                algorithms=("drp-cds", "gopt"),
                num_items=90,
                replications=2,
            )
        )
        drpcds = result.cell(7.0, "drp-cds").mean_elapsed_seconds
        gopt = result.cell(7.0, "gopt").mean_elapsed_seconds
        assert gopt > 5 * drpcds


class TestWaitingTimeConsistency:
    def test_outcome_waiting_time_equals_model(self):
        db = generate_database(WorkloadSpec(num_items=30, seed=0))
        outcome = make_allocator("drp-cds").allocate(db, 4)
        assert outcome.waiting_time(bandwidth=10.0) == pytest.approx(
            average_waiting_time(outcome.allocation, bandwidth=10.0)
        )
