"""Unit tests for repro.workloads.sizes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidDatabaseError
from repro.workloads.sizes import diverse_sizes, fixed_sizes, lognormal_sizes


class TestDiverseSizes:
    def test_range_respects_diversity(self):
        rng = np.random.default_rng(0)
        sizes = diverse_sizes(1000, 3.0, rng)
        assert sizes.min() >= 1.0
        assert sizes.max() <= 1000.0

    def test_diversity_zero_gives_unit_sizes(self):
        rng = np.random.default_rng(0)
        sizes = diverse_sizes(100, 0.0, rng)
        assert sizes == pytest.approx(np.ones(100))

    def test_log_uniformity(self):
        """log10(size) should be ~uniform on [0, Φ]."""
        rng = np.random.default_rng(7)
        sizes = diverse_sizes(20000, 2.0, rng)
        exponents = np.log10(sizes)
        assert exponents.mean() == pytest.approx(1.0, abs=0.02)
        # Uniform[0,2] variance = 4/12.
        assert exponents.var() == pytest.approx(4.0 / 12.0, abs=0.02)

    def test_reproducible_with_seeded_rng(self):
        a = diverse_sizes(50, 1.5, np.random.default_rng(3))
        b = diverse_sizes(50, 1.5, np.random.default_rng(3))
        assert (a == b).all()

    @pytest.mark.parametrize("diversity", [-1.0, float("nan")])
    def test_bad_diversity(self, diversity):
        with pytest.raises(InvalidDatabaseError):
            diverse_sizes(10, diversity, np.random.default_rng(0))

    def test_bad_count(self):
        with pytest.raises(InvalidDatabaseError):
            diverse_sizes(0, 1.0, np.random.default_rng(0))


class TestFixedSizes:
    def test_all_equal(self):
        sizes = fixed_sizes(5, 3.0)
        assert sizes == pytest.approx(np.full(5, 3.0))

    def test_default_is_unit(self):
        assert fixed_sizes(3) == pytest.approx(np.ones(3))

    @pytest.mark.parametrize("size", [0.0, -1.0, float("inf")])
    def test_bad_size(self, size):
        with pytest.raises(InvalidDatabaseError):
            fixed_sizes(5, size)


class TestLognormalSizes:
    def test_positive(self):
        sizes = lognormal_sizes(1000, np.random.default_rng(0))
        assert (sizes > 0).all()

    def test_median_parameter(self):
        sizes = lognormal_sizes(
            50000, np.random.default_rng(1), median=10.0, sigma=1.0
        )
        assert np.median(sizes) == pytest.approx(10.0, rel=0.05)

    def test_sigma_zero_degenerates_to_median(self):
        sizes = lognormal_sizes(
            10, np.random.default_rng(0), median=4.0, sigma=0.0
        )
        assert sizes == pytest.approx(np.full(10, 4.0))

    def test_bad_parameters(self):
        with pytest.raises(InvalidDatabaseError):
            lognormal_sizes(5, np.random.default_rng(0), median=0.0)
        with pytest.raises(InvalidDatabaseError):
            lognormal_sizes(5, np.random.default_rng(0), sigma=-1.0)
