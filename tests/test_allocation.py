"""Unit tests for repro.core.allocation."""

from __future__ import annotations

import pytest

from repro.core.allocation import ChannelAllocation
from repro.exceptions import InvalidAllocationError


def split_pairs(db):
    """Helper: two channels of two items each over the tiny fixture."""
    items = db.items
    return ChannelAllocation(db, [items[:2], items[2:]])


class TestValidation:
    def test_valid_partition(self, tiny_db):
        allocation = split_pairs(tiny_db)
        assert allocation.num_channels == 2
        assert allocation.database is tiny_db

    def test_no_channels_rejected(self, tiny_db):
        with pytest.raises(InvalidAllocationError, match="at least 1"):
            ChannelAllocation(tiny_db, [])

    def test_empty_channel_rejected_by_default(self, tiny_db):
        with pytest.raises(InvalidAllocationError, match="empty"):
            ChannelAllocation(tiny_db, [list(tiny_db.items), []])

    def test_empty_channel_allowed_when_requested(self, tiny_db):
        allocation = ChannelAllocation(
            tiny_db, [list(tiny_db.items), []], allow_empty_channels=True
        )
        assert allocation.channel_stats[1].count == 0
        assert allocation.channel_stats[1].cost == 0.0

    def test_duplicate_assignment_rejected(self, tiny_db):
        items = tiny_db.items
        with pytest.raises(InvalidAllocationError, match="both channel"):
            ChannelAllocation(tiny_db, [items[:2], items[1:]])

    def test_missing_items_rejected(self, tiny_db):
        items = tiny_db.items
        with pytest.raises(InvalidAllocationError, match="missing"):
            ChannelAllocation(tiny_db, [items[:2], items[2:3]])

    def test_foreign_item_rejected(self, tiny_db, medium_db):
        groups = [list(tiny_db.items[:3]), [medium_db.items[0]]]
        with pytest.raises(InvalidAllocationError):
            ChannelAllocation(tiny_db, groups)


class TestStats:
    def test_channel_stats_aggregates(self, tiny_db):
        allocation = split_pairs(tiny_db)
        first, second = allocation.channel_stats
        assert first.frequency == pytest.approx(0.7)
        assert first.size == pytest.approx(3.0)
        assert first.count == 2
        assert first.cost == pytest.approx(0.7 * 3.0)
        assert second.frequency == pytest.approx(0.3)
        assert second.size == pytest.approx(7.0)

    def test_channel_of(self, tiny_db):
        allocation = split_pairs(tiny_db)
        assert allocation.channel_of("a") == 0
        assert allocation.channel_of("d") == 1
        with pytest.raises(KeyError):
            allocation.channel_of("zz")

    def test_channel_items(self, tiny_db):
        allocation = split_pairs(tiny_db)
        assert [i.item_id for i in allocation.channel_items(1)] == ["c", "d"]

    def test_as_id_lists(self, tiny_db):
        allocation = split_pairs(tiny_db)
        assert allocation.as_id_lists() == [["a", "b"], ["c", "d"]]

    def test_assignment_vector_in_catalogue_order(self, tiny_db):
        allocation = split_pairs(tiny_db)
        assert allocation.assignment_vector() == [0, 0, 1, 1]


class TestConstructors:
    def test_from_id_lists(self, tiny_db):
        allocation = ChannelAllocation.from_id_lists(
            tiny_db, [["d", "a"], ["b", "c"]]
        )
        assert allocation.channel_of("d") == 0
        assert allocation.channel_of("b") == 1

    def test_from_assignment_vector(self, tiny_db):
        allocation = ChannelAllocation.from_assignment_vector(
            tiny_db, [0, 1, 0, 1], num_channels=2
        )
        assert allocation.as_id_lists() == [["a", "c"], ["b", "d"]]

    def test_from_assignment_vector_length_checked(self, tiny_db):
        with pytest.raises(InvalidAllocationError, match="length"):
            ChannelAllocation.from_assignment_vector(tiny_db, [0, 1], 2)

    def test_from_assignment_vector_range_checked(self, tiny_db):
        with pytest.raises(InvalidAllocationError, match="out of range"):
            ChannelAllocation.from_assignment_vector(tiny_db, [0, 1, 2, 5], 3)

    def test_replace_channels(self, tiny_db):
        allocation = split_pairs(tiny_db)
        items = tiny_db.items
        moved = allocation.replace_channels([items[:3], items[3:]])
        assert moved.channel_of("c") == 0
        # original untouched
        assert allocation.channel_of("c") == 1


class TestEqualityAndCanonical:
    def test_equality_ignores_within_channel_order(self, tiny_db):
        items = tiny_db.items
        left = ChannelAllocation(tiny_db, [items[:2], items[2:]])
        right = ChannelAllocation(
            tiny_db, [[items[1], items[0]], [items[3], items[2]]]
        )
        assert left == right

    def test_equality_detects_different_grouping(self, tiny_db):
        items = tiny_db.items
        left = ChannelAllocation(tiny_db, [items[:2], items[2:]])
        right = ChannelAllocation(tiny_db, [items[:3], items[3:]])
        assert left != right

    def test_canonical_sorts_channels_and_items(self, tiny_db):
        items = tiny_db.items
        scrambled = ChannelAllocation(
            tiny_db, [[items[3], items[2]], [items[1], items[0]]]
        )
        canonical = scrambled.canonical()
        assert canonical.as_id_lists() == [["a", "b"], ["c", "d"]]

    def test_canonical_is_idempotent(self, tiny_db):
        allocation = split_pairs(tiny_db)
        assert allocation.canonical().as_id_lists() == (
            allocation.canonical().canonical().as_id_lists()
        )
