"""Tests for the reproduction report generator."""

from __future__ import annotations

import pytest

from repro.experiments.report import generate_report


@pytest.fixture(scope="module")
def report_text():
    return generate_report(replications=1, gap_instances=2)


class TestGenerateReport:
    def test_contains_all_sections(self, report_text):
        assert "# Reproduction report" in report_text
        assert "## Worked example" in report_text
        for figure_id in ("figure2", "figure3", "figure4", "figure5",
                          "figure6", "figure7"):
            assert f"## {figure_id}:" in report_text
        assert "True optimality gaps" in report_text

    def test_worked_example_matches(self, report_text):
        assert "24.08 (paper 24.09) — MATCH" in report_text
        assert "22.29 (paper 22.29) — MATCH" in report_text
        assert "MISMATCH" not in report_text

    def test_gap_summaries_present(self, report_text):
        assert "Gap vs GOPT" in report_text
        assert "drp-cds:" in report_text

    def test_shape_checks_pass(self, report_text):
        assert report_text.count("— OK.") == 4
        assert "— CHECK." not in report_text

    def test_markdown_tables_well_formed(self, report_text):
        for line in report_text.splitlines():
            if line.startswith("|") and not line.startswith("|---"):
                assert line.endswith("|")

    def test_output_file(self, tmp_path):
        path = tmp_path / "report.md"
        text = generate_report(
            replications=1, gap_instances=2, output=path
        )
        assert path.read_text() == text

    def test_progress_callback(self):
        seen = []
        generate_report(
            replications=1, gap_instances=2, progress=seen.append
        )
        assert any("figure2" in line for line in seen)
        assert any("worked example" in line for line in seen)

    def test_cli_report_command(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "out.md"
        code = main(
            [
                "report",
                "--replications", "1",
                "--output", str(path),
                "--quiet",
            ]
        )
        assert code == 0
        assert path.exists()
        assert "wrote" in capsys.readouterr().out
