"""Unit tests for repro.analysis.theory — bounds and closed forms."""

from __future__ import annotations

import pytest

from repro.analysis.theory import (
    conventional_waiting_time,
    cost_lower_bound,
    single_channel_cost,
    waiting_time_lower_bound,
)
from repro.baselines.exact import brute_force_optimal
from repro.core.cost import allocation_cost, average_waiting_time
from repro.core.scheduler import DRPCDSAllocator
from repro.exceptions import InfeasibleProblemError
from repro.workloads.generator import WorkloadSpec, generate_database

from tests.conftest import PAPER_GOLDENS


class TestCostLowerBound:
    def test_bound_below_global_optimum(self):
        for seed in range(4):
            db = generate_database(WorkloadSpec(num_items=9, seed=seed))
            for k in (2, 3, 4):
                _, optimal = brute_force_optimal(db, k)
                assert cost_lower_bound(db, k) <= optimal + 1e-9

    def test_bound_below_heuristic_costs(self, medium_db):
        for k in (2, 5, 8):
            outcome = DRPCDSAllocator().allocate(medium_db, k)
            assert cost_lower_bound(medium_db, k) <= outcome.cost + 1e-9

    def test_k1_bound_is_tight(self, paper_db):
        # With one channel the Cauchy bound can be loose but the only
        # allocation is the whole database; bound must not exceed it.
        assert cost_lower_bound(paper_db, 1) <= single_channel_cost(
            paper_db
        ) + 1e-9

    def test_tight_for_identical_items_divisible_k(self, uniform_db):
        # 12 identical items, K=3: optimal splits 4/4/4 and the Cauchy
        # bound is met with equality.
        _, optimal = brute_force_optimal(uniform_db, 3)
        assert cost_lower_bound(uniform_db, 3) == pytest.approx(optimal)

    def test_bound_decreases_with_k(self, medium_db):
        bounds = [cost_lower_bound(medium_db, k) for k in range(1, 10)]
        assert all(a >= b - 1e-12 for a, b in zip(bounds, bounds[1:]))

    def test_download_floor(self, medium_db):
        # The bound never drops below the allocation-independent term.
        assert (
            cost_lower_bound(medium_db, 50)
            >= medium_db.fixed_download_cost - 1e-12
        )

    def test_invalid_k(self, medium_db):
        with pytest.raises(InfeasibleProblemError):
            cost_lower_bound(medium_db, 0)


class TestWaitingTimeLowerBound:
    def test_below_actual_waiting_times(self, medium_db):
        bound = waiting_time_lower_bound(medium_db, 5, bandwidth=10.0)
        outcome = DRPCDSAllocator().allocate(medium_db, 5)
        actual = average_waiting_time(outcome.allocation, bandwidth=10.0)
        assert bound <= actual + 1e-9

    def test_scales_with_bandwidth(self, medium_db):
        assert waiting_time_lower_bound(
            medium_db, 5, bandwidth=20.0
        ) == pytest.approx(
            waiting_time_lower_bound(medium_db, 5, bandwidth=10.0) / 2.0
        )


class TestSingleChannelCost:
    def test_matches_k1_allocation(self, paper_db):
        from repro.core.allocation import ChannelAllocation

        allocation = ChannelAllocation(paper_db, [paper_db.items])
        assert single_channel_cost(paper_db) == pytest.approx(
            allocation_cost(allocation)
        )

    def test_paper_value(self, paper_db):
        assert single_channel_cost(paper_db) == pytest.approx(
            PAPER_GOLDENS["initial_cost"], abs=0.01
        )


class TestConventionalFormula:
    def test_intro_formula(self):
        # N=10 items of size 2 at b=4: W = 20/8 + 2/4.
        assert conventional_waiting_time(
            10, 2.0, bandwidth=4.0
        ) == pytest.approx(2.5 + 0.5)

    def test_matches_general_model(self, uniform_db):
        from repro.core.allocation import ChannelAllocation

        allocation = ChannelAllocation(uniform_db, [uniform_db.items])
        assert conventional_waiting_time(
            len(uniform_db), 5.0, bandwidth=10.0
        ) == pytest.approx(average_waiting_time(allocation, bandwidth=10.0))

    def test_validation(self):
        with pytest.raises(InfeasibleProblemError):
            conventional_waiting_time(0, 1.0)
        with pytest.raises(InfeasibleProblemError):
            conventional_waiting_time(5, -1.0)
