"""OpenMetrics rendering and the live ``/metrics`` endpoint.

A golden render pins the exposition format (Prometheus text 0.0.4:
``# TYPE`` headers, ``_total`` counters, cumulative ``le`` buckets);
the endpoint tests do a real HTTP round-trip against the background
server on an ephemeral port.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro import obs
from repro.obs.exposition import (
    MetricsServer,
    MetricsStream,
    render_openmetrics,
    sanitize_metric_name,
)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _reset_obs():
    obs.reset()
    yield
    obs.reset()


def sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("cds.moves").inc(7)
    registry.counter("cells.completed", algorithm="drp").inc(3)
    registry.counter("cells.completed", algorithm="drp-cds").inc(4)
    registry.gauge("adaptive.cost_under_truth").set(81.5)
    histogram = registry.histogram("queue.wait", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 2.0):
        histogram.observe(value)
    return registry


class TestSanitize:
    def test_passthrough(self):
        assert sanitize_metric_name("cds_moves") == "cds_moves"

    def test_dots_and_dashes(self):
        assert sanitize_metric_name("cds.moves-total") == "cds_moves_total"


class TestRender:
    def test_golden_render(self):
        text = render_openmetrics(sample_registry().snapshot())
        lines = text.splitlines()
        assert lines[-1] == "# EOF"
        expected = [
            "# TYPE repro_adaptive_cost_under_truth gauge",
            "repro_adaptive_cost_under_truth 81.5",
            "# TYPE repro_cds_moves_total counter",
            "repro_cds_moves_total 7",
            "# TYPE repro_cells_completed_total counter",
            'repro_cells_completed_total{algorithm="drp"} 3',
            'repro_cells_completed_total{algorithm="drp-cds"} 4',
            "# TYPE repro_queue_wait histogram",
            'repro_queue_wait_bucket{le="0.1"} 1',
            'repro_queue_wait_bucket{le="1.0"} 2',
            'repro_queue_wait_bucket{le="+Inf"} 3',
            "repro_queue_wait_sum 2.55",
            "repro_queue_wait_count 3",
            "# TYPE repro_queue_wait_min gauge",
            "repro_queue_wait_min 0.05",
            "# TYPE repro_queue_wait_max gauge",
            "repro_queue_wait_max 2.0",
        ]
        for line in expected:
            assert line in lines, f"missing {line!r} in:\n{text}"

    def test_counters_are_cumulative_and_buckets_monotonic(self):
        text = render_openmetrics(sample_registry().snapshot())
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_queue_wait_bucket")
        ]
        assert buckets == sorted(buckets)
        assert buckets[-1] == 3  # +Inf bucket equals the total count

    def test_extra_gauges_and_empty_snapshot(self):
        text = render_openmetrics(
            MetricsRegistry().snapshot(),
            extra_gauges={"exposition.uptime_seconds": 1.25},
        )
        assert "repro_exposition_uptime_seconds 1.25" in text
        assert text.endswith("# EOF\n")

    def test_v1_snapshot_without_min_max(self):
        snapshot = sample_registry().snapshot()
        snapshot["schema"] = 1
        for payload in snapshot["histograms"].values():
            payload.pop("min")
            payload.pop("max")
        text = render_openmetrics(snapshot)
        assert "repro_queue_wait_count 3" in text
        assert "repro_queue_wait_min" not in text


class TestMetricsServer:
    def test_scrape_round_trip(self):
        registry = sample_registry()
        server = MetricsServer(registry.snapshot, port=0)
        server.start()
        try:
            url = f"http://127.0.0.1:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.status == 200
                assert "text/plain" in response.headers["Content-Type"]
                body = response.read().decode("utf-8")
            assert "repro_cds_moves_total 7" in body
            assert body.rstrip().endswith("# EOF")
            assert server.scrapes == 1
        finally:
            server.stop()

    def test_health_and_404(self):
        server = MetricsServer(MetricsRegistry().snapshot, port=0)
        server.start()
        try:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/health", timeout=5) as response:
                health = json.loads(response.read().decode("utf-8"))
            assert health["status"] == "ok"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/nope", timeout=5)
            assert excinfo.value.code == 404
        finally:
            server.stop()

    def test_live_scrape_sees_updates(self):
        obs.configure(metrics=True)
        server = obs.start_metrics_server(0)
        url = f"http://127.0.0.1:{server.port}/metrics"

        def scrape_counter() -> float:
            with urllib.request.urlopen(url, timeout=5) as response:
                body = response.read().decode("utf-8")
            for line in body.splitlines():
                if line.startswith("repro_live_test_total "):
                    return float(line.split()[1])
            return 0.0

        obs.get_metrics().counter("live.test").inc(5)
        first = scrape_counter()
        obs.get_metrics().counter("live.test").inc(5)
        second = scrape_counter()
        assert (first, second) == (5.0, 10.0)


class TestMetricsStream:
    def test_stream_writes_window_summaries(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("moves").inc(10)
        registry.gauge("cost").set(50.0)
        path = tmp_path / "stream.jsonl"
        stream = MetricsStream(registry.snapshot, str(path), interval=3600.0)
        stream.start()
        stream.stop()  # final tick is written on stop
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        assert lines, "stream wrote no ticks"
        tick = lines[-1]
        assert tick["type"] == "metrics_window"
        assert tick["schema"] == 1
        assert tick["counters"]["moves"]["total"] == 10
        assert tick["gauges"]["cost"]["last"] == 50.0
