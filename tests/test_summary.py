"""Tests for repro.analysis.summary."""

from __future__ import annotations

import pytest

from repro.analysis.summary import (
    AlgorithmSummary,
    summarize_experiment,
    trend_direction,
)
from repro.experiments.records import ExperimentResult, MeasurementRow


def make_result():
    """Two sweep points, three algorithms with known orderings."""
    rows = []
    data = {
        # value: {algorithm: waiting time}
        4.0: {"vfk": 11.0, "drp-cds": 10.1, "gopt": 10.0},
        8.0: {"vfk": 6.6, "drp-cds": 5.2, "gopt": 5.5},
    }
    for value, readings in data.items():
        for algorithm, wait in readings.items():
            rows.append(
                MeasurementRow(
                    sweep_value=value,
                    algorithm=algorithm,
                    mean_cost=wait * 10,
                    std_cost=0.0,
                    mean_waiting_time=wait,
                    std_waiting_time=0.0,
                    mean_elapsed_seconds=0.001,
                    std_elapsed_seconds=0.0,
                    replications=3,
                )
            )
    return ExperimentResult(
        name="unit",
        description="synthetic",
        sweep_parameter="num_channels",
        algorithms=("vfk", "drp-cds", "gopt"),
        rows=rows,
    )


class TestSummarizeExperiment:
    def test_gaps_relative_to_reference(self):
        summaries = {
            s.algorithm: s for s in summarize_experiment(make_result())
        }
        # vfk: gaps 10% and 20% vs gopt.
        assert summaries["vfk"].mean_gap == pytest.approx(0.15)
        assert summaries["vfk"].max_gap == pytest.approx(0.2)
        assert summaries["vfk"].min_gap == pytest.approx(0.1)
        # gopt vs itself: all zeros.
        assert summaries["gopt"].mean_gap == 0.0

    def test_negative_gap_when_beating_reference(self):
        summaries = {
            s.algorithm: s for s in summarize_experiment(make_result())
        }
        # drp-cds beats gopt at value 8 (5.2 < 5.5).
        assert summaries["drp-cds"].min_gap < 0

    def test_wins_counted_per_sweep_point(self):
        summaries = {
            s.algorithm: s for s in summarize_experiment(make_result())
        }
        assert summaries["gopt"].wins == 1      # best at K=4
        assert summaries["drp-cds"].wins == 1   # best at K=8
        assert summaries["vfk"].wins == 0

    def test_percent_helper(self):
        summary = AlgorithmSummary(
            algorithm="x", mean_gap=0.034, max_gap=0.05, min_gap=0.0, wins=0
        )
        assert summary.mean_gap_percent == pytest.approx(3.4)

    def test_unknown_reference_rejected(self):
        with pytest.raises(KeyError, match="reference"):
            summarize_experiment(make_result(), reference="nope")

    def test_custom_metric(self):
        summaries = summarize_experiment(
            make_result(), metric="mean_cost"
        )
        # Costs are 10x waits, gaps identical.
        by_name = {s.algorithm: s for s in summaries}
        assert by_name["vfk"].mean_gap == pytest.approx(0.15)

    def test_real_experiment_round_trip(self):
        """Smoke: summarise an actual harness run."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        result = run_experiment(
            ExperimentConfig(
                name="mini",
                description="mini",
                sweep_parameter="num_channels",
                sweep_values=(3.0, 5.0),
                algorithms=("drp", "drp-cds"),
                num_items=20,
                replications=1,
            )
        )
        summaries = summarize_experiment(result, reference="drp-cds")
        by_name = {s.algorithm: s for s in summaries}
        assert by_name["drp"].mean_gap >= -1e-9


class TestTrendDirection:
    def test_decreasing(self):
        assert trend_direction([(1, 5.0), (2, 4.0), (3, 2.0)]) == "decreasing"

    def test_increasing(self):
        assert trend_direction([(1, 1.0), (2, 1.5), (3, 4.0)]) == "increasing"

    def test_mixed_is_none(self):
        assert trend_direction([(1, 1.0), (2, 3.0), (3, 2.0)]) is None

    def test_flat_is_none(self):
        assert trend_direction([(1, 2.0), (2, 2.0)]) is None

    def test_tolerance_absorbs_wobble(self):
        series = [(1, 5.0), (2, 5.05), (3, 3.0)]
        assert trend_direction(series) is None
        assert trend_direction(series, tolerance=0.1) == "decreasing"

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            trend_direction([(1, 1.0)])

    def test_paper_claims_on_real_data(self):
        """Figure-2 shape via the mechanical trend check."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        result = run_experiment(
            ExperimentConfig(
                name="trend",
                description="trend",
                sweep_parameter="num_channels",
                sweep_values=(3.0, 6.0, 9.0),
                algorithms=("drp-cds",),
                num_items=30,
                replications=2,
            )
        )
        assert (
            trend_direction(result.series("drp-cds"), tolerance=0.05)
            == "decreasing"
        )
