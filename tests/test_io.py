"""Unit tests for repro.io (persistence)."""

from __future__ import annotations

import json

import pytest

from repro.core.allocation import ChannelAllocation
from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.exceptions import InvalidAllocationError, InvalidDatabaseError
from repro.io import (
    allocation_from_json,
    allocation_to_json,
    database_from_json,
    database_to_json,
    load_allocation,
    load_database,
    load_database_csv,
    save_allocation,
    save_database,
    save_database_csv,
)


class TestDatabaseJSON:
    def test_round_trip(self, paper_db):
        restored = database_from_json(database_to_json(paper_db))
        assert restored == paper_db

    def test_labels_preserved(self):
        db = BroadcastDatabase(
            [
                DataItem("a", 0.5, 1.0, label="news"),
                DataItem("b", 0.5, 2.0),
            ]
        )
        restored = database_from_json(database_to_json(db))
        assert restored["a"].label == "news"
        assert restored["b"].label is None

    def test_file_round_trip(self, medium_db, tmp_path):
        path = tmp_path / "db.json"
        save_database(medium_db, path)
        assert load_database(path) == medium_db

    def test_invalid_json_rejected(self):
        with pytest.raises(InvalidDatabaseError, match="invalid JSON"):
            database_from_json("{not json")

    def test_wrong_format_tag_rejected(self):
        payload = json.dumps({"format": "something-else", "version": 1})
        with pytest.raises(InvalidDatabaseError, match="expected"):
            database_from_json(payload)

    def test_wrong_version_rejected(self, paper_db):
        payload = json.loads(database_to_json(paper_db))
        payload["version"] = 999
        with pytest.raises(InvalidDatabaseError, match="version"):
            database_from_json(json.dumps(payload))

    def test_corrupted_items_fail_validation(self, paper_db):
        payload = json.loads(database_to_json(paper_db))
        payload["items"][0]["frequency"] = -1.0
        with pytest.raises(Exception):
            database_from_json(json.dumps(payload))


class TestAllocationJSON:
    @pytest.fixture
    def allocation(self, tiny_db):
        return ChannelAllocation(
            tiny_db, [tiny_db.items[:2], tiny_db.items[2:]]
        )

    def test_round_trip(self, allocation):
        restored = allocation_from_json(allocation_to_json(allocation))
        assert restored == allocation
        assert restored.database == allocation.database

    def test_file_round_trip(self, allocation, tmp_path):
        path = tmp_path / "alloc.json"
        save_allocation(allocation, path)
        assert load_allocation(path) == allocation

    def test_self_contained(self, allocation):
        """The JSON embeds the database — no external reference."""
        payload = json.loads(allocation_to_json(allocation))
        assert payload["database"]["items"]
        assert payload["channels"] == [["a", "b"], ["c", "d"]]

    def test_tampered_channels_fail_validation(self, allocation):
        payload = json.loads(allocation_to_json(allocation))
        payload["channels"][0].append("c")  # duplicate assignment
        with pytest.raises(InvalidAllocationError):
            allocation_from_json(json.dumps(payload))

    def test_wrong_format_tag(self, allocation, paper_db):
        with pytest.raises(InvalidDatabaseError, match="expected"):
            allocation_from_json(database_to_json(paper_db))


class TestDatabaseCSV:
    def test_round_trip(self, medium_db, tmp_path):
        path = tmp_path / "db.csv"
        save_database_csv(medium_db, path)
        restored = load_database_csv(path)
        assert restored.item_ids == medium_db.item_ids
        for original, loaded in zip(medium_db.items, restored.items):
            assert loaded.frequency == pytest.approx(original.frequency)
            assert loaded.size == pytest.approx(original.size)

    def test_labels_round_trip(self, tmp_path):
        db = BroadcastDatabase(
            [
                DataItem("a", 0.6, 1.0, label="hot"),
                DataItem("b", 0.4, 2.0),
            ]
        )
        path = tmp_path / "db.csv"
        save_database_csv(db, path)
        restored = load_database_csv(path)
        assert restored["a"].label == "hot"
        assert restored["b"].label is None

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("item_id,frequency\na,0.5\n")
        with pytest.raises(InvalidDatabaseError, match="columns"):
            load_database_csv(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "item_id,frequency,size,label\na,abc,1.0,\n"
        )
        with pytest.raises(InvalidDatabaseError, match="non-numeric"):
            load_database_csv(path)


class TestEndToEnd:
    def test_allocate_save_load_evaluate(self, medium_db, tmp_path):
        """An archived program re-loads and evaluates identically."""
        from repro.core.cost import allocation_cost
        from repro.core.scheduler import DRPCDSAllocator

        outcome = DRPCDSAllocator().allocate(medium_db, 5)
        path = tmp_path / "program.json"
        save_allocation(outcome.allocation, path)
        restored = load_allocation(path)
        assert allocation_cost(restored) == pytest.approx(outcome.cost)
