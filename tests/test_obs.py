"""Unit tests for the observability package (`repro.obs`)."""

from __future__ import annotations

import json
import logging

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.tracing import NULL_TRACER, SpanRecord, Tracer, chrome_trace_events

from tests.trace_schema import (
    SchemaError,
    validate_chrome_trace,
    validate_manifest,
    validate_metrics_snapshot,
    validate_trace_jsonl,
)


@pytest.fixture(autouse=True)
def _reset_obs():
    """Every test starts and ends with the disabled singletons."""
    obs.reset()
    yield
    obs.reset()


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_assigns_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        outer_rec = tracer.find("outer")[0]
        inner_rec = tracer.find("inner")[0]
        assert outer_rec.parent_id is None
        assert inner_rec.parent_id == outer_rec.span_id
        # Spans are recorded on exit: the child appears first.
        assert [r.name for r in tracer.records] == ["inner", "outer"]

    def test_attributes_set_and_update(self):
        tracer = Tracer()
        with tracer.span("work", items=3) as span:
            span.set("cost", 1.5)
            span.update(iterations=2, converged=True)
        record = tracer.records[0]
        assert record.attributes == {
            "items": 3,
            "cost": 1.5,
            "iterations": 2,
            "converged": True,
        }
        assert record.duration >= 0

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        record = tracer.records[0]
        assert "error" in record.attributes
        assert "nope" in record.attributes["error"]

    def test_instant_records_zero_duration(self):
        tracer = Tracer()
        tracer.instant("marker", reason="timeout")
        record = tracer.records[0]
        assert record.duration == 0.0
        assert record.attributes["reason"] == "timeout"

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything", key=1) as span:
            span.set("a", 1)
            span.update(b=2)
        NULL_TRACER.instant("marker")
        assert NULL_TRACER.records == []
        assert NULL_TRACER.drain_payload() == []

    def test_record_round_trip(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", depth=1):
                pass
        payload = [r.to_dict() for r in tracer.records]
        restored = [SpanRecord.from_dict(json.loads(json.dumps(p))) for p in payload]
        assert [r.name for r in restored] == ["inner", "outer"]
        assert restored[0].attributes == {"depth": 1}

    def test_adopt_remaps_ids_and_marks_roots(self):
        worker = Tracer()
        with worker.span("cell"):
            with worker.span("alloc"):
                pass
        payload = worker.drain_payload()
        assert worker.records == []

        parent = Tracer()
        with parent.span("run"):
            parent.adopt(payload, root_attributes={"queue_wait_seconds": 0.5})
        run = parent.find("run")[0]
        cell = parent.find("cell")[0]
        alloc = parent.find("alloc")[0]
        # Payload roots hang off the open local span and get the extras;
        # children keep their internal link even though they are
        # recorded *before* their parent (exit order).
        assert cell.parent_id == run.span_id
        assert cell.attributes["queue_wait_seconds"] == 0.5
        assert alloc.parent_id == cell.span_id
        assert "queue_wait_seconds" not in alloc.attributes
        ids = [r.span_id for r in parent.records]
        assert len(ids) == len(set(ids))

    def test_memory_tracking_records_peak(self):
        tracer = Tracer(track_memory=True)
        with tracer.span("alloc"):
            _ = [0] * 50_000
        record = tracer.records[0]
        assert record.peak_memory is not None
        assert record.peak_memory > 0

    def test_export_jsonl_and_chrome(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
        tracer.instant("marker")
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        tracer.export_jsonl(jsonl)
        tracer.export_chrome(chrome)
        assert validate_trace_jsonl(jsonl) == 3
        assert validate_chrome_trace(chrome) >= 3
        events = chrome_trace_events(tracer.records)["traceEvents"]
        assert {e["ph"] for e in events} == {"X", "i", "M"}
        # Timestamps are rebased to the earliest span, in microseconds.
        assert min(e["ts"] for e in events if e["ph"] != "M") == 0

    def test_jsonl_to_chrome_conversion(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        tracer.export_jsonl(jsonl)
        assert obs.jsonl_to_chrome(jsonl, chrome) == 1
        assert validate_chrome_trace(chrome) >= 1


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        registry.counter("runs").inc(2)
        registry.gauge("util", channel=0).set(0.25)
        registry.gauge("util", channel=0).set(0.75)
        hist = registry.histogram("latency", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        snap = registry.snapshot()
        assert snap["counters"]["runs"] == 3
        assert snap["gauges"]["util{channel=0}"] == 0.75
        histogram = snap["histograms"]["latency"]
        assert histogram["counts"] == [1, 1, 1]
        assert histogram["count"] == 3
        assert histogram["sum"] == pytest.approx(55.5)
        assert hist.mean == pytest.approx(18.5)

    def test_same_labels_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("cells", algorithm="drp").inc()
        registry.counter("cells", algorithm="drp").inc()
        registry.counter("cells", algorithm="vfk").inc()
        snap = registry.snapshot()
        assert snap["counters"]["cells{algorithm=drp}"] == 2
        assert snap["counters"]["cells{algorithm=vfk}"] == 1

    def test_merge_adds_counters_and_histograms(self):
        worker = MetricsRegistry()
        worker.counter("runs").inc(2)
        worker.gauge("temp").set(1.0)
        worker.histogram("lat", buckets=(1.0,)).observe(0.5)
        payload = worker.drain_snapshot()
        assert worker.snapshot()["counters"] == {}

        parent = MetricsRegistry()
        parent.counter("runs").inc()
        parent.histogram("lat", buckets=(1.0,)).observe(2.0)
        parent.merge(payload)
        snap = parent.snapshot()
        assert snap["counters"]["runs"] == 3
        assert snap["gauges"]["temp"] == 1.0
        assert snap["histograms"]["lat"]["counts"] == [1, 1]

    def test_merge_rejects_bucket_mismatch(self):
        a = MetricsRegistry()
        a.histogram("lat", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("lat", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            b.merge(a.snapshot())

    def test_null_registry_is_inert(self):
        assert not NULL_METRICS.enabled
        NULL_METRICS.counter("x").inc()
        NULL_METRICS.gauge("y").set(1.0)
        NULL_METRICS.histogram("z").observe(2.0)
        snap = NULL_METRICS.drain_snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_export_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        path = tmp_path / "m.json"
        registry.export_json(path)
        assert validate_metrics_snapshot(path) == 1


# ----------------------------------------------------------------------
# Module-level configuration
# ----------------------------------------------------------------------
class TestConfigure:
    def test_defaults_are_disabled(self):
        assert obs.get_tracer() is NULL_TRACER
        assert obs.get_metrics() is NULL_METRICS
        assert not obs.tracing_enabled()

    def test_configure_installs_and_reset_restores(self):
        tracer, registry = obs.configure(trace=True, metrics=True)
        assert obs.get_tracer() is tracer
        assert obs.get_metrics() is registry
        assert obs.tracing_enabled()
        with obs.span("x"):
            pass
        assert len(tracer.records) == 1
        obs.reset()
        assert obs.get_tracer() is NULL_TRACER

    def test_configure_replaces_instances(self):
        first, _ = obs.configure(trace=True)
        with obs.span("left-over"):
            pass
        second, _ = obs.configure(trace=True)
        assert second is not first
        assert second.records == []

    def test_worker_options_mirror_configuration(self):
        assert obs.worker_options() == {
            "trace": False,
            "metrics": False,
            "track_memory": False,
        }
        obs.configure(trace=True, metrics=True, track_memory=True)
        assert obs.worker_options() == {
            "trace": True,
            "metrics": True,
            "track_memory": True,
        }

    def test_configure_from_env(self, monkeypatch):
        monkeypatch.delenv(obs.TRACE_ENV_VAR, raising=False)
        monkeypatch.delenv(obs.METRICS_ENV_VAR, raising=False)
        assert obs.configure_from_env() == (None, None)
        assert obs.get_tracer() is NULL_TRACER

        monkeypatch.setenv(obs.TRACE_ENV_VAR, "trace.jsonl")
        trace_path, metrics_path = obs.configure_from_env()
        assert (trace_path, metrics_path) == ("trace.jsonl", None)
        assert obs.tracing_enabled()
        assert not obs.get_metrics().enabled


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------
class TestManifest:
    def test_config_digest_is_stable_and_order_free(self):
        a = obs.config_digest({"b": 2, "a": [1, 2]})
        b = obs.config_digest({"a": [1, 2], "b": 2})
        assert a == b
        assert len(a) == 64
        assert obs.config_digest({"a": [1, 2], "b": 3}) != a

    def test_build_and_validate_manifest(self, tmp_path):
        manifest = obs.build_manifest(
            command="sweep",
            config={"figure_id": "figure2", "workers": 2},
            seed=7,
            outputs={"trace": "t.jsonl"},
            extra={"note": "test"},
        )
        assert manifest["seed"] == 7
        assert manifest["backends"]["kernels_auto"] in ("numpy", "python")
        assert manifest["config_sha256"] == obs.config_digest(
            {"figure_id": "figure2", "workers": 2}
        )
        path = tmp_path / "run.manifest.json"
        obs.write_manifest(path, manifest)
        assert validate_manifest(path) >= 10


# ----------------------------------------------------------------------
# Logging
# ----------------------------------------------------------------------
class TestLog:
    def test_progress_goes_to_stderr(self, capsys):
        obs.log.progress("sweep point done")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "sweep point done" in captured.err

    def test_logger_configured_once(self):
        logger = obs.log.get_logger()
        again = obs.log.get_logger()
        assert logger is again
        assert logger.propagate is False
        assert len(logger.handlers) == 1
        assert isinstance(logger.handlers[0], logging.Handler)


# ----------------------------------------------------------------------
# Schema checker negative cases
# ----------------------------------------------------------------------
class TestSchemaChecker:
    def test_rejects_bad_span_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span", "schema": 1, "name": "x"}\n')
        with pytest.raises(SchemaError):
            validate_trace_jsonl(path)

    def test_rejects_dangling_parent(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        record = tracer.records[0].to_dict()
        record["parent_id"] = 999
        path = tmp_path / "dangling.jsonl"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(SchemaError):
            validate_trace_jsonl(path)

    def test_rejects_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SchemaError):
            validate_trace_jsonl(path)
