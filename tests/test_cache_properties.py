"""Stateful property tests for the client cache.

Drives :class:`repro.simulation.cache.ClientCache` through arbitrary
insert/touch sequences and checks the safety invariants after every
step: the size budget is never exceeded, bookkeeping matches contents,
and hits are answered only for resident items.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.item import DataItem
from repro.simulation.cache import (
    ClientCache,
    LFUPolicy,
    LRUPolicy,
    PIXPolicy,
)
from repro.simulation.server import BroadcastProgram
from repro.core.allocation import ChannelAllocation
from repro.core.database import BroadcastDatabase

_ITEM_POOL = [
    DataItem(f"p{i}", frequency=(i + 1) / 55.0, size=float(1 + (i * 7) % 13))
    for i in range(10)
]


def _bound_program():
    database = BroadcastDatabase(_ITEM_POOL)
    allocation = ChannelAllocation(
        database, [_ITEM_POOL[:5], _ITEM_POOL[5:]]
    )
    return BroadcastProgram(allocation, bandwidth=10.0)


class CacheMachine(RuleBasedStateMachine):
    @initialize(
        capacity=st.floats(min_value=0.0, max_value=40.0),
        policy_index=st.integers(min_value=0, max_value=2),
    )
    def setup(self, capacity, policy_index):
        policy = [LRUPolicy(), LFUPolicy(), PIXPolicy()][policy_index]
        if isinstance(policy, PIXPolicy):
            policy.bind(_bound_program())
        self.cache = ClientCache(capacity, policy)
        self.clock = 0.0
        self.resident_model = {}  # item_id -> size

    def _advance(self):
        self.clock += 1.0
        return self.clock

    @rule(index=st.integers(min_value=0, max_value=9))
    def insert(self, index):
        item = _ITEM_POOL[index]
        self.cache.insert(item, self._advance())
        # Model: resident set must mirror the cache's reported ids.
        self.resident_model = {
            item_id: next(
                i.size for i in _ITEM_POOL if i.item_id == item_id
            )
            for item_id in self.cache.cached_ids()
        }

    @rule(index=st.integers(min_value=0, max_value=9))
    def touch(self, index):
        item = _ITEM_POOL[index]
        hit = self.cache.touch(item.item_id, self._advance())
        assert hit == (item.item_id in self.cache)

    @invariant()
    def budget_respected(self):
        assert self.cache.used <= self.cache.capacity + 1e-9

    @invariant()
    def used_matches_contents(self):
        expected = math.fsum(
            next(i.size for i in _ITEM_POOL if i.item_id == item_id)
            for item_id in self.cache.cached_ids()
        )
        assert self.cache.used == expected

    @invariant()
    def len_matches_ids(self):
        assert len(self.cache) == len(self.cache.cached_ids())


TestCacheStateMachine = CacheMachine.TestCase
TestCacheStateMachine.settings = settings(
    max_examples=40,
    stateful_step_count=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
