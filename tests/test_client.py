"""Unit tests for repro.simulation.client."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulation.client import RequestGenerator


class TestGeneration:
    def test_request_count(self, medium_db):
        generator = RequestGenerator(medium_db, seed=0)
        requests = list(generator.generate(500))
        assert len(requests) == 500

    def test_arrival_times_increase(self, medium_db):
        generator = RequestGenerator(medium_db, seed=0)
        times = [r.arrival_time for r in generator.generate(200)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_request_ids_sequential(self, medium_db):
        generator = RequestGenerator(medium_db, seed=0)
        ids = [r.request_id for r in generator.generate(50)]
        assert ids == list(range(50))

    def test_reproducible(self, medium_db):
        a = list(RequestGenerator(medium_db, seed=9).generate(100))
        b = list(RequestGenerator(medium_db, seed=9).generate(100))
        assert a == b

    def test_zero_requests(self, medium_db):
        assert list(RequestGenerator(medium_db, seed=0).generate(0)) == []

    def test_negative_requests_rejected(self, medium_db):
        with pytest.raises(SimulationError):
            list(RequestGenerator(medium_db, seed=0).generate(-1))


class TestDistributions:
    def test_arrival_rate_controls_spacing(self, medium_db):
        slow = list(
            RequestGenerator(medium_db, arrival_rate=1.0, seed=0).generate(5000)
        )
        fast = list(
            RequestGenerator(medium_db, arrival_rate=10.0, seed=0).generate(5000)
        )
        assert slow[-1].arrival_time == pytest.approx(
            10 * fast[-1].arrival_time, rel=0.1
        )

    def test_mean_interarrival_matches_rate(self, medium_db):
        rate = 4.0
        requests = list(
            RequestGenerator(medium_db, arrival_rate=rate, seed=1).generate(
                20000
            )
        )
        mean_gap = requests[-1].arrival_time / len(requests)
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.05)

    def test_item_choice_follows_frequencies(self, medium_db):
        requests = list(
            RequestGenerator(medium_db, seed=2).generate(50000)
        )
        counts = {}
        for request in requests:
            counts[request.item_id] = counts.get(request.item_id, 0) + 1
        # The hottest item should be requested ~ f_hot of the time.
        hottest = medium_db.sorted_by_frequency()[0]
        observed = counts.get(hottest.item_id, 0) / len(requests)
        assert observed == pytest.approx(hottest.frequency, rel=0.1)

    def test_custom_request_probabilities(self, tiny_db):
        # All mass on item "c".
        generator = RequestGenerator(
            tiny_db, seed=0, request_probabilities=[0, 0, 1, 0]
        )
        assert all(
            r.item_id == "c" for r in generator.generate(100)
        )

    def test_probabilities_renormalised(self, tiny_db):
        generator = RequestGenerator(
            tiny_db, seed=0, request_probabilities=[2.0, 2.0, 0.0, 0.0]
        )
        ids = {r.item_id for r in generator.generate(500)}
        assert ids == {"a", "b"}


class TestValidation:
    def test_bad_rate(self, tiny_db):
        with pytest.raises(SimulationError):
            RequestGenerator(tiny_db, arrival_rate=0.0)

    def test_probability_length_mismatch(self, tiny_db):
        with pytest.raises(SimulationError, match="4 items"):
            RequestGenerator(tiny_db, request_probabilities=[1.0])

    def test_negative_probability(self, tiny_db):
        with pytest.raises(SimulationError):
            RequestGenerator(
                tiny_db, request_probabilities=[-1.0, 1.0, 1.0, 1.0]
            )

    def test_zero_sum_probabilities(self, tiny_db):
        with pytest.raises(SimulationError):
            RequestGenerator(
                tiny_db, request_probabilities=[0.0, 0.0, 0.0, 0.0]
            )
