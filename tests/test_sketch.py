"""Property and unit tests for the count-min sketch estimator.

The load-bearing guarantees (ISSUE 10 satellite 2):

* a sketch estimate **never under-estimates** the true (decayed) count,
  plain or conservative;
* the over-estimate respects the classical count-min bound
  ``ε·total = (e/width)·total`` with failure probability ``e^-depth``
  per item — checked empirically against exact counts on seeded Zipf
  streams;
* with decay enabled, profiles agree with ``DecayEstimator`` on
  identical streams (same half-life, same smoothing) up to float noise;
* ``merge`` of two shard sketches equals one sketch over the
  concatenated stream, and ``to_dict``/``from_dict`` round-trips.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.workloads.estimator import DecayEstimator
from repro.workloads.sketch import (
    CountMinSketch,
    SketchEstimator,
    sketch_error_bound,
)
from repro.workloads.trace import RequestTrace, TraceRecord

common_settings = settings(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def zipf_streams(draw):
    """A seeded Zipf-ish request stream over a small catalogue."""
    num_items = draw(st.integers(min_value=2, max_value=40))
    num_requests = draw(st.integers(min_value=1, max_value=400))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    theta = draw(st.floats(min_value=0.0, max_value=1.5))
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, num_items + 1) ** theta
    weights /= weights.sum()
    ids = [f"d{i}" for i in range(num_items)]
    picks = rng.choice(num_items, size=num_requests, p=weights)
    gaps = rng.exponential(1.0, size=num_requests)
    records = []
    clock = 0.0
    for gap, pick in zip(gaps, picks):
        clock += float(gap)
        records.append(TraceRecord(timestamp=clock, item_id=ids[int(pick)]))
    return ids, records


@st.composite
def sketch_shapes(draw):
    width = draw(st.integers(min_value=4, max_value=256))
    depth = draw(st.integers(min_value=1, max_value=6))
    conservative = draw(st.booleans())
    return width, depth, conservative


class TestNeverUnderestimates:
    @common_settings
    @given(zipf_streams(), sketch_shapes())
    def test_point_estimates_upper_bound_exact_counts(self, stream, shape):
        ids, records = stream
        width, depth, conservative = shape
        sketch = CountMinSketch(
            width, depth, conservative=conservative, exact=True
        )
        for record in records:
            sketch.add(record.item_id, timestamp=record.timestamp)
        # Exact (undecayed) truth straight from the stream.
        truth = {}
        for record in records:
            truth[record.item_id] = truth.get(record.item_id, 0.0) + 1.0
        for item_id in ids:
            assert (
                sketch.sketch_estimate(item_id)
                >= truth.get(item_id, 0.0) - 1e-9
            )

    @common_settings
    @given(
        zipf_streams(),
        sketch_shapes(),
        st.floats(min_value=0.5, max_value=100.0),
    )
    def test_decayed_estimates_upper_bound_decayed_truth(
        self, stream, shape, half_life
    ):
        ids, records = stream
        width, depth, conservative = shape
        sketch = CountMinSketch(
            width,
            depth,
            half_life=half_life,
            conservative=conservative,
            exact=True,
        )
        for record in records:
            sketch.add(record.item_id, timestamp=record.timestamp)
        reference = records[-1].timestamp if records else 0.0
        truth = {}
        for record in records:
            weight = 0.5 ** ((reference - record.timestamp) / half_life)
            truth[record.item_id] = truth.get(record.item_id, 0.0) + weight
        for item_id in ids:
            exact = truth.get(item_id, 0.0)
            assert sketch.sketch_estimate(item_id) >= exact - 1e-9 * max(
                1.0, exact
            )
            # Oracle mode serves the exact count.
            assert sketch.estimate(item_id) == pytest.approx(
                exact, abs=1e-9, rel=1e-9
            )


class TestErrorBound:
    def test_bound_holds_with_depth_probability_on_zipf_stream(self):
        """Empirical CM guarantee: P(err > ε·total) ≤ e^-depth per item.

        One seeded heavy stream into a deliberately tiny sketch; the
        fraction of items whose realized over-estimate exceeds the
        bound must not beat the analytical failure probability by more
        than sampling slack.
        """
        rng = np.random.default_rng(7)
        num_items, num_requests = 400, 20000
        weights = 1.0 / np.arange(1, num_items + 1) ** 0.9
        weights /= weights.sum()
        ids = [f"d{i}" for i in range(num_items)]
        picks = rng.choice(num_items, size=num_requests, p=weights)
        depth = 4
        sketch = CountMinSketch(64, depth, exact=True, seed=11)
        counts = {}
        for t, pick in enumerate(picks):
            item_id = ids[int(pick)]
            sketch.add(item_id, timestamp=float(t))
            counts[item_id] = counts.get(item_id, 0.0) + 1.0
        bound = sketch.error_bound()
        assert bound == pytest.approx(
            sketch_error_bound(64, float(num_requests))
        )
        violations = sum(
            1
            for item_id in ids
            if sketch.sketch_estimate(item_id) - counts.get(item_id, 0.0)
            > bound
        )
        # e^-4 ≈ 1.8% expected; allow generous sampling slack (the
        # guarantee is per-query over the hash draw, and our hashes are
        # fixed — 3x covers the variance at N=400 comfortably).
        assert violations / num_items <= 3.0 * math.exp(-depth)

    def test_conservative_never_looser_than_plain(self):
        rng = np.random.default_rng(3)
        ids = [f"d{i}" for i in range(100)]
        picks = rng.integers(0, 100, size=5000)
        plain = CountMinSketch(32, 3, exact=True)
        cons = CountMinSketch(32, 3, conservative=True, exact=True)
        for t, pick in enumerate(picks):
            plain.add(ids[int(pick)], timestamp=float(t))
            cons.add(ids[int(pick)], timestamp=float(t))
        assert cons.max_overestimate() <= plain.max_overestimate() + 1e-9
        for item_id in ids:
            assert (
                cons.sketch_estimate(item_id)
                <= plain.sketch_estimate(item_id) + 1e-9
            )


class TestDecayParity:
    @common_settings
    @given(
        zipf_streams(), st.floats(min_value=0.5, max_value=50.0)
    )
    def test_wide_sketch_profile_matches_decay_estimator(
        self, stream, half_life
    ):
        """Collision-free (wide) sketch == DecayEstimator, same stream."""
        ids, records = stream
        sketch = CountMinSketch(8192, 4, half_life=half_life)
        trace = RequestTrace()
        for record in records:
            sketch.add(record.item_id, timestamp=record.timestamp)
            trace.append(record)
        sketch_profile = sketch.estimate_profile(ids, smoothing=1.0)
        decay_profile = DecayEstimator(
            half_life=half_life, smoothing=1.0
        ).estimate(trace, ids)
        for item_id in ids:
            assert sketch_profile[item_id] == pytest.approx(
                decay_profile[item_id], abs=1e-9
            )

    def test_estimator_adapter_is_drop_in(self):
        from repro.workloads.estimator import estimate_database
        from repro.workloads.generator import WorkloadSpec, generate_database
        from repro.workloads.trace import synthesize_trace

        db = generate_database(WorkloadSpec(num_items=30, seed=2))
        trace = synthesize_trace(db, 3000, seed=4)
        sizes = {item.item_id: item.size for item in db.items}
        via_sketch = estimate_database(
            trace, sizes, estimator=SketchEstimator(4096, 4, half_life=50.0)
        )
        via_decay = estimate_database(
            trace, sizes, estimator=DecayEstimator(half_life=50.0)
        )
        for a, b in zip(via_sketch.items, via_decay.items):
            assert a.item_id == b.item_id
            assert a.frequency == pytest.approx(b.frequency, abs=1e-9)

    def test_rescale_preserves_estimates(self):
        """A stream long enough to trigger rescaling stays consistent."""
        sketch = CountMinSketch(64, 3, half_life=0.01, exact=True)
        for k in range(3000):
            sketch.add("hot" if k % 3 else "cold", timestamp=k * 0.05)
        assert sketch.rescales > 0
        assert math.isfinite(sketch.total())
        assert sketch.max_overestimate() >= 0.0
        profile = sketch.estimate_profile(["hot", "cold"], smoothing=0.0)
        assert profile["hot"] + profile["cold"] == pytest.approx(1.0)


class TestMergeAndSerialize:
    @common_settings
    @given(
        zipf_streams(),
        st.integers(min_value=4, max_value=64),
        st.integers(min_value=1, max_value=4),
        st.one_of(st.none(), st.floats(min_value=1.0, max_value=50.0)),
    )
    def test_merge_equals_concatenated_stream(
        self, stream, width, depth, half_life
    ):
        ids, records = stream
        split = len(records) // 2
        left = CountMinSketch(width, depth, half_life=half_life, seed=9)
        right = CountMinSketch(width, depth, half_life=half_life, seed=9)
        whole = CountMinSketch(width, depth, half_life=half_life, seed=9)
        for record in records[:split]:
            left.add(record.item_id, timestamp=record.timestamp)
        for record in records[split:]:
            right.add(record.item_id, timestamp=record.timestamp)
        for record in records:
            whole.add(record.item_id, timestamp=record.timestamp)
        left.merge(right)
        assert left.updates == whole.updates
        scale = max(1.0, whole.total())
        assert left.total() == pytest.approx(whole.total(), rel=1e-9)
        for item_id in ids:
            assert left.sketch_estimate(item_id) == pytest.approx(
                whole.sketch_estimate(item_id), abs=1e-9 * scale
            )

    @common_settings
    @given(zipf_streams(), sketch_shapes())
    def test_serialize_round_trip(self, stream, shape):
        ids, records = stream
        width, depth, conservative = shape
        sketch = CountMinSketch(
            width, depth, half_life=5.0, conservative=conservative, exact=True
        )
        for record in records:
            sketch.add(record.item_id, timestamp=record.timestamp)
        import json

        payload = json.loads(json.dumps(sketch.to_dict()))
        clone = CountMinSketch.from_dict(payload)
        assert clone.width == sketch.width
        assert clone.depth == sketch.depth
        assert clone.updates == sketch.updates
        assert clone.total() == pytest.approx(sketch.total(), rel=1e-12)
        for item_id in ids:
            assert clone.estimate(item_id) == pytest.approx(
                sketch.estimate(item_id), rel=1e-12, abs=1e-12
            )

    def test_shape_mismatch_rejected(self):
        base = CountMinSketch(16, 2)
        for other in (
            CountMinSketch(32, 2),
            CountMinSketch(16, 3),
            CountMinSketch(16, 2, seed=1),
            CountMinSketch(16, 2, half_life=5.0),
        ):
            with pytest.raises(SimulationError, match="merge"):
                base.merge(other)

    def test_conservative_merge_rejected(self):
        with pytest.raises(SimulationError, match="conservative"):
            CountMinSketch(16, 2, conservative=True).merge(
                CountMinSketch(16, 2, conservative=True)
            )

    def test_bad_schema_rejected(self):
        with pytest.raises(SimulationError, match="schema"):
            CountMinSketch.from_dict({"schema": "nope"})


class TestValidation:
    def test_bad_shape_rejected(self):
        with pytest.raises(SimulationError):
            CountMinSketch(0, 4)
        with pytest.raises(SimulationError):
            CountMinSketch(16, 0)

    @pytest.mark.parametrize("half_life", [0.0, -1.0, float("inf")])
    def test_bad_half_life_rejected(self, half_life):
        with pytest.raises(SimulationError):
            CountMinSketch(16, 2, half_life=half_life)

    def test_out_of_order_arrivals_rejected(self):
        sketch = CountMinSketch(16, 2, half_life=1.0)
        sketch.add("a", timestamp=5.0)
        with pytest.raises(SimulationError, match="out-of-order"):
            sketch.add("b", timestamp=4.0)

    def test_bad_weight_and_id_rejected(self):
        sketch = CountMinSketch(16, 2)
        with pytest.raises(SimulationError):
            sketch.add("", timestamp=0.0)
        with pytest.raises(SimulationError):
            sketch.add("a", weight=0.0)

    def test_empty_sketch_zero_smoothing_rejected(self):
        with pytest.raises(SimulationError, match="smoothing"):
            CountMinSketch(16, 2).estimate_profile(["a"], smoothing=0.0)

    def test_state_is_width_times_depth(self):
        sketch = CountMinSketch(128, 5)
        for k in range(1000):
            sketch.add(f"client-{k}")  # many more ids than counters
        assert sketch.state_size == 128 * 5

    def test_max_overestimate_requires_oracle_mode(self):
        with pytest.raises(SimulationError, match="oracle"):
            CountMinSketch(16, 2).max_overestimate()
