"""Tests for (1, m) air indexing (repro.simulation.indexing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.item import DataItem
from repro.exceptions import SimulationError
from repro.simulation.indexing import (
    IndexedChannel,
    IndexedTiming,
    optimal_index_replication,
)


@pytest.fixture
def items():
    return [
        DataItem("x", 0.5, 10.0),
        DataItem("y", 0.3, 20.0),
        DataItem("z", 0.2, 10.0),
    ]


def make_channel(items, m=1, entry=1.0, bandwidth=10.0):
    return IndexedChannel(
        0, items, bandwidth, replication=m, index_entry_size=entry
    )


class TestLayout:
    def test_cycle_includes_index_copies(self, items):
        # Data 40 units -> 4 s; index = 3 entries * 1 unit / 10 = 0.3 s.
        single = make_channel(items, m=1)
        assert single.index_duration == pytest.approx(0.3)
        assert single.cycle_length == pytest.approx(4.3)
        double = make_channel(items, m=2)
        assert double.cycle_length == pytest.approx(4.6)

    def test_index_overhead(self, items):
        channel = make_channel(items, m=2)
        assert channel.index_overhead == pytest.approx(0.6 / 4.6)

    def test_carries(self, items):
        channel = make_channel(items)
        assert channel.carries("y")
        assert not channel.carries("nope")

    def test_validation(self, items):
        with pytest.raises(SimulationError):
            IndexedChannel(0, [], 10.0)
        with pytest.raises(SimulationError):
            make_channel(items, m=0)
        with pytest.raises(SimulationError):
            make_channel(items, m=4)  # more copies than items
        with pytest.raises(SimulationError):
            make_channel(items, entry=0.0)
        with pytest.raises(SimulationError):
            IndexedChannel(0, items, 0.0)

    def test_duplicate_items_rejected(self):
        item = DataItem("x", 0.5, 1.0)
        with pytest.raises(SimulationError, match="twice"):
            IndexedChannel(0, [item, item], 10.0)


class TestRetrieve:
    def test_hand_computed_case(self, items):
        """m=1, b=10: [I 0-0.3][x 0.3-1.3][y 1.3-3.3][z 3.3-4.3]."""
        channel = make_channel(items, m=1)
        timing = channel.retrieve("y", 0.0)
        # Probe 0 (index starts immediately), read 0.3, doze to 1.3,
        # download 2.0 -> completes 3.3.
        assert timing.waiting_time == pytest.approx(3.3)
        assert timing.tuning_time == pytest.approx(0.3 + 2.0)
        assert timing.doze_time == pytest.approx(1.0)

    def test_missed_item_waits_next_cycle(self, items):
        channel = make_channel(items, m=1)
        # Tune in at 1.0: next index at 4.3, read to 4.6, x starts 4.6,
        # completes 5.6.
        timing = channel.retrieve("x", 1.0)
        assert timing.waiting_time == pytest.approx(4.6)

    def test_unknown_item(self, items):
        with pytest.raises(SimulationError, match="does not carry"):
            make_channel(items).retrieve("nope", 0.0)

    def test_negative_time(self, items):
        with pytest.raises(SimulationError):
            make_channel(items).retrieve("x", -1.0)

    def test_tuning_never_exceeds_waiting(self, items):
        channel = make_channel(items, m=2)
        for tune_in in np.linspace(0, 3 * channel.cycle_length, 200):
            timing = channel.retrieve("y", float(tune_in))
            assert timing.tuning_time <= timing.waiting_time + 1e-9

    def test_periodicity(self, items):
        channel = make_channel(items, m=2)
        a = channel.retrieve("z", 1.234)
        b = channel.retrieve("z", 1.234 + channel.cycle_length)
        assert a.waiting_time == pytest.approx(b.waiting_time)
        assert a.tuning_time == pytest.approx(b.tuning_time)


class TestExpectations:
    def test_expected_matches_uniform_average(self, items):
        channel = make_channel(items, m=2)
        expected = channel.expected_timing("y")
        steps = 20000
        waits = []
        tunes = []
        for k in range(steps):
            t = (k + 0.5) * channel.cycle_length / steps
            timing = channel.retrieve("y", t)
            waits.append(timing.waiting_time)
            tunes.append(timing.tuning_time)
        assert np.mean(waits) == pytest.approx(expected.waiting_time, rel=1e-3)
        assert np.mean(tunes) == pytest.approx(expected.tuning_time, rel=1e-3)

    def test_tradeoff_more_replication(self):
        """Tuning falls monotonically in m; waiting is U-shaped."""
        rng = np.random.default_rng(0)
        many = [
            DataItem(f"i{k}", 1.0 / 24, float(rng.uniform(5, 20)))
            for k in range(24)
        ]
        tuning = {}
        waiting = {}
        for m in (1, 4, 24):
            channel = make_channel(many, m=m, entry=0.5)
            tune_total = 0.0
            wait_total = 0.0
            for item in many:
                timing = channel.expected_timing(item.item_id)
                tune_total += item.frequency * timing.tuning_time
                wait_total += item.frequency * timing.waiting_time
            tuning[m] = tune_total
            waiting[m] = wait_total
        # Tuning: strictly better with more index copies.
        assert tuning[24] < tuning[4] < tuning[1]
        # Waiting: U-shaped — both extremes worse than the middle.
        assert waiting[1] > waiting[4]
        assert waiting[24] > waiting[4]

    def test_unindexed_limit(self, items):
        """Tiny index, m=1: waiting approaches the plain channel model."""
        from repro.simulation.channel import BroadcastChannel

        channel = make_channel(items, m=1, entry=1e-9)
        plain = BroadcastChannel(0, items, 10.0)
        indexed = channel.expected_timing("y").waiting_time
        # The indexed protocol can only start a download after an index
        # read, so it waits at least as long as the plain client; with a
        # vanishing index the penalty is bounded by an extra partial
        # cycle fraction.
        assert indexed >= plain.expected_waiting_time("y") - 1e-6
        assert indexed <= plain.expected_waiting_time("y") + plain.cycle_length


class TestOptimalReplication:
    def test_sqrt_rule(self):
        assert optimal_index_replication(100.0, 1.0) == 10
        assert optimal_index_replication(50.0, 2.0) == 5
        assert optimal_index_replication(1.0, 100.0) == 1  # floor at 1

    def test_validation(self):
        with pytest.raises(SimulationError):
            optimal_index_replication(0.0, 1.0)
        with pytest.raises(SimulationError):
            optimal_index_replication(1.0, -1.0)

    def test_rule_is_near_empirical_waiting_optimum(self):
        """m* should land near the m minimising expected waiting time."""
        rng = np.random.default_rng(3)
        many = [
            DataItem(f"i{k}", 1.0 / 36, float(rng.uniform(5, 15)))
            for k in range(36)
        ]
        entry = 0.5
        data_size = sum(i.size for i in many)
        index_size = len(many) * entry
        rule = optimal_index_replication(data_size, index_size)
        waits = {}
        for m in range(1, 13):
            channel = make_channel(many, m=m, entry=entry)
            waits[m] = sum(
                item.frequency
                * channel.expected_timing(item.item_id).waiting_time
                for item in many
            )
        empirical = min(waits, key=waits.get)
        assert abs(empirical - rule) <= 2


class TestIndexedTiming:
    def test_doze_property(self):
        timing = IndexedTiming(waiting_time=10.0, tuning_time=3.0)
        assert timing.doze_time == 7.0
