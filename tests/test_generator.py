"""Unit tests for repro.workloads.generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidDatabaseError
from repro.workloads.generator import WorkloadSpec, generate_database
from repro.workloads.zipf import zipf_frequencies


class TestWorkloadSpec:
    def test_defaults(self):
        spec = WorkloadSpec(num_items=10)
        assert spec.skewness == 0.8
        assert spec.diversity == 1.5
        assert spec.seed == 0

    def test_with_seed(self):
        spec = WorkloadSpec(num_items=10, seed=1)
        replica = spec.with_seed(99)
        assert replica.seed == 99
        assert replica.num_items == spec.num_items
        assert spec.seed == 1  # original untouched

    def test_bad_num_items(self):
        with pytest.raises(InvalidDatabaseError):
            WorkloadSpec(num_items=0)

    @pytest.mark.parametrize("corr", [-1.5, 1.5])
    def test_bad_correlation(self, corr):
        with pytest.raises(InvalidDatabaseError):
            WorkloadSpec(num_items=10, correlation=corr)


class TestGeneration:
    def test_size_and_normalisation(self):
        db = generate_database(WorkloadSpec(num_items=80, seed=0))
        assert len(db) == 80
        assert db.is_normalized

    def test_frequencies_are_zipf_in_catalogue_order(self):
        spec = WorkloadSpec(num_items=40, skewness=1.2, seed=0)
        db = generate_database(spec)
        expected = zipf_frequencies(40, 1.2)
        actual = [item.frequency for item in db.items]
        assert actual == pytest.approx(expected)

    def test_reproducible(self):
        spec = WorkloadSpec(num_items=30, seed=77)
        a = generate_database(spec)
        b = generate_database(spec)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_database(WorkloadSpec(num_items=30, seed=1))
        b = generate_database(WorkloadSpec(num_items=30, seed=2))
        assert a != b

    def test_sizes_within_diversity_range(self):
        db = generate_database(
            WorkloadSpec(num_items=200, diversity=2.0, seed=0)
        )
        for item in db:
            assert 1.0 <= item.size <= 100.0

    def test_diversity_zero_gives_conventional_environment(self):
        db = generate_database(WorkloadSpec(num_items=50, diversity=0.0))
        assert all(item.size == pytest.approx(1.0) for item in db)

    def test_no_shuffle_assigns_sizes_in_draw_order(self):
        spec = WorkloadSpec(num_items=20, seed=4, shuffle_sizes=False)
        db = generate_database(spec)
        from repro.workloads.sizes import diverse_sizes

        rng = np.random.default_rng(4)
        expected = diverse_sizes(20, spec.diversity, rng)
        assert [item.size for item in db.items] == pytest.approx(expected)


class TestCorrelation:
    @staticmethod
    def _rank_correlation(db):
        freqs = np.array([item.frequency for item in db.items])
        sizes = np.array([item.size for item in db.items])
        freq_ranks = np.argsort(np.argsort(-freqs))
        size_ranks = np.argsort(np.argsort(-sizes))
        return np.corrcoef(freq_ranks, size_ranks)[0, 1]

    def test_positive_correlation(self):
        db = generate_database(
            WorkloadSpec(num_items=100, seed=0, correlation=1.0)
        )
        assert self._rank_correlation(db) > 0.95

    def test_negative_correlation(self):
        db = generate_database(
            WorkloadSpec(num_items=100, seed=0, correlation=-1.0)
        )
        assert self._rank_correlation(db) < -0.95

    def test_zero_correlation_stays_near_zero(self):
        db = generate_database(
            WorkloadSpec(num_items=200, seed=0, correlation=0.0)
        )
        assert abs(self._rank_correlation(db)) < 0.3

    def test_partial_correlation_is_intermediate(self):
        strong = generate_database(
            WorkloadSpec(num_items=150, seed=0, correlation=1.0)
        )
        partial = generate_database(
            WorkloadSpec(num_items=150, seed=0, correlation=0.5)
        )
        assert (
            self._rank_correlation(partial)
            < self._rank_correlation(strong) + 1e-9
        )
        assert self._rank_correlation(partial) > 0.1

    def test_correlation_preserves_multiset_of_sizes(self):
        base = generate_database(WorkloadSpec(num_items=60, seed=3))
        corr = generate_database(
            WorkloadSpec(num_items=60, seed=3, correlation=0.7)
        )
        assert sorted(i.size for i in base.items) == pytest.approx(
            sorted(i.size for i in corr.items)
        )
