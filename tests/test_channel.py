"""Unit tests for repro.simulation.channel."""

from __future__ import annotations

import pytest

from repro.core.item import DataItem
from repro.exceptions import SimulationError
from repro.simulation.channel import BroadcastChannel


@pytest.fixture
def channel():
    """Three items of sizes 10, 20, 10 at bandwidth 10 -> cycle 4 s.

    Slots: x at [0,1), y at [1,3), z at [3,4) within each cycle.
    """
    return BroadcastChannel(
        0,
        [
            DataItem("x", 0.5, 10.0),
            DataItem("y", 0.3, 20.0),
            DataItem("z", 0.2, 10.0),
        ],
        bandwidth=10.0,
    )


class TestConstruction:
    def test_cycle_length(self, channel):
        assert channel.cycle_length == pytest.approx(4.0)

    def test_empty_channel_rejected(self):
        with pytest.raises(SimulationError, match="no items"):
            BroadcastChannel(0, [], bandwidth=10.0)

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(SimulationError, match="bandwidth"):
            BroadcastChannel(
                0, [DataItem("x", 1.0, 1.0)], bandwidth=0.0
            )

    def test_duplicate_items_rejected(self):
        item = DataItem("x", 0.5, 1.0)
        with pytest.raises(SimulationError, match="twice"):
            BroadcastChannel(0, [item, item], bandwidth=1.0)

    def test_carries(self, channel):
        assert channel.carries("y")
        assert not channel.carries("nope")


class TestSlots:
    def test_slot_offsets(self, channel):
        assert channel.slot_offset("x") == pytest.approx(0.0)
        assert channel.slot_offset("y") == pytest.approx(1.0)
        assert channel.slot_offset("z") == pytest.approx(3.0)

    def test_unknown_item(self, channel):
        with pytest.raises(SimulationError, match="does not carry"):
            channel.slot_offset("nope")

    def test_transmission_time(self, channel):
        assert channel.transmission_time("y") == pytest.approx(2.0)


class TestNextTransmission:
    def test_before_first_slot(self, channel):
        assert channel.next_transmission_start("y", 0.5) == pytest.approx(1.0)

    def test_exactly_at_slot_start_catches_it(self, channel):
        assert channel.next_transmission_start("y", 1.0) == pytest.approx(1.0)

    def test_mid_transmission_waits_full_cycle(self, channel):
        # Tuning in at 1.5 (during y's transmission) misses the start.
        assert channel.next_transmission_start("y", 1.5) == pytest.approx(5.0)

    def test_later_cycles(self, channel):
        assert channel.next_transmission_start("x", 9.0) == pytest.approx(12.0)

    def test_negative_time_rejected(self, channel):
        with pytest.raises(SimulationError):
            channel.next_transmission_start("x", -1.0)


class TestWaitingTimes:
    def test_delivery_completion(self, channel):
        # Tune in at 0.5 for y: next start 1.0, download 2 -> complete 3.
        assert channel.delivery_completion("y", 0.5) == pytest.approx(3.0)

    def test_waiting_time(self, channel):
        assert channel.waiting_time("y", 0.5) == pytest.approx(2.5)

    def test_expected_waiting_time_eq1(self, channel):
        # cycle/2 + z/b = 2.0 + 2.0.
        assert channel.expected_waiting_time("y") == pytest.approx(4.0)

    def test_expected_matches_uniform_average(self, channel):
        """Averaging actual waits over a fine uniform grid ≈ Eq. (1)."""
        steps = 4000
        cycle = channel.cycle_length
        total = 0.0
        for k in range(steps):
            tune_in = (k + 0.5) * cycle / steps
            total += channel.waiting_time("y", tune_in)
        average = total / steps
        assert average == pytest.approx(
            channel.expected_waiting_time("y"), rel=1e-3
        )

    def test_expected_matches_uniform_average_all_items(self, channel):
        steps = 2000
        cycle = channel.cycle_length
        for item in channel.items:
            total = sum(
                channel.waiting_time(item.item_id, (k + 0.5) * cycle / steps)
                for k in range(steps)
            )
            assert total / steps == pytest.approx(
                channel.expected_waiting_time(item.item_id), rel=1e-3
            )
