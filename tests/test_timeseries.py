"""Unit tests for the streaming estimators behind live telemetry.

The estimators trade exactness for O(1) memory, so each is checked
against a brute-force oracle on the same data:

* :class:`SlidingWindow` stats vs numpy over the retained samples;
* :class:`EwmaRate` vs the closed-form exponential average;
* :class:`P2Quantile` vs ``numpy.quantile`` within a coarse tolerance
  (P² is an approximation) and *exactly* below five samples;
* :class:`Heartbeat` emission/throttling against a real registry;
* :class:`MetricWindows` summaries over synthetic snapshots.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    EwmaRate,
    Heartbeat,
    MetricWindows,
    P2Quantile,
    SlidingWindow,
)


class TestSlidingWindow:
    def test_stats_match_numpy_on_retained_samples(self):
        window = SlidingWindow(duration=60.0, max_samples=512)
        values = [math.sin(i / 7.0) * 10 for i in range(100)]
        for i, value in enumerate(values):
            window.observe(value, now=float(i))
        stats = window.stats(now=99.0)
        # Window spans [39, 99] inclusive: samples 39..99 survive.
        kept = np.asarray(values[39:])
        assert stats["count"] == len(kept)
        assert stats["mean"] == pytest.approx(float(kept.mean()))
        assert stats["min"] == pytest.approx(float(kept.min()))
        assert stats["max"] == pytest.approx(float(kept.max()))
        assert stats["last"] == pytest.approx(values[-1])

    def test_time_eviction(self):
        window = SlidingWindow(duration=10.0)
        window.observe(1.0, now=0.0)
        window.observe(2.0, now=5.0)
        window.observe(3.0, now=20.0)
        assert [value for _, value in window.samples(now=20.0)] == [3.0]

    def test_capacity_eviction(self):
        window = SlidingWindow(duration=1e9, max_samples=4)
        for i in range(10):
            window.observe(float(i), now=float(i))
        assert [value for _, value in window.samples(now=9.0)] == [
            6.0,
            7.0,
            8.0,
            9.0,
        ]

    def test_empty_stats(self):
        stats = SlidingWindow().stats(now=0.0)
        assert stats["count"] == 0
        assert stats["mean"] is None


class TestEwmaRate:
    def test_constant_rate_converges(self):
        ewma = EwmaRate(halflife=2.0)
        # 10 events/second, 1s apart: the EWMA must converge to 10.
        for i in range(100):
            ewma.update(10.0, now=float(i))
        assert ewma.rate == pytest.approx(10.0, rel=1e-6)

    def test_matches_closed_form(self):
        halflife = 3.0
        ewma = EwmaRate(halflife=halflife)
        rng = random.Random(42)
        times = np.cumsum([rng.uniform(0.1, 2.0) for _ in range(50)])
        counts = [rng.uniform(0.0, 20.0) for _ in range(50)]
        expected = None
        previous = None
        for now, count in zip(times, counts):
            ewma.update(count, now=float(now))
            if previous is None:
                previous = now
                continue  # first update only anchors time
            dt = now - previous
            instantaneous = count / dt
            if expected is None:
                expected = instantaneous  # second update seeds the rate
            else:
                alpha = 1.0 - 2.0 ** (-dt / halflife)
                expected += alpha * (instantaneous - expected)
            previous = now
        assert ewma.rate == pytest.approx(expected)

    def test_first_update_reports_zero(self):
        ewma = EwmaRate()
        ewma.update(100.0, now=0.0)
        assert ewma.rate == 0.0


class TestP2Quantile:
    def test_exact_below_five_samples(self):
        estimator = P2Quantile(q=0.5)
        for value in (5.0, 1.0, 3.0):
            estimator.observe(value)
        assert estimator.value == pytest.approx(
            float(np.quantile([5.0, 1.0, 3.0], 0.5))
        )

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_tracks_numpy_quantile_uniform(self, q, seed):
        rng = random.Random(seed)
        estimator = P2Quantile(q=q)
        values = [rng.uniform(0.0, 100.0) for _ in range(5000)]
        for value in values:
            estimator.observe(value)
        exact = float(np.quantile(values, q))
        # P² on 5000 uniform samples lands within a few percent of the
        # distribution's span.
        assert abs(estimator.value - exact) < 5.0

    def test_tracks_numpy_quantile_normal(self):
        rng = random.Random(7)
        estimator = P2Quantile(q=0.5)
        values = [rng.gauss(50.0, 10.0) for _ in range(5000)]
        for value in values:
            estimator.observe(value)
        exact = float(np.quantile(values, 0.5))
        assert abs(estimator.value - exact) < 1.0

    def test_empty(self):
        assert P2Quantile().value is None


class TestHeartbeat:
    def test_emits_gauges_counter_and_rates(self):
        registry = MetricsRegistry()
        heartbeat = Heartbeat(
            "cds", registry, interval=0.0, rates=("delta_evaluations",)
        )
        heartbeat.beat(moves=3, cost=12.5, delta_evaluations=100)
        heartbeat.beat(moves=4, cost=11.0, delta_evaluations=250)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["cds.heartbeat.beats"] == 2
        assert snapshot["gauges"]["cds.heartbeat.moves"] == 4
        assert snapshot["gauges"]["cds.heartbeat.cost"] == 11.0
        assert "cds.heartbeat.delta_evaluations_per_second" in snapshot["gauges"]

    def test_throttle_suppresses_rapid_beats(self):
        registry = MetricsRegistry()
        heartbeat = Heartbeat("dp", registry, interval=3600.0)
        assert heartbeat.beat(rows=1) is True  # first beat always emits
        for i in range(100):
            assert heartbeat.beat(rows=i) is False
        assert heartbeat.beats == 1
        heartbeat.flush(rows=99)  # flush ignores the throttle
        assert heartbeat.beats == 2
        assert registry.snapshot()["gauges"]["dp.heartbeat.rows"] == 99

    def test_obs_factory_returns_none_when_disabled(self):
        obs.reset()
        assert obs.heartbeat("cds") is None
        obs.configure(metrics=True)
        try:
            assert isinstance(obs.heartbeat("cds"), Heartbeat)
        finally:
            obs.reset()


class TestMetricWindows:
    def test_counter_deltas_and_gauge_quantiles(self):
        windows = MetricWindows(window=60.0, quantile=0.5)
        for tick in range(10):
            snapshot = {
                "schema": 2,
                "counters": {"moves": 10 * (tick + 1)},
                "gauges": {"cost": 100.0 - tick},
                "histograms": {},
            }
            windows.sample(snapshot, now=float(tick))
        summary = windows.summary(now=9.0)
        counters = summary["counters"]["moves"]
        assert counters["total"] == 100
        # 9 deltas of +10 each over 9 seconds.
        assert counters["window_delta_mean"] == pytest.approx(10.0)
        gauges = summary["gauges"]["cost"]
        assert gauges["last"] == pytest.approx(91.0)
        assert gauges["window_min"] == pytest.approx(91.0)
        assert gauges["window_max"] == pytest.approx(100.0)
        assert gauges["p50"] == pytest.approx(
            float(np.quantile([100.0 - t for t in range(10)], 0.5)), abs=1.0
        )
