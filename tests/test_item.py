"""Unit tests for repro.core.item."""

from __future__ import annotations

import math

import pytest

from repro.core.item import DataItem
from repro.exceptions import InvalidItemError


class TestConstruction:
    def test_valid_item(self):
        item = DataItem("d1", frequency=0.25, size=4.0)
        assert item.item_id == "d1"
        assert item.frequency == 0.25
        assert item.size == 4.0

    def test_label_is_optional(self):
        assert DataItem("d1", 0.1, 1.0).label is None
        assert DataItem("d1", 0.1, 1.0, label="news").label == "news"

    def test_label_does_not_affect_equality(self):
        assert DataItem("d1", 0.1, 1.0, label="x") == DataItem(
            "d1", 0.1, 1.0, label="y"
        )

    def test_items_are_frozen(self):
        item = DataItem("d1", 0.1, 1.0)
        with pytest.raises(AttributeError):
            item.frequency = 0.2  # type: ignore[misc]

    def test_integer_inputs_accepted(self):
        item = DataItem("d1", frequency=1, size=3)
        assert item.benefit_ratio == pytest.approx(1 / 3)


class TestValidation:
    @pytest.mark.parametrize("bad_id", ["", None, 42])
    def test_rejects_bad_item_id(self, bad_id):
        with pytest.raises(InvalidItemError):
            DataItem(bad_id, 0.1, 1.0)

    @pytest.mark.parametrize("freq", [0.0, -0.1, math.nan, math.inf, "x", None])
    def test_rejects_bad_frequency(self, freq):
        with pytest.raises(InvalidItemError):
            DataItem("d1", freq, 1.0)

    @pytest.mark.parametrize("size", [0.0, -3.0, math.nan, math.inf, "x", None])
    def test_rejects_bad_size(self, size):
        with pytest.raises(InvalidItemError):
            DataItem("d1", 0.1, size)


class TestDerivedQuantities:
    def test_benefit_ratio(self):
        assert DataItem("d", 0.2, 4.0).benefit_ratio == pytest.approx(0.05)

    def test_benefit_ratio_matches_paper_d1(self):
        # d1 in Table 2: f=0.2374, z=21.18.
        item = DataItem("d1", 0.2374, 21.18)
        assert item.benefit_ratio == pytest.approx(0.2374 / 21.18)

    def test_weight_is_frequency_times_size(self):
        assert DataItem("d", 0.2, 4.0).weight == pytest.approx(0.8)

    def test_scaled_rescales_frequency_only(self):
        item = DataItem("d", 0.2, 4.0, label="x")
        scaled = item.scaled(frequency_factor=2.5)
        assert scaled.frequency == pytest.approx(0.5)
        assert scaled.size == item.size
        assert scaled.item_id == item.item_id
        assert scaled.label == "x"

    def test_scaled_returns_new_object(self):
        item = DataItem("d", 0.2, 4.0)
        assert item.scaled(1.0) == item
        assert item.scaled(1.0) is not item
