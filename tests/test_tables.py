"""Unit tests for repro.analysis.tables."""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_float, format_table


class TestFormatFloat:
    def test_strips_trailing_zeros(self):
        assert format_float(1.5000) == "1.5"
        assert format_float(2.0) == "2"

    def test_precision(self):
        assert format_float(3.14159, precision=2) == "3.14"

    def test_zero(self):
        assert format_float(0.0) == "0"


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.25], ["b", 10]],
        )
        lines = text.splitlines()
        assert lines[0].split() == ["name", "value"]
        assert set(lines[1]) <= {"-", " "}
        assert "alpha" in lines[2]
        assert "1.25" in lines[2]

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_none_renders_dash(self):
        text = format_table(["x"], [[None]])
        assert text.splitlines()[-1].strip() == "-"

    def test_numeric_right_aligned_text_left_aligned(self):
        text = format_table(
            ["name", "value"],
            [["a", 1], ["longer", 100]],
        )
        data_lines = text.splitlines()[2:]
        # Text column left aligned: "a" padded on the right.
        assert data_lines[0].startswith("a     ")
        # Numeric column right aligned: 1 padded on the left.
        assert data_lines[0].rstrip().endswith("1")

    def test_columns_aligned(self):
        text = format_table(
            ["a", "b"],
            [["x", 1.0], ["yy", 22.5]],
        )
        lines = text.splitlines()
        assert len({len(line.rstrip()) for line in lines[2:]}) <= 2

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="headers"):
            format_table(["a", "b"], [[1]])

    def test_bool_rendered_textually(self):
        text = format_table(["flag"], [[True]])
        assert "True" in text
