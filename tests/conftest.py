"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.workloads.generator import WorkloadSpec, generate_database
from repro.workloads.paper_profile import (
    PAPER_CDS_COST,
    PAPER_DRP_COST,
    PAPER_INITIAL_COST,
    PAPER_NUM_CHANNELS,
    paper_database,
)

#: Single source of truth for the paper's Table 2-4 golden values.
#: Every test that asserts a printed number from the worked example
#: pulls it from here (directly or via the ``paper_goldens`` fixture)
#: instead of repeating the literal; ``tests/test_paper_goldens.py``
#: walks the whole catalogue end to end.
PAPER_GOLDENS = {
    # Table 2 / 3(a): the unsplit database.
    "num_channels": PAPER_NUM_CHANNELS,
    "total_size": 135.60,
    "initial_cost": PAPER_INITIAL_COST,  # 135.60 (ΣF = 1)
    # Table 3(b)-(c): costs after DRP's first and second split.
    "first_split_costs": (29.04, 28.62),
    "second_split_costs": (6.82, 7.02, 28.62),
    # Table 3(d): the finished DRP allocation (max-reduction policy).
    "drp_channel_costs": (2.59, 1.07, 6.82, 7.26, 6.35),
    "drp_cost": PAPER_DRP_COST,  # 24.09
    # Listing's max-cost policy lands on a different, nearby optimum.
    "max_cost_policy_cost": 24.22,
    # Table 4: the two CDS moves and the local optimum.
    "cds_moves": (
        {"item": "d10", "delta": 0.95, "cost_after": 23.13},
        {"item": "d12", "delta": 0.45, "cost_after": 22.68},
    ),
    "cds_cost": PAPER_CDS_COST,  # 22.29
}


@pytest.fixture(scope="session")
def paper_goldens() -> dict:
    """The Table 2-4 golden-value catalogue (read-only)."""
    return dict(PAPER_GOLDENS)


@pytest.fixture
def paper_db() -> BroadcastDatabase:
    """The paper's Table 2 database (15 items)."""
    return paper_database()


@pytest.fixture
def tiny_db() -> BroadcastDatabase:
    """Four hand-picked items with easy-to-verify aggregates.

    frequencies sum to 1; total size = 10.
    """
    return BroadcastDatabase(
        [
            DataItem("a", 0.4, 1.0),
            DataItem("b", 0.3, 2.0),
            DataItem("c", 0.2, 3.0),
            DataItem("d", 0.1, 4.0),
        ]
    )


@pytest.fixture
def medium_db() -> BroadcastDatabase:
    """A reproducible 30-item synthetic workload."""
    return generate_database(
        WorkloadSpec(num_items=30, skewness=0.8, diversity=1.5, seed=1234)
    )


@pytest.fixture
def uniform_db() -> BroadcastDatabase:
    """Equal-size, equal-frequency items (conventional environment)."""
    n = 12
    return BroadcastDatabase(
        [DataItem(f"u{i}", 1.0 / n, 5.0) for i in range(n)]
    )
