"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.workloads.generator import WorkloadSpec, generate_database
from repro.workloads.paper_profile import paper_database


@pytest.fixture
def paper_db() -> BroadcastDatabase:
    """The paper's Table 2 database (15 items)."""
    return paper_database()


@pytest.fixture
def tiny_db() -> BroadcastDatabase:
    """Four hand-picked items with easy-to-verify aggregates.

    frequencies sum to 1; total size = 10.
    """
    return BroadcastDatabase(
        [
            DataItem("a", 0.4, 1.0),
            DataItem("b", 0.3, 2.0),
            DataItem("c", 0.2, 3.0),
            DataItem("d", 0.1, 4.0),
        ]
    )


@pytest.fixture
def medium_db() -> BroadcastDatabase:
    """A reproducible 30-item synthetic workload."""
    return generate_database(
        WorkloadSpec(num_items=30, skewness=0.8, diversity=1.5, seed=1234)
    )


@pytest.fixture
def uniform_db() -> BroadcastDatabase:
    """Equal-size, equal-frequency items (conventional environment)."""
    n = 12
    return BroadcastDatabase(
        [DataItem(f"u{i}", 1.0 / n, 5.0) for i in range(n)]
    )
