"""Warm-start correctness: incremental engine, sweep seeding, reuse.

The incremental allocation engine (PR: warm-start CDS + allocation
cache) promises two things this module pins down:

* **quality** — a guarded warm start is never worse than the documented
  regression guard, relative both to the cold DRP estimate (structural:
  holds for any input) and to the cold DRP+CDS pipeline on drifted Zipf
  profiles (derandomized hypothesis examples, so the assertion set is
  fixed);
* **determinism** — warm sweeps produce identical rows for any worker
  count, an unchanged profile reproduces the previous allocation
  exactly, and the zero-drift epoch boundary reuses the program
  verbatim.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.allocation import ChannelAllocation
from repro.core.cds import cds_refine
from repro.core.cost import allocation_cost
from repro.core.database import BroadcastDatabase
from repro.core.drp import AUTO_BACKEND_CROSSOVER, drp_allocate
from repro.core.incremental import (
    DEFAULT_REGRESSION_GUARD,
    AllocationCache,
    CompactAllocation,
    IncrementalAllocator,
    database_fingerprint,
    warm_start_refine,
    workload_fingerprint,
)
from repro.core.item import DataItem
from repro.core.kernels import HAS_NUMPY
from repro.core.scheduler import DRPCDSAllocator
from repro.exceptions import InvalidDatabaseError
from repro.simulation.adaptive import run_adaptive_simulation
from repro.workloads.generator import WorkloadSpec, generate_database
from repro.workloads.paper_profile import (
    PAPER_CDS_COST,
    PAPER_NUM_CHANNELS,
    paper_database,
)

warm_settings = settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _drift(database: BroadcastDatabase, seed: int, magnitude: float):
    """Perturb every frequency by up to ±magnitude and renormalize."""
    rng = np.random.default_rng(seed)
    factors = 1.0 + rng.uniform(-magnitude, magnitude, size=len(database))
    raw = [
        item.frequency * factor
        for item, factor in zip(database.items, factors)
    ]
    total = sum(raw)
    return BroadcastDatabase(
        [
            DataItem(item.item_id, freq / total, item.size)
            for item, freq in zip(database.items, raw)
        ]
    )


def _cold_cost(database: BroadcastDatabase, num_channels: int) -> float:
    rough = drp_allocate(database, num_channels)
    return cds_refine(rough.allocation).cost


class TestWarmStartParity:
    """Satellite 3: warm-start quality and exactness guarantees."""

    @warm_settings
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        skewness=st.floats(min_value=0.2, max_value=1.4),
        magnitude=st.floats(min_value=0.0, max_value=0.05),
    )
    def test_warm_matches_cold_on_drifted_zipf(
        self, seed, skewness, magnitude
    ):
        base = generate_database(
            WorkloadSpec(num_items=40, skewness=skewness, seed=seed)
        )
        previous = DRPCDSAllocator().allocate(base, 4).allocation
        drifted = _drift(base, seed + 1, magnitude)
        result = warm_start_refine(drifted, 4, previous)
        cold = _cold_cost(drifted, 4)
        # Warm never worse than cold beyond the documented guard: CDS is
        # a local search, so a warm seed can legitimately land on a
        # different (at most guard-factor worse, often better) optimum.
        assert result.cost <= cold * DEFAULT_REGRESSION_GUARD + 1e-9
        # Structural guarantee (holds for ANY input): never worse than
        # the documented guard over the cold DRP estimate.
        rough = drp_allocate(drifted, 4)
        assert result.cost <= rough.cost * DEFAULT_REGRESSION_GUARD + 1e-9
        # The warm refinement can also never be worse than its seed.
        seeded = ChannelAllocation.rebase(drifted, previous)
        assert result.cost <= allocation_cost(seeded) + 1e-9

    def test_unchanged_profile_reproduces_allocation_exactly(self):
        database = generate_database(WorkloadSpec(num_items=60, seed=3))
        previous = DRPCDSAllocator().allocate(database, 5).allocation
        result = warm_start_refine(database, 5, previous)
        assert result.mode == "warm"
        assert result.warm_moves == 0  # CDS is already converged
        assert result.allocation.as_id_lists() == previous.as_id_lists()
        assert result.cost == pytest.approx(allocation_cost(previous))

    def test_paper_workload_warm_start_hits_golden_cost(self):
        """Table 2 fixture: warm start preserves the paper's 22.29."""
        database = paper_database()
        rough = drp_allocate(
            database, PAPER_NUM_CHANNELS, split_policy="max-reduction"
        )
        cold = cds_refine(rough.allocation)
        assert cold.cost == pytest.approx(PAPER_CDS_COST, abs=0.02)
        warm = warm_start_refine(
            database, PAPER_NUM_CHANNELS, cold.allocation
        )
        assert warm.cost == pytest.approx(PAPER_CDS_COST, abs=0.02)
        assert warm.cost <= cold.cost + 1e-9
        assert warm.allocation.as_id_lists() == cold.allocation.as_id_lists()

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
    def test_initial_seed_backend_parity(self):
        """cds_refine(initial=...) is bitwise-identical across backends."""
        database = generate_database(WorkloadSpec(num_items=50, seed=9))
        previous = drp_allocate(database, 4).allocation
        drifted = _drift(database, 10, 0.04)
        seed_lists = previous.as_id_lists()
        start = drp_allocate(drifted, 4).allocation
        py = cds_refine(start, initial=seed_lists, backend="python")
        np_ = cds_refine(start, initial=seed_lists, backend="numpy")
        assert py.cost == np_.cost
        assert py.iterations == np_.iterations
        assert (
            py.allocation.as_id_lists() == np_.allocation.as_id_lists()
        )

    def test_incompatible_seed_falls_back_cold(self):
        database = generate_database(WorkloadSpec(num_items=30, seed=1))
        other = generate_database(WorkloadSpec(num_items=20, seed=2))
        previous = DRPCDSAllocator().allocate(other, 4).allocation
        result = warm_start_refine(database, 4, previous)
        assert result.mode == "cold"
        assert result.cost == pytest.approx(_cold_cost(database, 4))


class TestAutoBackendCrossover:
    """Satellite 1: 'auto' resolves by problem size."""

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
    def test_auto_uses_python_below_crossover(self):
        database = generate_database(
            WorkloadSpec(num_items=AUTO_BACKEND_CROSSOVER - 1, seed=0)
        )
        result = drp_allocate(database, 4, backend="auto")
        assert result.resolved_backend == "python"

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
    def test_auto_uses_numpy_at_crossover(self):
        database = generate_database(
            WorkloadSpec(num_items=AUTO_BACKEND_CROSSOVER, seed=0)
        )
        result = drp_allocate(database, 4, backend="auto")
        assert result.resolved_backend == "numpy"

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
    def test_explicit_numpy_honoured_at_any_size(self):
        database = generate_database(WorkloadSpec(num_items=40, seed=0))
        result = drp_allocate(database, 4, backend="numpy")
        assert result.resolved_backend == "numpy"

    def test_explicit_python_honoured(self):
        database = generate_database(WorkloadSpec(num_items=40, seed=0))
        result = drp_allocate(database, 4, backend="python")
        assert result.resolved_backend == "python"


class _ConstantEstimator:
    """Stub estimator: always reports the same profile (zero drift)."""

    def __init__(self, profile):
        self._profile = dict(profile)

    def estimate(self, trace, catalogue):
        return dict(self._profile)


class TestZeroDriftReuse:
    """Satellite 2: unchanged profile reuses the program verbatim."""

    def test_zero_drift_epochs_reuse_program(self):
        database = generate_database(WorkloadSpec(num_items=24, seed=5))
        profile = {item.item_id: item.frequency for item in database.items}
        reports = run_adaptive_simulation(
            database,
            DRPCDSAllocator(),
            4,
            epochs=4,
            requests_per_epoch=200,
            estimator=_ConstantEstimator(profile),
            seed=5,
        )
        # Epoch 0 is the initial build; every later epoch sees zero L1
        # drift against the believed profile and must skip the rebuild.
        for report in reports[1:]:
            assert report.cache_hit
            assert not report.reallocated
            assert report.allocation_mode == "reused"

    def test_real_estimator_still_reallocates(self):
        database = generate_database(WorkloadSpec(num_items=24, seed=5))
        reports = run_adaptive_simulation(
            database,
            DRPCDSAllocator(),
            4,
            epochs=3,
            requests_per_epoch=400,
            seed=5,
        )
        assert any(r.reallocated for r in reports[1:])


class TestWarmSweep:
    """Warm sweeps: worker-count independence and cold fallback."""

    @pytest.fixture
    def config(self):
        from repro.experiments.config import ExperimentConfig

        return ExperimentConfig(
            name="warm-sweep-test",
            description="warm sweep identity",
            sweep_parameter="skewness",
            sweep_values=(0.4, 1.0),
            algorithms=("drp-cds",),
            num_items=40,
            num_channels=4,
            replications=2,
            base_seed=11,
        )

    def test_warm_sweep_identical_across_worker_counts(self, config):
        from repro.experiments.runner import run_experiment

        serial = run_experiment(config, warm_start=True)
        fanned = run_experiment(config, warm_start=True, workers=2)
        rows = lambda result: [  # noqa: E731
            (row.sweep_value, row.algorithm, row.mean_cost, row.replications)
            for row in result.rows
        ]
        assert rows(serial) == rows(fanned)

    def test_warm_sweep_within_guard_of_cold(self, config):
        from repro.experiments.runner import run_experiment

        cold = run_experiment(config)
        warm = run_experiment(config, warm_start=True)
        for cold_row, warm_row in zip(cold.rows, warm.rows):
            assert warm_row.mean_cost <= (
                cold_row.mean_cost * DEFAULT_REGRESSION_GUARD + 1e-9
            )

    def test_shape_changing_sweep_runs_cold(self):
        """A num_channels sweep has no compatible neighbours."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        config = ExperimentConfig(
            name="warm-k-sweep",
            description="K sweep cannot warm across values",
            sweep_parameter="num_channels",
            sweep_values=(3, 5),
            algorithms=("drp-cds",),
            num_items=30,
            replications=1,
            base_seed=2,
        )
        cold = run_experiment(config)
        warm = run_experiment(config, warm_start=True)
        for cold_row, warm_row in zip(cold.rows, warm.rows):
            assert warm_row.mean_cost == pytest.approx(cold_row.mean_cost)


class TestIncrementalAllocator:
    """Unit tests for the stateful engine and its cache."""

    def test_cold_then_cache_then_warm(self):
        database = generate_database(WorkloadSpec(num_items=30, seed=7))
        engine = IncrementalAllocator(4, cache=AllocationCache())
        first = engine.reallocate(database)
        assert first.mode == "cold"
        again = engine.reallocate(database)
        assert again.mode == "cache"
        # The compact cache encoding preserves group membership (and
        # therefore cost), not the within-group listing order.
        assert [sorted(g) for g in again.allocation.as_id_lists()] == [
            sorted(g) for g in first.allocation.as_id_lists()
        ]
        assert again.cost == pytest.approx(first.cost)
        drifted = _drift(database, 8, 0.03)
        moved = engine.reallocate(drifted)
        assert moved.mode in ("warm", "fallback")
        assert engine.stats.cache_hits == 1

    def test_channel_count_change_runs_cold(self):
        database = generate_database(WorkloadSpec(num_items=30, seed=7))
        engine = IncrementalAllocator(4)
        engine.reallocate(database)
        result = engine.reallocate(database, num_channels=5)
        assert result.mode == "cold"
        assert result.allocation.num_channels == 5

    def test_update_frequencies_maintains_aggregates(self):
        database = generate_database(WorkloadSpec(num_items=30, seed=7))
        engine = IncrementalAllocator(4)
        engine.reallocate(database)
        target = database.items[0].item_id
        engine.update_frequencies(
            {target: database.items[0].frequency * 2.0}, refine=False
        )
        # The delta-maintained cost must equal a from-scratch recompute.
        assert engine.cost == pytest.approx(
            allocation_cost(engine.allocation), abs=1e-9
        )
        aggregates = engine.channel_aggregates
        for (agg_f, agg_z), stats in zip(
            aggregates, engine.allocation.channel_stats
        ):
            assert agg_f == pytest.approx(stats.frequency, abs=1e-12)
            assert agg_z == pytest.approx(stats.size, abs=1e-12)

    def test_update_frequencies_rejects_unknown_and_nonpositive(self):
        database = generate_database(WorkloadSpec(num_items=10, seed=7))
        engine = IncrementalAllocator(3)
        engine.reallocate(database)
        with pytest.raises(InvalidDatabaseError):
            engine.update_frequencies({"nope": 0.1})
        with pytest.raises(InvalidDatabaseError):
            engine.update_frequencies({database.items[0].item_id: 0.0})

    def test_shared_cache_across_engines(self):
        database = generate_database(WorkloadSpec(num_items=20, seed=4))
        cache = AllocationCache()
        IncrementalAllocator(3, cache=cache).reallocate(database)
        second = IncrementalAllocator(3, cache=cache).reallocate(database)
        assert second.mode == "cache"
        assert cache.stats()["hits"] == 1

    def test_cache_lru_eviction(self):
        cache = AllocationCache(max_entries=2)
        database = generate_database(WorkloadSpec(num_items=6, seed=0))
        allocation = drp_allocate(database, 2).allocation
        for key in ("a", "b", "c"):
            cache.put(key, allocation)
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert len(cache) == 2

    def test_compact_allocation_roundtrip(self):
        database = generate_database(WorkloadSpec(num_items=12, seed=1))
        allocation = drp_allocate(database, 3).allocation
        compact = CompactAllocation.from_allocation(allocation)
        assert compact.compatible_with(database, 3)
        restored = compact.to_allocation(database)
        assert [sorted(g) for g in restored.as_id_lists()] == [
            sorted(g) for g in allocation.as_id_lists()
        ]
        assert allocation_cost(restored) == pytest.approx(
            allocation_cost(allocation)
        )

    def test_fingerprints_distinguish_inputs(self):
        database = generate_database(WorkloadSpec(num_items=10, seed=0))
        assert database_fingerprint(database, 3) != database_fingerprint(
            database, 4
        )
        base = workload_fingerprint(num_items=10, num_channels=3, seed=0)
        assert base == workload_fingerprint(
            num_items=10, num_channels=3, seed=0
        )
        assert base != workload_fingerprint(
            num_items=10, num_channels=3, seed=1
        )
        assert base != workload_fingerprint(
            num_items=10, num_channels=3, seed=0, algorithm="drp-cds"
        )


class TestAdaptiveWarmStart:
    """Warm-started adaptive loop: modes, guard, and cache wiring."""

    def test_warm_loop_reports_warm_modes(self):
        database = generate_database(WorkloadSpec(num_items=30, seed=2))
        reports = run_adaptive_simulation(
            database,
            DRPCDSAllocator(),
            4,
            epochs=4,
            requests_per_epoch=500,
            seed=2,
            warm_start=True,
        )
        assert reports[0].allocation_mode == "cold"
        later = {r.allocation_mode for r in reports[1:]}
        assert later <= {"warm", "fallback", "cache", "reused"}

    def test_warm_and_cold_loops_measure_same_truth(self):
        """Warm start changes the search, not the simulated workload."""
        database = generate_database(WorkloadSpec(num_items=30, seed=2))
        kwargs = dict(
            epochs=3, requests_per_epoch=400, seed=2
        )
        cold = run_adaptive_simulation(
            database, DRPCDSAllocator(), 4, **kwargs
        )
        warm = run_adaptive_simulation(
            database, DRPCDSAllocator(), 4, warm_start=True, **kwargs
        )
        # Epoch 0 programs are built from the same initial profile by
        # the same DRP+CDS pipeline — identical measurements.
        assert warm[0].measured.mean == pytest.approx(cold[0].measured.mean)
        assert warm[0].profile_error == pytest.approx(cold[0].profile_error)
