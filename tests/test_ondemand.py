"""Tests for on-demand broadcast scheduling (repro.simulation.ondemand)."""

from __future__ import annotations

import pytest

from repro.core.scheduler import DRPCDSAllocator
from repro.exceptions import SimulationError
from repro.simulation.ondemand import (
    FCFSPolicy,
    MRFPolicy,
    PendingItem,
    RxWPolicy,
    SizeAwareRxWPolicy,
    compare_push_pull,
    simulate_on_demand,
)
from repro.workloads.generator import WorkloadSpec, generate_database


@pytest.fixture(scope="module")
def db():
    return generate_database(
        WorkloadSpec(num_items=40, skewness=1.0, diversity=1.5, seed=3)
    )


class TestPolicies:
    def make_queue(self, now=10.0):
        return {
            # 3 requests, oldest waited 8s, size 10.
            "popular": PendingItem("popular", 10.0, [2.0, 5.0, 9.0]),
            # 1 request, oldest waited 9s, size 10.
            "old": PendingItem("old", 10.0, [1.0]),
            # 2 requests, oldest waited 4s, tiny size.
            "small": PendingItem("small", 0.5, [6.0, 8.0]),
        }

    def test_fcfs_picks_oldest(self):
        assert FCFSPolicy().pick(self.make_queue(), 10.0, 10.0) == "old"

    def test_mrf_picks_biggest_batch(self):
        assert MRFPolicy().pick(self.make_queue(), 10.0, 10.0) == "popular"

    def test_rxw_balances_count_and_wait(self):
        # popular: 3*8=24; old: 1*9=9; small: 2*4=8.
        assert RxWPolicy().pick(self.make_queue(), 10.0, 10.0) == "popular"

    def test_size_aware_prefers_cheap_airtime(self):
        # small: 2*4/(0.05)=160 dominates popular's 24/1=24.
        assert (
            SizeAwareRxWPolicy().pick(self.make_queue(), 10.0, 10.0)
            == "small"
        )

    def test_empty_queue_rejected(self):
        with pytest.raises(SimulationError):
            RxWPolicy().pick({}, 0.0, 10.0)

    def test_tie_break_is_stable(self):
        queue = {
            "b": PendingItem("b", 1.0, [0.0]),
            "a": PendingItem("a", 1.0, [0.0]),
        }
        # Equal priority: max() over sorted ids with equal key keeps the
        # last among sorted -> deterministic either way; just assert
        # determinism.
        first = MRFPolicy().pick(dict(queue), 5.0, 10.0)
        second = MRFPolicy().pick(dict(queue), 5.0, 10.0)
        assert first == second


class TestSimulateOnDemand:
    def test_all_requests_served(self, db):
        report = simulate_on_demand(
            db, num_requests=1000, arrival_rate=2.0, seed=0
        )
        assert report.waiting.count == 1000
        assert report.stretch.count == 1000
        assert report.broadcasts >= 1

    def test_waits_at_least_transmission_time(self, db):
        report = simulate_on_demand(
            db, num_requests=500, arrival_rate=0.1, seed=1
        )
        min_transmission = min(i.size for i in db) / 10.0
        assert report.waiting.minimum >= min_transmission - 1e-9

    def test_stretch_at_least_one(self, db):
        report = simulate_on_demand(
            db, num_requests=500, arrival_rate=1.0, seed=2
        )
        assert report.stretch.minimum >= 1.0 - 1e-9

    def test_reproducible(self, db):
        a = simulate_on_demand(db, num_requests=400, seed=5)
        b = simulate_on_demand(db, num_requests=400, seed=5)
        assert a.waiting.mean == b.waiting.mean

    def test_low_load_means_no_batching(self, db):
        report = simulate_on_demand(
            db, num_requests=500, arrival_rate=0.01, seed=3
        )
        assert report.batched_ratio < 0.05
        assert report.mean_batch_size == pytest.approx(1.0, abs=0.05)

    def test_high_load_batches(self, db):
        report = simulate_on_demand(
            db,
            num_requests=3000,
            arrival_rate=100.0,
            num_channels=2,
            seed=4,
        )
        assert report.batched_ratio > 0.2
        assert report.mean_batch_size > 1.2

    def test_more_channels_cut_waits(self, db):
        slow = simulate_on_demand(
            db, num_channels=1, num_requests=1500, arrival_rate=5.0, seed=6
        )
        fast = simulate_on_demand(
            db, num_channels=4, num_requests=1500, arrival_rate=5.0, seed=6
        )
        assert fast.waiting.mean < slow.waiting.mean

    def test_validation(self, db):
        with pytest.raises(SimulationError):
            simulate_on_demand(db, num_requests=0)
        with pytest.raises(SimulationError):
            simulate_on_demand(db, num_channels=0)
        with pytest.raises(SimulationError):
            simulate_on_demand(db, arrival_rate=0.0)


class TestPushPullComparison:
    def test_crossover_shape(self, db):
        """Pull wins the quiet end; push resists load."""
        allocation = DRPCDSAllocator().allocate(db, 4).allocation
        rows = compare_push_pull(
            db,
            allocation,
            rates=(0.1, 100.0),
            num_channels=4,
            num_requests=2500,
        )
        low_rate, high_rate = rows[0], rows[1]
        # Push wait is load-independent.
        assert low_rate[2] == high_rate[2]
        # Pull beats push when the air is quiet...
        assert low_rate[1] < low_rate[2]
        # ...and degrades as load grows.
        assert high_rate[1] > low_rate[1]

    def test_validation(self, db):
        allocation = DRPCDSAllocator().allocate(db, 4).allocation
        with pytest.raises(SimulationError):
            compare_push_pull(
                db, allocation, rates=(), num_channels=4
            )
        with pytest.raises(SimulationError):
            compare_push_pull(
                db, allocation, rates=(-1.0,), num_channels=4
            )
