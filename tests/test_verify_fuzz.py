"""Tests for the fuzz driver: determinism, shrinking, serialization.

The acceptance-criterion scenario lives here too: with the
``delta-sign`` bug injected, the fuzzer must catch the broken Eq. (4),
shrink the case to at most eight items, and serialize a repro that
replays to the same violation.
"""

from __future__ import annotations

import json

import pytest

from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.exceptions import VerificationError
from repro.verify.fuzz import (
    FAILURE_SCHEMA,
    INJECTABLE_BUGS,
    CaseContext,
    available_checks,
    load_failure,
    replay_failure,
    run_fuzz,
    shrink_case,
)

ORACLE_PAIRS = (
    "oracle.drp-backends",
    "oracle.simulators",
    "oracle.serial-parallel",
    "oracle.warm-cold",
)
METAMORPHIC_RELATIONS = (
    "metamorphic.permutation",
    "metamorphic.size-scaling",
    "metamorphic.frequency-renormalization",
    "metamorphic.monotone-channels",
    "metamorphic.merge-split",
)


class TestRegistry:
    def test_all_families_registered(self):
        names = {spec.name for spec in available_checks()}
        assert set(ORACLE_PAIRS) <= names
        assert set(METAMORPHIC_RELATIONS) <= names
        assert any(name.startswith("invariants.") for name in names)

    def test_unknown_check_rejected(self):
        with pytest.raises(VerificationError, match="unknown check"):
            run_fuzz(seed=0, budget=1, checks=["no-such-check"])

    def test_unknown_bug_rejected(self):
        with pytest.raises(VerificationError, match="unknown injectable"):
            run_fuzz(seed=0, budget=1, inject="no-such-bug")

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(VerificationError, match="budget"):
            run_fuzz(seed=0, budget=0)


class TestCleanFuzz:
    def test_small_budget_is_clean_and_deterministic(self, tmp_path):
        first = run_fuzz(
            seed=11, budget=8, failures_dir=tmp_path / "a"
        )
        second = run_fuzz(
            seed=11, budget=8, failures_dir=tmp_path / "b"
        )
        assert first.clean and second.clean
        assert first.cases == second.cases == 8
        assert first.checks_run == second.checks_run

    def test_check_selection_restricts_execution(self, tmp_path):
        report = run_fuzz(
            seed=1,
            budget=4,
            failures_dir=tmp_path,
            checks=["invariants.prefix-sums", "metamorphic.permutation"],
        )
        assert report.clean
        assert set(report.checks_run) == {
            "invariants.prefix-sums",
            "metamorphic.permutation",
        }

    def test_report_to_dict_shape(self, tmp_path):
        report = run_fuzz(
            seed=2,
            budget=2,
            failures_dir=tmp_path,
            checks=["invariants.wellformed"],
        )
        payload = report.to_dict()
        assert payload["clean"] is True
        assert payload["cases"] == 2
        assert payload["checks_run"] == {"invariants.wellformed": 2}


class TestInjectedBug:
    """The headline acceptance scenario."""

    def test_delta_sign_bug_is_caught_shrunk_and_serialized(self, tmp_path):
        report = run_fuzz(
            seed=0,
            budget=20,
            failures_dir=tmp_path,
            inject="delta-sign",
            checks=["invariants.move-delta"],
        )
        assert not report.clean
        [failure] = report.failures
        assert failure.check == "invariants.move-delta"
        assert failure.num_items <= 8
        assert failure.injected == "delta-sign"
        assert failure.path is not None and failure.path.exists()

        payload = json.loads(failure.path.read_text())
        assert payload["schema"] == FAILURE_SCHEMA
        assert payload["injected"] == "delta-sign"
        assert len(payload["items"]) == failure.num_items
        assert payload["violations"]

        # The serialized repro replays to the same defect...
        assert replay_failure(failure.path)
        # ...and the loader exposes the shrunk case faithfully.
        loaded = load_failure(failure.path)
        assert loaded.check == "invariants.move-delta"
        assert len(loaded.database) == failure.num_items
        assert loaded.num_channels == failure.num_channels

    def test_clean_checks_stay_clean_under_injection(self, tmp_path):
        # The injection only touches the move-delta checker; everything
        # else must keep passing, proving the blast radius is scoped.
        report = run_fuzz(
            seed=0,
            budget=6,
            failures_dir=tmp_path,
            inject="delta-sign",
            checks=["invariants.wellformed", "metamorphic.permutation"],
        )
        assert report.clean


class TestShrinking:
    def test_shrinks_to_minimal_failing_core(self):
        items = [
            DataItem(f"d{i}", frequency=0.1, size=float(i + 1))
            for i in range(12)
        ]

        def predicate(candidate, num_channels):
            # Fails whenever d3 survives — minimal core is one item,
            # but the floor of two items/two channels applies.
            return any(item.item_id == "d3" for item in candidate)

        shrunk, channels = shrink_case(items, 4, predicate)
        assert any(item.item_id == "d3" for item in shrunk)
        assert len(shrunk) == 2
        assert channels == 2

    def test_predicate_exceptions_count_as_not_failing(self):
        items = [
            DataItem(f"d{i}", frequency=0.1, size=1.0) for i in range(6)
        ]

        def predicate(candidate, num_channels):
            if len(candidate) < 4:
                raise VerificationError("boom")
            return True

        shrunk, channels = shrink_case(items, 3, predicate)
        assert len(shrunk) == 4


class TestFailureFiles:
    def test_load_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope/v0"}))
        with pytest.raises(VerificationError, match="schema"):
            load_failure(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(VerificationError, match="cannot read"):
            load_failure(tmp_path / "absent.json")


class TestCaseContext:
    def test_pipeline_results_are_cached(self):
        database = BroadcastDatabase(
            [
                DataItem("a", 0.4, 1.0),
                DataItem("b", 0.3, 2.0),
                DataItem("c", 0.2, 3.0),
                DataItem("d", 0.1, 4.0),
            ]
        )
        context = CaseContext(database, 2, case_seed=5)
        assert context.drp() is context.drp()
        assert context.cds() is context.cds()

    def test_rng_streams_differ_per_check(self):
        database = BroadcastDatabase(
            [DataItem("a", 0.5, 1.0), DataItem("b", 0.5, 2.0)]
        )
        context = CaseContext(database, 2, case_seed=5)
        first = context.rng_for("check-one").integers(0, 2 ** 32)
        second = context.rng_for("check-two").integers(0, 2 ** 32)
        replayed = context.rng_for("check-one").integers(0, 2 ** 32)
        assert first == replayed
        assert first != second


@pytest.mark.slow
class TestAcceptanceBudget:
    """The full ``--seed 0 --budget 200`` acceptance criterion."""

    def test_budget_200_is_clean_and_covers_everything(self, tmp_path):
        report = run_fuzz(seed=0, budget=200, failures_dir=tmp_path)
        assert report.clean, [f.check for f in report.failures]
        assert report.cases == 200
        for name in ORACLE_PAIRS:
            assert report.checks_run.get(name, 0) >= 1, name
        for name in METAMORPHIC_RELATIONS:
            assert report.checks_run.get(name, 0) >= 5, name
        assert "INJECTABLE" not in report.checks_run  # sanity
        assert set(INJECTABLE_BUGS) == {"delta-sign"}
