"""Tests for the experiment harness (config, records, runner, figures)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import (
    ExperimentConfig,
    PAPER_ALGORITHMS,
    TABLE5_CHANNELS,
    TABLE5_ITEMS,
)
from repro.experiments.figures import (
    FIGURE_METRICS,
    FIGURES,
    figure2,
    figure6,
    figure_config,
)
from repro.experiments.records import ExperimentResult, MeasurementRow
from repro.experiments.runner import run_experiment
from repro.exceptions import InvalidDatabaseError


def quick_config(**overrides):
    defaults = dict(
        name="unit-test",
        description="unit test sweep",
        sweep_parameter="num_channels",
        sweep_values=(3.0, 4.0),
        algorithms=("drp", "drp-cds"),
        num_items=25,
        replications=2,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestConfig:
    def test_point_parameters_override_swept_value(self):
        config = quick_config()
        point = config.point_parameters(4.0)
        assert point.num_channels == 4
        assert point.num_items == 25

    def test_float_sweeps_stay_float(self):
        config = quick_config(
            sweep_parameter="diversity", sweep_values=(0.5, 1.0)
        )
        assert config.point_parameters(0.5).diversity == 0.5

    def test_seed_scheme_is_deterministic_and_distinct(self):
        config = quick_config()
        assert config.seed_for(0, 0) != config.seed_for(0, 1)
        assert config.seed_for(0, 0) != config.seed_for(1, 0)
        assert config.seed_for(1, 1) == config.seed_for(1, 1)

    def test_scaled_down(self):
        config = quick_config(replications=10)
        assert config.scaled_down(replications=2).replications == 2

    def test_invalid_sweep_parameter(self):
        with pytest.raises(InvalidDatabaseError):
            quick_config(sweep_parameter="bogus")

    def test_empty_values_rejected(self):
        with pytest.raises(InvalidDatabaseError):
            quick_config(sweep_values=())

    def test_no_algorithms_rejected(self):
        with pytest.raises(InvalidDatabaseError):
            quick_config(algorithms=())

    def test_bad_replications_rejected(self):
        with pytest.raises(InvalidDatabaseError):
            quick_config(replications=0)


class TestRunner:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(quick_config())

    def test_one_row_per_cell(self, result):
        assert len(result.rows) == 2 * 2  # 2 sweep values x 2 algorithms

    def test_rows_carry_all_metrics(self, result):
        for row in result.rows:
            assert row.mean_cost > 0
            assert row.mean_waiting_time > 0
            assert row.mean_elapsed_seconds >= 0
            assert row.replications == 2

    def test_drp_cds_never_worse_than_drp(self, result):
        for value in result.sweep_values():
            drp = result.cell(value, "drp")
            both = result.cell(value, "drp-cds")
            assert both.mean_cost <= drp.mean_cost + 1e-9

    def test_progress_callback_called_per_point(self):
        lines = []
        run_experiment(quick_config(), progress=lines.append)
        assert len(lines) == 2
        assert all("unit-test" in line for line in lines)

    def test_deterministic_across_runs(self):
        a = run_experiment(quick_config())
        b = run_experiment(quick_config())
        assert [r.mean_cost for r in a.rows] == [r.mean_cost for r in b.rows]


class TestRecords:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(quick_config())

    def test_series_extraction(self, result):
        series = result.series("drp", "mean_cost")
        assert [value for value, _ in series] == [3.0, 4.0]

    def test_cell_lookup_missing(self, result):
        with pytest.raises(KeyError):
            result.cell(99.0, "drp")
        with pytest.raises(KeyError):
            result.cell(3.0, "nope")

    def test_to_text_contains_all_algorithms(self, result):
        text = result.to_text()
        for algorithm in ("drp", "drp-cds"):
            assert algorithm in text

    def test_csv_round_trip(self, result, tmp_path):
        path = tmp_path / "rows.csv"
        result.to_csv(path)
        content = path.read_text().splitlines()
        assert content[0].startswith("sweep_value,algorithm")
        assert len(content) == len(result.rows) + 1

    def test_json_round_trip(self, result, tmp_path):
        path = tmp_path / "result.json"
        text = result.to_json(path)
        assert json.loads(path.read_text()) == json.loads(text)
        restored = ExperimentResult.from_json(text)
        assert restored.name == result.name
        assert restored.rows == result.rows


class TestFigureDefinitions:
    def test_all_six_figures_defined(self):
        assert set(FIGURES) == {
            "figure2", "figure3", "figure4", "figure5", "figure6", "figure7",
        }
        assert set(FIGURE_METRICS) == set(FIGURES)

    def test_figure2_sweeps_channels_with_paper_lineup(self):
        config = figure2()
        assert config.sweep_parameter == "num_channels"
        assert config.sweep_values == tuple(float(k) for k in TABLE5_CHANNELS)
        assert config.algorithms == PAPER_ALGORITHMS

    def test_figure6_reports_execution_time(self):
        config = figure6()
        assert FIGURE_METRICS["figure6"] == "mean_elapsed_seconds"
        assert set(config.algorithms) == {"drp-cds", "gopt"}

    def test_figure3_and_7_sweep_items(self):
        for figure_id in ("figure3", "figure7"):
            config = figure_config(figure_id)
            assert config.sweep_parameter == "num_items"
            assert config.sweep_values == tuple(float(n) for n in TABLE5_ITEMS)

    def test_unknown_figure(self):
        with pytest.raises(KeyError, match="unknown figure"):
            figure_config("figure99")

    def test_every_figure_algorithm_is_registered(self):
        import repro.baselines  # noqa: F401
        from repro.core.scheduler import available_allocators

        registry = available_allocators()
        for factory in FIGURES.values():
            for algorithm in factory().algorithms:
                assert algorithm in registry
