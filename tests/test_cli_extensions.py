"""CLI tests for the extension subcommands (adaptive, hetero, index)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_extension_subcommands_exist(self):
        parser = build_parser()
        for command in ("adaptive", "hetero", "index", "gap"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_hetero_bandwidths_parse_as_floats(self):
        args = build_parser().parse_args(
            ["hetero", "--bandwidths", "20", "10", "5"]
        )
        assert args.bandwidths == [20.0, 10.0, 5.0]


class TestAdaptiveCommand:
    def test_prints_epoch_table(self, capsys):
        code = main(
            [
                "adaptive",
                "--items", "30",
                "--channels", "3",
                "--epochs", "2",
                "--requests", "300",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "static wait" in output
        assert "adaptive wait" in output
        # Two epochs -> two data rows.
        data_lines = [
            line for line in output.splitlines()
            if line.strip().startswith(("0", "1"))
        ]
        assert len(data_lines) == 2


class TestHeteroCommand:
    def test_reports_savings(self, capsys):
        code = main(
            [
                "hetero",
                "--items", "30",
                "--bandwidths", "20", "10", "5",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "bandwidth-aware" in output
        assert "saves" in output

    def test_aware_never_loses(self, capsys):
        main(["hetero", "--items", "40", "--bandwidths", "30", "5", "5"])
        output = capsys.readouterr().out
        saved = float(output.rsplit("saves ", 1)[1].split("%")[0])
        assert saved >= -1e-9


class TestIndexCommand:
    def test_prints_tradeoff_table(self, capsys):
        code = main(
            ["index", "--items", "40", "--channels", "3"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "sqrt rule" in output
        assert "E[wait] (s)" in output
        assert "dozing" in output

    def test_custom_entry_size(self, capsys):
        code = main(
            [
                "index",
                "--items", "40",
                "--channels", "3",
                "--entry-size", "1.0",
            ]
        )
        assert code == 0
