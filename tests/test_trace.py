"""Unit tests for repro.workloads.trace."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.workloads.trace import RequestTrace, TraceRecord, synthesize_trace


class TestTraceRecord:
    def test_valid(self):
        record = TraceRecord(1.5, "d1")
        assert record.timestamp == 1.5
        assert record.item_id == "d1"

    def test_bad_item_id(self):
        with pytest.raises(SimulationError):
            TraceRecord(1.0, "")

    @pytest.mark.parametrize("t", [-1.0, float("nan"), float("inf")])
    def test_bad_timestamp(self, t):
        with pytest.raises(SimulationError):
            TraceRecord(t, "d1")


class TestRequestTrace:
    def test_append_and_iterate(self):
        trace = RequestTrace()
        trace.record(0.0, "a")
        trace.record(1.0, "b")
        trace.record(1.0, "a")
        assert len(trace) == 3
        assert [r.item_id for r in trace] == ["a", "b", "a"]
        assert trace[1].item_id == "b"

    def test_constructor_from_records(self):
        records = [TraceRecord(0.0, "a"), TraceRecord(2.0, "b")]
        trace = RequestTrace(records)
        assert len(trace) == 2

    def test_out_of_order_rejected(self):
        trace = RequestTrace()
        trace.record(5.0, "a")
        with pytest.raises(SimulationError, match="out-of-order"):
            trace.record(4.0, "b")

    def test_equal_timestamps_allowed(self):
        trace = RequestTrace()
        trace.record(1.0, "a")
        trace.record(1.0, "b")
        assert len(trace) == 2

    def test_span(self):
        trace = RequestTrace()
        assert trace.span == 0.0
        trace.record(2.0, "a")
        assert trace.span == 0.0
        trace.record(7.5, "b")
        assert trace.span == pytest.approx(5.5)

    def test_window_half_open(self):
        trace = RequestTrace()
        for t, item in [(0.0, "a"), (1.0, "b"), (2.0, "c"), (3.0, "d")]:
            trace.record(t, item)
        window = trace.window(1.0, 3.0)
        assert [r.item_id for r in window] == ["b", "c"]

    def test_window_invalid(self):
        trace = RequestTrace()
        with pytest.raises(SimulationError):
            trace.window(3.0, 1.0)

    def test_counts(self):
        trace = RequestTrace()
        for t, item in [(0.0, "a"), (1.0, "a"), (2.0, "b")]:
            trace.record(t, item)
        assert trace.counts() == {"a": 2, "b": 1}

    def test_item_ids_first_seen_order(self):
        trace = RequestTrace()
        for t, item in [(0.0, "b"), (1.0, "a"), (2.0, "b")]:
            trace.record(t, item)
        assert trace.item_ids() == ["b", "a"]


class TestSynthesizeTrace:
    def test_length_and_ordering(self, medium_db):
        trace = synthesize_trace(medium_db, 500, seed=0)
        assert len(trace) == 500
        times = [r.timestamp for r in trace]
        assert times == sorted(times)

    def test_reproducible(self, medium_db):
        a = synthesize_trace(medium_db, 100, seed=1)
        b = synthesize_trace(medium_db, 100, seed=1)
        assert [r.item_id for r in a] == [r.item_id for r in b]

    def test_follows_profile(self, medium_db):
        trace = synthesize_trace(medium_db, 40000, seed=2)
        counts = trace.counts()
        hottest = medium_db.sorted_by_frequency()[0]
        observed = counts[hottest.item_id] / len(trace)
        assert observed == pytest.approx(hottest.frequency, rel=0.1)

    def test_probability_override(self, tiny_db):
        trace = synthesize_trace(
            tiny_db, 200, seed=0, probabilities=[0, 1, 0, 0]
        )
        assert set(trace.counts()) == {"b"}

    def test_bad_probability_length(self, tiny_db):
        with pytest.raises(SimulationError):
            synthesize_trace(tiny_db, 10, probabilities=[1.0])

    def test_zero_requests(self, tiny_db):
        assert len(synthesize_trace(tiny_db, 0)) == 0

    def test_negative_requests(self, tiny_db):
        with pytest.raises(SimulationError):
            synthesize_trace(tiny_db, -1)
