"""Replay every serialized fuzz failure as a regression test.

``repro verify --fuzz`` shrinks each caught failure into
``verify_failures/<check>-<seed>.json``.  Committing such a file makes
the defect a permanent fixture here:

* a repro recorded against **production** code must replay clean once
  the underlying bug is fixed — and stay clean forever;
* a repro recorded with an **injected** bug (``--inject-bug``) documents
  the harness's detection power and must keep reproducing its
  violations when the same injection is re-applied.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.verify.fuzz import load_failure, replay_failure

FAILURES_DIR = Path(__file__).resolve().parent.parent / "verify_failures"
FAILURE_FILES = (
    sorted(FAILURES_DIR.glob("*.json")) if FAILURES_DIR.is_dir() else []
)


@pytest.mark.parametrize(
    "path", FAILURE_FILES, ids=[path.name for path in FAILURE_FILES]
)
def test_serialized_failure_replays_consistently(path):
    loaded = load_failure(path)
    violations = replay_failure(path)
    if loaded.injected is not None:
        # The injection must still be caught — shrinking kept the case
        # minimal, not the detector blind.
        assert violations, (
            f"{path.name}: injected bug {loaded.injected!r} no longer "
            "reproduces"
        )
        assert all(v.check == loaded.check for v in violations)
    else:
        # A production failure is committed only after its fix; the
        # repro must stay clean.
        assert violations == [], (
            f"{path.name}: previously fixed defect has regressed"
        )


def test_failure_files_carry_replayable_payloads():
    for path in FAILURE_FILES:
        loaded = load_failure(path)
        assert len(loaded.database) >= 2
        assert 2 <= loaded.num_channels <= len(loaded.database)
