"""End-to-end tests for the live broadcast service (ISSUE 10).

Everything here runs under the fake clock from ``tests/fakeclock.py``
— an autouse fixture makes any real ``time.sleep`` raise, so the whole
module is deterministic and wall-clock-free.

The three headline assertions (satellite 3):

1. epoch costs (and allocation provenance) match an offline
   adaptive-loop oracle run on the same epoch batches;
2. a handover never leaves a torn program — the allocation swap is
   observed only at major-cycle boundaries of the outgoing program;
3. the ``serve.*`` cache/warm counters match the ``ServeEpochReport``
   mode fields.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.core.database import BroadcastDatabase
from repro.core.incremental import AllocationCache, IncrementalAllocator
from repro.core.item import DataItem
from repro.exceptions import SimulationError
from repro.service import (
    BroadcastService,
    LiveProgram,
    SocketSource,
    drifting_stream,
    replay_source,
)
from repro.service.serve import _cost_under_profile
from repro.workloads.estimator import profile_l1_error
from repro.workloads.generator import WorkloadSpec, generate_database
from repro.workloads.sketch import CountMinSketch
from repro.workloads.trace import RequestTrace, TraceRecord, save_trace_jsonl

from .fakeclock import FakeClock, forbid_real_sleep

EPOCH_SECONDS = 10.0
CHANNELS = 4
SMOOTHING = 1.0
HALF_LIFE = 2.0 * EPOCH_SECONDS


@pytest.fixture(autouse=True)
def _no_real_sleeps(monkeypatch):
    forbid_real_sleep(monkeypatch)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture
def db() -> BroadcastDatabase:
    return generate_database(WorkloadSpec(num_items=40, seed=3))


@pytest.fixture
def sizes(db):
    return {item.item_id: item.size for item in db.items}


def make_stream(db, *, epochs, requests_per_epoch=250, seed=5):
    return list(
        drifting_stream(
            db,
            epochs=epochs,
            requests_per_epoch=requests_per_epoch,
            epoch_seconds=EPOCH_SECONDS,
            seed=seed,
        )
    )


def make_service(sizes, db, *, sketch, **kwargs):
    kwargs.setdefault("epoch_seconds", EPOCH_SECONDS)
    kwargs.setdefault("smoothing", SMOOTHING)
    kwargs.setdefault("initial_database", db)
    kwargs.setdefault("clock", FakeClock())
    return BroadcastService(sizes, CHANNELS, sketch=sketch, **kwargs)


def offline_oracle(db, sizes, records, *, epochs):
    """The exact-counter offline adaptive loop on the same epoch batches.

    Replicates the service's boundary policy — exact decayed counts,
    smoothed profile over the catalogue, zero-drift reuse, otherwise a
    warm ``IncrementalAllocator`` re-allocation — without any serving,
    handover or clock machinery.  Returns per-epoch
    ``(engine_cost, mode, warm_moves, allocation)`` tuples.
    """
    catalogue = list(sizes)
    counter = CountMinSketch(1, 1, half_life=HALF_LIFE, exact=True)
    engine = IncrementalAllocator(CHANNELS, cache=AllocationCache())
    result = engine.reallocate(db)
    allocation, cost = result.allocation, result.cost
    mode, warm_moves = "cold", result.warm_moves
    believed = {item.item_id: item.frequency for item in db.items}
    rows = []
    start = records[0].timestamp
    boundary = start + EPOCH_SECONDS
    epoch_records = [[] for _ in range(epochs)]
    for record in records:
        epoch_records[min(epochs - 1, int((record.timestamp - start) // EPOCH_SECONDS))].append(record)
    for epoch in range(epochs):
        rows.append((cost, mode, warm_moves, allocation))
        for record in epoch_records[epoch]:
            counter.add(record.item_id, timestamp=record.timestamp)
        if epoch + 1 >= epochs:
            break
        end = boundary + epoch * EPOCH_SECONDS
        estimated = counter.estimate_profile(
            catalogue, smoothing=SMOOTHING, timestamp=end
        )
        if profile_l1_error(believed, estimated) == 0.0:
            mode, warm_moves = "reused", 0
            continue
        believed = estimated
        believed_db = BroadcastDatabase(
            [
                DataItem(item_id, frequency=estimated[item_id], size=sizes[item_id])
                for item_id in catalogue
            ]
        )
        result = engine.reallocate(believed_db)
        allocation, cost = result.allocation, result.cost
        mode, warm_moves = result.mode, result.warm_moves
    return rows


class TestOracleParity:
    def test_exact_mode_epoch_costs_match_offline_oracle(self, db, sizes):
        """Exact-counter service == offline adaptive oracle, per epoch."""
        epochs = 8
        records = make_stream(db, epochs=epochs)
        service = make_service(
            sizes,
            db,
            sketch=CountMinSketch(1, 1, half_life=HALF_LIFE, exact=True),
        )
        reports = service.run(iter(records), max_epochs=epochs)
        oracle = offline_oracle(db, sizes, records, epochs=epochs)
        assert len(reports) == epochs
        for report, (cost, mode, warm_moves, _) in zip(reports, oracle):
            assert report.engine_cost == pytest.approx(cost, rel=1e-12)
            assert report.allocation_mode == mode
            assert report.warm_moves == warm_moves

    def test_sketch_mode_final_epoch_within_regression_guard(self, db, sizes):
        """Acceptance: >= 20 sketch-estimated epochs, final-epoch cost
        within the 1.02x guard of the exact-counter offline oracle."""
        epochs = 22
        records = make_stream(db, epochs=epochs, requests_per_epoch=200)
        service = make_service(
            sizes,
            db,
            sketch=CountMinSketch(512, 4, half_life=HALF_LIFE),
        )
        reports = service.run(iter(records), max_epochs=epochs)
        assert len(reports) == epochs
        oracle = offline_oracle(db, sizes, records, epochs=epochs)
        _, _, _, oracle_allocation = oracle[-1]
        # Judge both final allocations under the oracle's exact belief.
        exact = CountMinSketch(1, 1, half_life=HALF_LIFE, exact=True)
        for record in records:
            exact.add(record.item_id, timestamp=record.timestamp)
        truth = exact.estimate_profile(list(sizes), smoothing=SMOOTHING)
        sketch_cost = _cost_under_profile(service.live.allocation, truth)
        oracle_cost = _cost_under_profile(oracle_allocation, truth)
        assert sketch_cost <= 1.02 * oracle_cost
        # The stream kept the estimator tiny: O(width x depth), not
        # O(requests) — the point of the sketch path.
        assert service.sketch.state_size == 512 * 4
        assert service.total_requests == len(records)


class TestHandoverNeverTears:
    def test_swaps_only_at_cycle_boundaries(self, db, sizes):
        epochs = 12
        records = make_stream(db, epochs=epochs)
        service = make_service(
            sizes,
            db,
            sketch=CountMinSketch(256, 4, half_life=HALF_LIFE),
            record_generations=True,
        )
        service.run(iter(records), max_epochs=epochs)
        handovers = service.live.handovers
        assert handovers, "drifting stream should trigger handovers"
        for handover in handovers:
            # 1. The switch instant is a major-cycle boundary of the
            #    outgoing program.
            multiple = (
                handover.switch_at - handover.old_activated_at
            ) / handover.old_major_cycle
            assert multiple == pytest.approx(round(multiple), abs=1e-6)
            # 2. The handover never preempts the drain window.
            assert handover.switch_at >= handover.requested_at - 1e-9
            assert handover.promoted_at >= handover.switch_at - 1e-9
            # 3. No request before the boundary saw the new program and
            #    no request at/after it saw the old one — never torn.
            for timestamp, generation in service.generation_log:
                if timestamp < handover.switch_at:
                    assert generation <= handover.old_generation
                else:
                    assert generation >= handover.new_generation
        # Generations advance one handover at a time, monotonically.
        generations = [gen for _, gen in service.generation_log]
        assert generations == sorted(generations)
        assert generations[-1] == len(handovers)

    def test_restage_before_switch_replaces_pending(self, db, sizes):
        engine = IncrementalAllocator(CHANNELS)
        allocation = engine.reallocate(db).allocation
        live = LiveProgram(allocation, bandwidth=80.0)
        cycle = live.major_cycle
        first = live.stage(allocation, requested_at=0.3 * cycle)
        assert first == pytest.approx(cycle)
        second = live.stage(allocation, requested_at=0.6 * cycle)
        assert second == pytest.approx(cycle)
        assert live.pending_switch_at == second
        # Drain: a request strictly before the boundary never promotes.
        live.program_for(0.9 * cycle)
        assert live.generation == 0
        live.program_for(1.5 * cycle)
        assert live.generation == 1
        assert len(live.handovers) == 1

    def test_switch_on_exact_boundary_request(self, db):
        engine = IncrementalAllocator(CHANNELS)
        allocation = engine.reallocate(db).allocation
        live = LiveProgram(allocation)
        cycle = live.major_cycle
        live.stage(allocation, requested_at=cycle)  # boundary request
        assert live.pending_switch_at == pytest.approx(cycle)
        live.program_for(cycle)
        assert live.generation == 1


class TestCountersMatchReports:
    def test_serve_counters_match_epoch_report_modes(self, db, sizes):
        obs.configure(metrics=True)
        epochs = 10
        records = make_stream(db, epochs=epochs)
        service = make_service(
            sizes,
            db,
            sketch=CountMinSketch(256, 4, half_life=HALF_LIFE),
        )
        reports = service.run(iter(records), max_epochs=epochs)
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["serve.requests"] == len(records)
        assert counters["serve.epochs"] == len(reports)
        assert counters["serve.reallocations"] == sum(
            1 for report in reports if report.reallocated
        )
        assert counters.get("serve.handovers", 0) == len(
            service.live.handovers
        )
        assert counters.get("serve.cache_hits", 0) == sum(
            1 for report in reports if report.cache_hit
        )
        for mode in {report.allocation_mode for report in reports}:
            assert counters[f"serve.mode{{mode={mode}}}"] == sum(
                1 for report in reports if report.allocation_mode == mode
            )

    def test_zero_drift_stream_reuses_program(self, sizes):
        """Identical epoch batches + no decay + no smoothing => the
        boundary sees zero L1 drift and reuses the program verbatim."""
        catalogue = list(sizes)[:6]
        small_sizes = {item_id: sizes[item_id] for item_id in catalogue}
        # A deliberately non-uniform batch (item i appears i+1 times) so
        # the first boundary drifts away from the uniform bootstrap —
        # later identical batches then show exactly zero drift.
        batch = [
            item_id
            for i, item_id in enumerate(catalogue)
            for _ in range(i + 1)
        ]
        records = []
        for epoch in range(4):
            for k, item_id in enumerate(batch):
                records.append(
                    TraceRecord(
                        timestamp=epoch * EPOCH_SECONDS
                        + (k + 1) * EPOCH_SECONDS / (len(batch) + 1),
                        item_id=item_id,
                    )
                )
        obs.configure(metrics=True)
        service = BroadcastService(
            small_sizes,
            2,
            epoch_seconds=EPOCH_SECONDS,
            sketch=CountMinSketch(256, 4),  # no decay
            smoothing=0.0,
            clock=FakeClock(),
        )
        reports = service.run(iter(records), max_epochs=4)
        assert reports[0].allocation_mode == "cold"
        assert reports[1].allocation_mode in ("warm", "fallback")
        assert [report.allocation_mode for report in reports[2:]] == [
            "reused",
            "reused",
        ]
        assert [report.cache_hit for report in reports] == [
            False,
            False,
            True,
            True,
        ]
        assert service.engine.stats.cache_hits >= 2
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["serve.cache_hits"] == 2
        assert counters["incremental.cache_hits"] >= 2


class TestFakeClockHarness:
    def test_paced_replay_advances_only_the_fake_clock(self, db, sizes):
        clock = FakeClock()
        records = make_stream(db, epochs=3, requests_per_epoch=50)
        service = make_service(
            sizes,
            db,
            sketch=CountMinSketch(128, 4, half_life=HALF_LIFE),
            clock=clock,
            pace=True,
        )
        service.run(iter(records), max_epochs=3)
        # Pacing slept the fake clock up to the last served record's
        # stream offset; real time never elapsed (forbid_real_sleep).
        assert clock.sleeps
        span = records[-1].timestamp - records[0].timestamp
        assert clock.now() <= span + 1e-9
        assert clock.now() > 0.0

    def test_heartbeat_throttle_driven_by_injected_clock(self, db, sizes):
        obs.configure(metrics=True)
        clock = FakeClock()
        records = make_stream(db, epochs=3, requests_per_epoch=50)
        service = make_service(
            sizes,
            db,
            sketch=CountMinSketch(128, 4, half_life=HALF_LIFE),
            clock=clock,
            pace=True,
        )
        service.run(iter(records), max_epochs=3)
        snapshot = obs.get_metrics().snapshot()
        assert snapshot["gauges"]["serve.heartbeat.requests"] == (
            service.total_requests
        )
        # Fake time advanced ~20s; the 0.25s throttle must have opened
        # far more often than the two unthrottled emits.
        assert snapshot["counters"]["serve.heartbeat.beats"] > 2


class TestSourcesAndValidation:
    def test_jsonl_replay_reproduces_in_proc_run(self, db, sizes, tmp_path):
        epochs = 5
        records = make_stream(db, epochs=epochs)
        trace = RequestTrace(records)
        path = save_trace_jsonl(trace, tmp_path / "stream.jsonl")

        def run(source):
            service = make_service(
                sizes,
                db,
                sketch=CountMinSketch(256, 4, half_life=HALF_LIFE),
            )
            return service.run(source, max_epochs=epochs)

        direct = run(iter(records))
        replayed = run(replay_source(path))
        assert len(direct) == len(replayed)
        for a, b in zip(direct, replayed):
            assert a.to_dict() == b.to_dict()

    def test_socket_source_streams_records(self, db, sizes):
        records = make_stream(db, epochs=2, requests_per_epoch=40)
        with SocketSource(timeout=30.0) as source:
            port = source.port

            def feed():
                import socket as socket_module

                with socket_module.create_connection(
                    ("127.0.0.1", port), timeout=30.0
                ) as conn:
                    payload = "".join(
                        json.dumps({"t": record.timestamp, "id": record.item_id})
                        + "\n"
                        for record in records
                    )
                    conn.sendall(payload.encode("utf-8"))

            writer = threading.Thread(target=feed)
            writer.start()
            received = list(source)
            writer.join()
        assert [r.item_id for r in received] == [r.item_id for r in records]
        assert [r.timestamp for r in received] == pytest.approx(
            [r.timestamp for r in records]
        )

    def test_out_of_order_stream_rejected(self, db, sizes):
        service = make_service(
            sizes, db, sketch=CountMinSketch(64, 2, half_life=HALF_LIFE)
        )
        bad = [
            TraceRecord(timestamp=5.0, item_id=list(sizes)[0]),
            TraceRecord(timestamp=4.0, item_id=list(sizes)[0]),
        ]
        with pytest.raises(SimulationError, match="out-of-order"):
            service.run(iter(bad))

    def test_partial_final_epoch_is_closed(self, db, sizes):
        records = make_stream(db, epochs=2, requests_per_epoch=60)
        half = records[: len(records) // 2 + 10]
        service = make_service(
            sizes, db, sketch=CountMinSketch(64, 2, half_life=HALF_LIFE)
        )
        reports = service.run(iter(half))
        assert sum(report.requests for report in reports) == len(half)
        assert reports[-1].requests > 0

    def test_max_epochs_stops_midstream(self, db, sizes):
        records = make_stream(db, epochs=6)
        service = make_service(
            sizes, db, sketch=CountMinSketch(64, 2, half_life=HALF_LIFE)
        )
        reports = service.run(iter(records), max_epochs=2)
        assert len(reports) == 2
        assert service.total_requests < len(records)

    def test_run_twice_accumulates_history(self, db, sizes):
        records = make_stream(db, epochs=4)
        split = len(records) // 2
        service = make_service(
            sizes, db, sketch=CountMinSketch(64, 2, half_life=HALF_LIFE)
        )
        first = service.run(iter(records[:split]))
        second = service.run(iter(records[split:]))
        assert len(service.reports) == len(first) + len(second)
        assert service.total_requests == len(records)
