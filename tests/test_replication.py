"""Tests for cross-channel replication (repro.simulation.replication)."""

from __future__ import annotations

import pytest

from repro.core.scheduler import DRPCDSAllocator
from repro.exceptions import SimulationError
from repro.simulation.replication import (
    ReplicatedProgram,
    replicate_hot_items,
    simulate_replicated_program,
)
from repro.simulation.server import BroadcastProgram


@pytest.fixture(scope="module")
def allocation(request):
    db = request.getfixturevalue("medium_db")
    return DRPCDSAllocator().allocate(db, 4).allocation


@pytest.fixture(scope="module")
def medium_db():
    from repro.workloads.generator import WorkloadSpec, generate_database

    return generate_database(
        WorkloadSpec(num_items=30, skewness=0.8, diversity=1.5, seed=1234)
    )


class TestReplicatedProgram:
    def test_partition_program_is_valid(self, allocation, medium_db):
        program = ReplicatedProgram(medium_db, allocation.channels)
        assert program.num_channels == 4
        for item_id in medium_db.item_ids:
            assert program.replication_degree(item_id) == 1

    def test_replicated_items_have_multiple_carriers(
        self, allocation, medium_db
    ):
        lists = replicate_hot_items(allocation, 3)
        program = ReplicatedProgram(medium_db, lists)
        hot = [i.item_id for i in medium_db.sorted_by_frequency()[:3]]
        for item_id in hot:
            assert program.replication_degree(item_id) == 4
        cold = medium_db.sorted_by_frequency()[-1].item_id
        assert program.replication_degree(cold) == 1

    def test_uncovered_item_rejected(self, allocation, medium_db):
        partial = [list(g) for g in allocation.channels]
        partial[0] = partial[0][:-1]  # drop one item entirely
        with pytest.raises(SimulationError, match="not broadcast"):
            ReplicatedProgram(medium_db, partial)

    def test_foreign_item_rejected(self, allocation, medium_db, tiny_db):
        lists = [list(g) for g in allocation.channels]
        lists[0].append(tiny_db.items[0])
        with pytest.raises(SimulationError, match="not in the database"):
            ReplicatedProgram(medium_db, lists)

    def test_unknown_item_lookup(self, allocation, medium_db):
        program = ReplicatedProgram(medium_db, allocation.channels)
        with pytest.raises(SimulationError, match="no channel"):
            program.carriers_of("zz")

    def test_total_broadcast_size_grows_with_replication(
        self, allocation, medium_db
    ):
        base = ReplicatedProgram(medium_db, allocation.channels)
        replicated = ReplicatedProgram(
            medium_db, replicate_hot_items(allocation, 5)
        )
        assert (
            replicated.total_broadcast_size() > base.total_broadcast_size()
        )


class TestWaitingTimes:
    def test_min_over_carriers(self, allocation, medium_db):
        lists = replicate_hot_items(allocation, 2)
        program = ReplicatedProgram(medium_db, lists)
        hot = medium_db.sorted_by_frequency()[0].item_id
        wait = program.waiting_time(hot, 3.7)
        per_channel = [
            program.channels[index].delivery_completion(hot, 3.7) - 3.7
            for index in program.carriers_of(hot)
        ]
        assert wait == pytest.approx(min(per_channel))

    def test_unreplicated_matches_plain_program(self, allocation, medium_db):
        replicated = ReplicatedProgram(medium_db, allocation.channels)
        plain = BroadcastProgram(allocation)
        for tune_in in (0.0, 2.5, 17.3):
            for item_id in list(medium_db.item_ids)[:5]:
                assert replicated.waiting_time(
                    item_id, tune_in
                ) == pytest.approx(plain.waiting_time(item_id, tune_in))

    def test_replication_helps_the_replicated_item(
        self, allocation, medium_db
    ):
        """Averaged over tune-ins, a replicated item waits less than it
        did on its single home channel *given the same cycles* — and
        since replication lengthens other channels, we check against
        the replicated program's own channels."""
        lists = replicate_hot_items(allocation, 1)
        program = ReplicatedProgram(medium_db, lists)
        hot = medium_db.sorted_by_frequency()[0].item_id
        home = allocation.channel_of(hot)
        samples = [k * 0.731 for k in range(300)]
        replicated_avg = sum(
            program.waiting_time(hot, t) for t in samples
        ) / len(samples)
        home_only_avg = sum(
            program.channels[home].delivery_completion(hot, t) - t
            for t in samples
        ) / len(samples)
        assert replicated_avg <= home_only_avg + 1e-9


class TestReplicateHotItems:
    def test_zero_is_identity(self, allocation):
        lists = replicate_hot_items(allocation, 0)
        assert [
            [i.item_id for i in group] for group in lists
        ] == allocation.as_id_lists()

    def test_negative_rejected(self, allocation):
        with pytest.raises(SimulationError):
            replicate_hot_items(allocation, -1)

    def test_no_duplicates_within_channel(self, allocation, medium_db):
        lists = replicate_hot_items(allocation, 4)
        for group in lists:
            ids = [i.item_id for i in group]
            assert len(ids) == len(set(ids))


class TestSimulation:
    def test_summary_shape(self, allocation, medium_db):
        program = ReplicatedProgram(
            medium_db, replicate_hot_items(allocation, 2)
        )
        summary = simulate_replicated_program(
            program, num_requests=2000, seed=0
        )
        assert summary.count == 2000
        assert summary.mean > 0

    def test_reproducible(self, allocation, medium_db):
        program = ReplicatedProgram(medium_db, allocation.channels)
        a = simulate_replicated_program(program, num_requests=500, seed=3)
        b = simulate_replicated_program(program, num_requests=500, seed=3)
        assert a.mean == b.mean

    def test_unreplicated_matches_analytical_model(
        self, allocation, medium_db
    ):
        from repro.core.cost import average_waiting_time

        program = ReplicatedProgram(medium_db, allocation.channels)
        summary = simulate_replicated_program(
            program, num_requests=30000, seed=1
        )
        analytical = average_waiting_time(allocation)
        assert summary.mean == pytest.approx(analytical, rel=0.03)

    def test_replication_rescues_naive_allocations(self):
        """Replicating hot items clearly helps a *flat* program, whose
        hot items are stuck in long mixed cycles."""
        from repro.baselines.flat import RoundRobinAllocator
        from repro.workloads.generator import WorkloadSpec, generate_database

        db = generate_database(
            WorkloadSpec(num_items=40, skewness=1.6, diversity=1.0, seed=9)
        )
        allocation = RoundRobinAllocator().allocate(db, 5).allocation
        base = simulate_replicated_program(
            ReplicatedProgram(db, allocation.channels),
            num_requests=20000,
            seed=2,
        ).mean
        replicated = simulate_replicated_program(
            ReplicatedProgram(db, replicate_hot_items(allocation, 3)),
            num_requests=20000,
            seed=2,
        ).mean
        assert replicated < base

    def test_replication_cannot_improve_drp_cds(self):
        """A frequency-aware allocation subsumes replication's benefit:
        DRP-CDS already parks hot items on short dedicated cycles, so
        blanket replicas only bloat the other channels.  (Measured
        finding, documented in docs/extensions.md.)"""
        from repro.workloads.generator import WorkloadSpec, generate_database

        db = generate_database(
            WorkloadSpec(num_items=40, skewness=1.6, diversity=1.0, seed=9)
        )
        allocation = DRPCDSAllocator().allocate(db, 5).allocation
        base = simulate_replicated_program(
            ReplicatedProgram(db, allocation.channels),
            num_requests=20000,
            seed=2,
        ).mean
        replicated = simulate_replicated_program(
            ReplicatedProgram(db, replicate_hot_items(allocation, 3)),
            num_requests=20000,
            seed=2,
        ).mean
        assert replicated > base

    def test_validation(self, allocation, medium_db):
        program = ReplicatedProgram(medium_db, allocation.channels)
        with pytest.raises(SimulationError):
            simulate_replicated_program(program, num_requests=0)
        with pytest.raises(SimulationError):
            simulate_replicated_program(program, arrival_rate=0.0)
        with pytest.raises(SimulationError):
            simulate_replicated_program(
                program, request_probabilities=[1.0]
            )
