"""Unit tests for repro.core.scheduler (Allocator interface, registry)."""

from __future__ import annotations

import pytest

from repro.core.allocation import ChannelAllocation
from repro.core.cost import allocation_cost, average_waiting_time
from repro.core.database import BroadcastDatabase
from repro.core.scheduler import (
    AllocationOutcome,
    Allocator,
    CDSOnlyAllocator,
    DRPAllocator,
    DRPCDSAllocator,
    available_allocators,
    make_allocator,
    register_allocator,
)


class TestDRPAllocator:
    def test_outcome_fields(self, medium_db):
        outcome = DRPAllocator().allocate(medium_db, 5)
        assert isinstance(outcome, AllocationOutcome)
        assert outcome.algorithm == "drp"
        assert outcome.cost == pytest.approx(
            allocation_cost(outcome.allocation)
        )
        assert outcome.elapsed_seconds >= 0.0
        assert outcome.metadata["drp_iterations"] == 4

    def test_waiting_time_helper(self, medium_db):
        outcome = DRPAllocator().allocate(medium_db, 5)
        assert outcome.waiting_time(bandwidth=10.0) == pytest.approx(
            average_waiting_time(outcome.allocation, bandwidth=10.0)
        )


class TestDRPCDSAllocator:
    def test_never_worse_than_drp_alone(self, medium_db):
        drp = DRPAllocator().allocate(medium_db, 6)
        both = DRPCDSAllocator().allocate(medium_db, 6)
        assert both.cost <= drp.cost + 1e-9

    def test_metadata_records_both_stages(self, medium_db):
        outcome = DRPCDSAllocator().allocate(medium_db, 6)
        assert "drp_cost" in outcome.metadata
        assert "cds_moves" in outcome.metadata
        assert outcome.metadata["cds_converged"] is True
        assert outcome.metadata["drp_cost"] >= outcome.cost - 1e-9

    def test_iteration_cap_propagates(self, medium_db):
        outcome = DRPCDSAllocator(max_cds_iterations=0).allocate(medium_db, 6)
        assert outcome.metadata["cds_moves"] == 0


class TestCDSOnlyAllocator:
    def test_produces_valid_local_optimum(self, medium_db):
        outcome = CDSOnlyAllocator().allocate(medium_db, 5)
        assert outcome.allocation.num_channels == 5
        assert outcome.metadata["cds_converged"] is True

    def test_metadata_has_no_drp_fields(self, medium_db):
        outcome = CDSOnlyAllocator().allocate(medium_db, 5)
        assert "drp_cost" not in outcome.metadata


class TestMetadataIsolation:
    def test_metadata_does_not_leak_between_runs(self, medium_db, tiny_db):
        allocator = DRPCDSAllocator()
        first = allocator.allocate(medium_db, 6)
        second = allocator.allocate(tiny_db, 2)
        assert first.metadata is not second.metadata
        assert second.metadata["drp_iterations"] == 1


class TestRegistry:
    def test_core_algorithms_registered(self):
        registry = available_allocators()
        for name in ("drp", "drp-cds", "cds-only"):
            assert name in registry

    def test_baselines_registered_after_import(self):
        import repro.baselines  # noqa: F401

        registry = available_allocators()
        for name in ("vfk", "gopt", "round-robin", "brute-force"):
            assert name in registry

    def test_make_allocator_instantiates(self):
        allocator = make_allocator("drp")
        assert isinstance(allocator, DRPAllocator)

    def test_make_allocator_unknown_name(self):
        with pytest.raises(KeyError, match="unknown allocator"):
            make_allocator("definitely-not-registered")

    def test_register_custom_allocator(self, tiny_db):
        class EverythingOnChannelZero(Allocator):
            name = "test-single"

            def _allocate(self, database, num_channels):
                groups = [[] for _ in range(num_channels)]
                for item in database.items:
                    groups[0].append(item)
                return ChannelAllocation(
                    database, groups, allow_empty_channels=True
                )

        register_allocator("test-single", EverythingOnChannelZero)
        try:
            outcome = make_allocator("test-single").allocate(tiny_db, 1)
            assert outcome.algorithm == "test-single"
        finally:
            # Leave the global registry as we found it.
            available_allocators().pop("test-single", None)

    def test_available_allocators_returns_copy(self):
        snapshot = available_allocators()
        snapshot["bogus-entry"] = DRPAllocator
        assert "bogus-entry" not in available_allocators()
