"""Unit tests for repro.workloads.estimator."""

from __future__ import annotations

import pytest

from repro.core.item import DataItem
from repro.exceptions import SimulationError
from repro.workloads.estimator import (
    CountEstimator,
    DecayEstimator,
    estimate_database,
    profile_l1_error,
)
from repro.workloads.trace import RequestTrace, synthesize_trace


def make_trace(pairs):
    trace = RequestTrace()
    for t, item in pairs:
        trace.record(t, item)
    return trace


class TestCountEstimator:
    def test_unsmoothed_relative_counts(self):
        trace = make_trace([(0, "a"), (1, "a"), (2, "b"), (3, "c")])
        estimate = CountEstimator(smoothing=0.0).estimate(
            trace, ["a", "b", "c"]
        )
        assert estimate == pytest.approx({"a": 0.5, "b": 0.25, "c": 0.25})

    def test_smoothing_gives_unseen_items_mass(self):
        trace = make_trace([(0, "a")])
        estimate = CountEstimator(smoothing=1.0).estimate(trace, ["a", "b"])
        assert estimate["b"] > 0
        assert estimate["a"] > estimate["b"]
        assert sum(estimate.values()) == pytest.approx(1.0)

    def test_empty_trace_with_smoothing_is_uniform(self):
        estimate = CountEstimator().estimate(RequestTrace(), ["a", "b"])
        assert estimate == pytest.approx({"a": 0.5, "b": 0.5})

    def test_empty_trace_without_smoothing_rejected(self):
        with pytest.raises(SimulationError):
            CountEstimator(smoothing=0.0).estimate(RequestTrace(), ["a"])

    def test_foreign_items_rejected(self):
        trace = make_trace([(0, "zz")])
        with pytest.raises(SimulationError, match="outside the catalogue"):
            CountEstimator().estimate(trace, ["a"])

    def test_negative_smoothing_rejected(self):
        with pytest.raises(SimulationError):
            CountEstimator(smoothing=-1.0)

    def test_duplicate_catalogue_rejected(self):
        with pytest.raises(SimulationError, match="duplicate"):
            CountEstimator().estimate(RequestTrace(), ["a", "a"])

    def test_recovers_true_profile_from_large_trace(self, medium_db):
        trace = synthesize_trace(medium_db, 60000, seed=0)
        estimate = CountEstimator(smoothing=0.5).estimate(
            trace, list(medium_db.item_ids)
        )
        truth = {item.item_id: item.frequency for item in medium_db}
        assert profile_l1_error(estimate, truth) < 0.05


class TestDecayEstimator:
    def test_recent_requests_dominate(self):
        # Item "old" was popular long ago; "new" recently.
        trace = make_trace(
            [(0, "old"), (1, "old"), (2, "old"), (100, "new"), (101, "new")]
        )
        estimate = DecayEstimator(half_life=5.0, smoothing=0.0).estimate(
            trace, ["old", "new"]
        )
        assert estimate["new"] > 0.9

    def test_long_half_life_approaches_plain_counts(self):
        trace = make_trace([(0, "a"), (1, "a"), (2, "b")])
        decayed = DecayEstimator(half_life=1e9, smoothing=0.0).estimate(
            trace, ["a", "b"]
        )
        plain = CountEstimator(smoothing=0.0).estimate(trace, ["a", "b"])
        assert decayed["a"] == pytest.approx(plain["a"], rel=1e-6)

    def test_normalised(self):
        trace = make_trace([(0, "a"), (10, "b"), (20, "a")])
        estimate = DecayEstimator(half_life=7.0).estimate(
            trace, ["a", "b", "c"]
        )
        assert sum(estimate.values()) == pytest.approx(1.0)

    def test_empty_trace_with_smoothing_is_uniform(self):
        estimate = DecayEstimator(half_life=1.0).estimate(
            RequestTrace(), ["a", "b"]
        )
        assert estimate == pytest.approx({"a": 0.5, "b": 0.5})

    @pytest.mark.parametrize("half_life", [0.0, -1.0, float("inf")])
    def test_bad_half_life(self, half_life):
        with pytest.raises(SimulationError):
            DecayEstimator(half_life=half_life)

    def test_foreign_items_rejected(self):
        trace = make_trace([(0, "zz")])
        with pytest.raises(SimulationError, match="outside"):
            DecayEstimator(half_life=1.0).estimate(trace, ["a"])


class TestEstimateDatabase:
    def test_builds_normalised_database(self, medium_db):
        trace = synthesize_trace(medium_db, 5000, seed=1)
        sizes = {item.item_id: item.size for item in medium_db}
        estimated = estimate_database(trace, sizes)
        assert len(estimated) == len(medium_db)
        assert estimated.is_normalized
        for item in estimated:
            assert item.size == sizes[item.item_id]

    def test_custom_estimator(self, medium_db):
        trace = synthesize_trace(medium_db, 2000, seed=1)
        sizes = {item.item_id: item.size for item in medium_db}
        estimated = estimate_database(
            trace, sizes, estimator=DecayEstimator(half_life=100.0)
        )
        assert estimated.is_normalized

    def test_empty_catalogue_rejected(self):
        with pytest.raises(SimulationError):
            estimate_database(RequestTrace(), {})

    def test_allocation_quality_from_estimated_profile(self, medium_db):
        """An allocation built from a large trace is nearly as good as
        one built from the truth — the closed-loop sanity check."""
        from repro.core.cost import allocation_cost
        from repro.core.scheduler import DRPCDSAllocator

        trace = synthesize_trace(medium_db, 50000, seed=3)
        sizes = {item.item_id: item.size for item in medium_db}
        estimated = estimate_database(trace, sizes)
        allocator = DRPCDSAllocator()
        from_truth = allocator.allocate(medium_db, 5).cost
        # Evaluate the estimated-profile allocation under the TRUE
        # frequencies.
        allocation = allocator.allocate(estimated, 5).allocation
        groups = [
            [medium_db[item.item_id] for item in group]
            for group in allocation.channels
        ]
        from repro.core.allocation import ChannelAllocation

        under_truth = allocation_cost(
            ChannelAllocation(medium_db, groups)
        )
        assert under_truth <= from_truth * 1.05


class TestProfileL1Error:
    def test_zero_for_identical(self):
        profile = {"a": 0.3, "b": 0.7}
        assert profile_l1_error(profile, dict(profile)) == 0.0

    def test_known_distance(self):
        assert profile_l1_error(
            {"a": 1.0, "b": 0.0}, {"a": 0.0, "b": 1.0}
        ) == pytest.approx(2.0)

    def test_mismatched_keys_rejected(self):
        with pytest.raises(SimulationError):
            profile_l1_error({"a": 1.0}, {"b": 1.0})

    def test_mismatch_error_names_the_offending_items(self):
        """The error identifies which ids differ — debuggability for
        catalogue/estimate drift in long-running serve loops."""
        with pytest.raises(
            SimulationError, match=r"missing from estimate: \['b'\]"
        ):
            profile_l1_error({"a": 1.0, "c": 0.0}, {"a": 1.0, "b": 0.0})
        with pytest.raises(SimulationError, match=r"not in truth: \['c'\]"):
            profile_l1_error({"a": 1.0, "c": 0.0}, {"a": 1.0, "b": 0.0})


class TestZeroFrequencyEdgeCases:
    """Items never observed in the stream (ISSUE 10 satellite 4).

    With ``smoothing = 0`` an unseen catalogue item estimates to
    frequency 0, which the analytical model rejects — at item
    construction (``InvalidItemError``) and again at cost evaluation
    (``InvalidAllocationError`` for a zero-frequency channel).
    ``estimate_database`` now fails fast with an actionable message;
    any ``smoothing > 0`` floors every item at a positive frequency.
    """

    def test_unsmoothed_unseen_item_estimates_to_exact_zero(self):
        trace = make_trace([(0, "a"), (1, "a")])
        estimate = CountEstimator(smoothing=0.0).estimate(trace, ["a", "b"])
        assert estimate["b"] == 0.0
        decayed = DecayEstimator(half_life=5.0, smoothing=0.0).estimate(
            trace, ["a", "b"]
        )
        assert decayed["b"] == 0.0

    def test_estimate_database_fails_fast_with_guidance(self):
        trace = make_trace([(0, "a"), (1, "a"), (2, "b")])
        sizes = {"a": 1.0, "b": 2.0, "c": 3.0}
        with pytest.raises(SimulationError, match="smoothing > 0"):
            estimate_database(
                trace, sizes, estimator=CountEstimator(smoothing=0.0)
            )

    def test_error_names_the_unobserved_items(self):
        trace = make_trace([(0, "a")])
        sizes = {"a": 1.0, "b": 2.0, "c": 3.0}
        with pytest.raises(SimulationError, match=r"\['b', 'c'\]"):
            estimate_database(
                trace, sizes, estimator=CountEstimator(smoothing=0.0)
            )

    def test_zero_frequency_item_rejected_at_construction(self):
        from repro.exceptions import InvalidItemError

        with pytest.raises(InvalidItemError):
            DataItem("cold", frequency=0.0, size=1.0)

    def test_zero_frequency_group_rejected_on_allocation_path(self):
        """Even if a zero slipped past item validation (e.g. a foreign
        stand-in object), the cost model refuses a channel nobody ever
        tunes into."""
        from types import SimpleNamespace

        from repro.core.cost import channel_waiting_time
        from repro.exceptions import InvalidAllocationError

        phantom = SimpleNamespace(
            item_id="cold", frequency=0.0, size=1.0, weight=0.0
        )
        with pytest.raises(InvalidAllocationError, match="no client"):
            channel_waiting_time([phantom])

    def test_smoothing_floor_keeps_unseen_items_allocatable(self):
        trace = make_trace([(0, "a"), (1, "a"), (2, "b")])
        sizes = {"a": 1.0, "b": 2.0, "c": 3.0}
        for smoothing in (1e-9, 0.5, 1.0):
            estimated = estimate_database(
                trace, sizes, estimator=CountEstimator(smoothing=smoothing)
            )
            assert min(item.frequency for item in estimated) > 0.0
            assert estimated.is_normalized

    def test_sketch_profile_matches_the_same_contract(self):
        """The streaming path makes the identical smoothing trade."""
        from repro.workloads.sketch import CountMinSketch

        sketch = CountMinSketch(1024, 4)
        sketch.add("a")
        sketch.add("a")
        profile = sketch.estimate_profile(["a", "b"], smoothing=0.0)
        assert profile["b"] == 0.0  # same zero-frequency hazard
        floored = sketch.estimate_profile(["a", "b"], smoothing=1.0)
        assert floored["b"] > 0.0
        assert sum(floored.values()) == pytest.approx(1.0)
