"""Sampling profiler smoke tests on a synthetic workload.

The profiler is statistical, so assertions are structural: a busy loop
run under the profiler must yield samples whose folded stacks contain
the busy function, the export format must parse, and span attribution
must follow the tracer's active span.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.obs.profiler import SamplingProfiler, _frame_label
from repro.obs.tracing import Tracer


@pytest.fixture(autouse=True)
def _reset_obs():
    obs.reset()
    yield
    obs.reset()


def _busy_loop_for_profiler(seconds: float) -> int:
    total = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestSamplingProfiler:
    def test_collects_samples_from_busy_loop(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            _busy_loop_for_profiler(0.2)
        assert profiler.samples > 10
        folded = profiler.render_folded()
        assert "_busy_loop_for_profiler" in folded
        # Every folded line is "stack count" with count summing to the
        # sample total.
        counts = [int(line.rsplit(" ", 1)[1]) for line in folded.splitlines()]
        assert sum(counts) == profiler.samples

    def test_export_folded_header_and_body(self, tmp_path):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            _busy_loop_for_profiler(0.1)
        path = tmp_path / "profile.txt"
        written = profiler.export_folded(str(path))
        assert written == profiler.samples
        lines = path.read_text().splitlines()
        assert lines[0].startswith("# repro sampling profile:")
        body = [line for line in lines if not line.startswith("#")]
        assert body and all(" " in line for line in body)

    def test_span_attribution(self):
        tracer = Tracer()
        profiler = SamplingProfiler(interval=0.001, tracer=tracer)
        with profiler:
            with tracer.span("cds.refine"):
                _busy_loop_for_profiler(0.15)
        assert profiler.span_samples.get("cds.refine", 0) > 0

    def test_no_span_bucket_without_tracer(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            _busy_loop_for_profiler(0.05)
        assert set(profiler.span_samples) <= {"<no-span>"}

    def test_obs_lifecycle(self, tmp_path):
        obs.configure(metrics=True)
        profiler = obs.start_profiler(interval=0.001)
        assert obs.get_profiler() is profiler
        assert obs.start_profiler() is profiler  # idempotent
        _busy_loop_for_profiler(0.05)
        stopped = obs.stop_live()
        assert stopped["profiler"] is profiler
        assert obs.get_profiler() is None
        path = tmp_path / "p.txt"
        profiler.export_folded(str(path))  # samples survive stop_live
        assert path.read_text()


class TestFrameLabel:
    def test_label_format(self):
        frame = next(iter(__import__("sys")._current_frames().values()))
        label = _frame_label(frame)
        assert " (" in label and label.endswith(")")
        assert ":" in label.rsplit("(", 1)[1]
