"""Unit tests for the GOPT genetic algorithm (repro.baselines.gopt)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.gopt import (
    GAParameters,
    GOPTAllocator,
    _population_costs,
    _repair,
    _tournament,
)
from repro.core.cost import allocation_cost
from repro.core.scheduler import DRPCDSAllocator
from repro.exceptions import InfeasibleProblemError


def quick_params(**overrides):
    defaults = dict(
        population_size=40,
        generations=60,
        stagnation_limit=None,
    )
    defaults.update(overrides)
    return GAParameters(**defaults)


class TestParameters:
    def test_resolved_population_scales_with_n(self):
        params = GAParameters()
        assert params.resolved_population(10) == 60
        assert params.resolved_population(100) == 200

    def test_resolved_generations_scales_with_n(self):
        params = GAParameters()
        assert params.resolved_generations(100) == 350

    def test_explicit_values_win(self):
        params = GAParameters(population_size=7, generations=9)
        assert params.resolved_population(1000) == 7
        assert params.resolved_generations(1000) == 9


class TestGOPTAllocator:
    def test_valid_partition(self, medium_db):
        outcome = GOPTAllocator(quick_params()).allocate(medium_db, 5)
        ids = sorted(
            i for group in outcome.allocation.as_id_lists() for i in group
        )
        assert ids == sorted(medium_db.item_ids)
        assert all(s.count >= 1 for s in outcome.allocation.channel_stats)

    def test_deterministic_for_fixed_seed(self, medium_db):
        a = GOPTAllocator(quick_params(), seed=5).allocate(medium_db, 5)
        b = GOPTAllocator(quick_params(), seed=5).allocate(medium_db, 5)
        assert a.allocation.as_id_lists() == b.allocation.as_id_lists()

    def test_never_worse_than_drp_cds_when_seeded(self, medium_db):
        gopt = GOPTAllocator(quick_params()).allocate(medium_db, 6)
        drpcds = DRPCDSAllocator().allocate(medium_db, 6)
        assert gopt.cost <= drpcds.cost + 1e-9

    def test_unseeded_still_valid(self, medium_db):
        outcome = GOPTAllocator(
            quick_params(), seed_with_heuristics=False
        ).allocate(medium_db, 5)
        assert outcome.cost == pytest.approx(
            allocation_cost(outcome.allocation)
        )

    def test_finds_exact_optimum_on_small_instance(self, tiny_db):
        from repro.baselines.exact import brute_force_optimal

        _, optimal = brute_force_optimal(tiny_db, 2)
        outcome = GOPTAllocator(quick_params()).allocate(tiny_db, 2)
        assert outcome.cost == pytest.approx(optimal)

    def test_metadata(self, medium_db):
        outcome = GOPTAllocator(quick_params()).allocate(medium_db, 5)
        assert outcome.metadata["generations"] == 60
        assert outcome.metadata["population_size"] == 40
        assert outcome.metadata["ga_best_cost"] >= outcome.cost - 1e-9

    def test_stagnation_stops_early(self, medium_db):
        outcome = GOPTAllocator(
            quick_params(generations=500, stagnation_limit=5)
        ).allocate(medium_db, 5)
        assert outcome.metadata["generations"] < 500

    def test_polish_disabled_keeps_ga_result(self, medium_db):
        outcome = GOPTAllocator(
            quick_params(), polish=False
        ).allocate(medium_db, 5)
        assert outcome.metadata["polish_moves"] == 0
        assert outcome.cost == pytest.approx(outcome.metadata["ga_best_cost"])

    def test_infeasible_rejected(self, tiny_db):
        with pytest.raises(InfeasibleProblemError):
            GOPTAllocator(quick_params()).allocate(tiny_db, 5)


class TestGAPrimitives:
    def test_population_costs_match_scalar(self, tiny_db):
        frequencies = np.array([i.frequency for i in tiny_db.items])
        sizes = np.array([i.size for i in tiny_db.items])
        population = np.array([[0, 0, 1, 1], [0, 1, 0, 1]])
        costs = _population_costs(population, frequencies, sizes, 2)
        # Row 0: {a,b} and {c,d}
        expected0 = (0.7 * 3.0) + (0.3 * 7.0)
        # Row 1: {a,c} and {b,d}
        expected1 = (0.6 * 4.0) + (0.4 * 6.0)
        assert costs[0] == pytest.approx(expected0)
        assert costs[1] == pytest.approx(expected1)

    def test_repair_fills_empty_channels(self):
        rng = np.random.default_rng(0)
        population = np.zeros((3, 6), dtype=np.int64)  # channel 1 empty
        _repair(population, 2, rng)
        for row in population:
            assert set(row.tolist()) == {0, 1}

    def test_repair_noop_for_feasible(self):
        rng = np.random.default_rng(0)
        population = np.array([[0, 1, 0, 1]])
        before = population.copy()
        _repair(population, 2, rng)
        assert (population == before).all()

    def test_tournament_prefers_lower_cost(self):
        rng = np.random.default_rng(0)
        costs = np.array([10.0, 1.0, 5.0])
        winners = _tournament(
            costs, tournament_size=3, num_parents=3000, rng=rng
        )
        # Entrants are drawn with replacement: the best individual wins
        # whenever it is sampled at least once, P = 1 - (2/3)^3 ≈ 0.70.
        fractions = np.bincount(winners, minlength=3) / len(winners)
        assert fractions[1] == pytest.approx(1 - (2 / 3) ** 3, abs=0.05)
        assert fractions[1] > fractions[2] > fractions[0]
