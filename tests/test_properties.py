"""Property-based tests (hypothesis) on the core invariants.

Strategies generate arbitrary valid broadcast databases; properties
assert the paper's structural claims hold for *all* of them, not just
the fixtures:

* every algorithm returns an exact partition into K non-empty groups;
* the Eq.-(4) move delta always equals the recomputed cost difference;
* CDS never increases cost and always lands on a move-stable point;
* DRP's cost is bounded below by the contiguous DP and above by the
  single-channel cost;
* the analytical identities tie waiting time, cost and the fixed
  download term together for any allocation.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.allocation import ChannelAllocation
from repro.core.cds import cds_refine
from repro.core.cost import (
    allocation_cost,
    average_waiting_time,
    group_cost,
    move_delta,
    waiting_time_from_cost,
)
from repro.core.database import BroadcastDatabase
from repro.core.drp import drp_allocate
from repro.core.item import DataItem
from repro.core.partition import best_split, contiguous_optimal
from repro.analysis.theory import cost_lower_bound

_positive = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)


@st.composite
def databases(draw, min_items=2, max_items=24):
    """A normalised broadcast database with random frequencies/sizes."""
    n = draw(st.integers(min_value=min_items, max_value=max_items))
    raw_freqs = draw(
        st.lists(_positive, min_size=n, max_size=n)
    )
    sizes = draw(st.lists(_positive, min_size=n, max_size=n))
    total = math.fsum(raw_freqs)
    items = [
        DataItem(f"d{i}", frequency=f / total, size=z)
        for i, (f, z) in enumerate(zip(raw_freqs, sizes))
    ]
    return BroadcastDatabase(items)


@st.composite
def databases_with_k(draw, min_items=2, max_items=24):
    db = draw(databases(min_items=min_items, max_items=max_items))
    k = draw(st.integers(min_value=1, max_value=len(db)))
    return db, k


@st.composite
def allocations(draw, max_items=16):
    """A random valid allocation (via assignment vector + repair)."""
    db, k = draw(databases_with_k(min_items=2, max_items=max_items))
    n = len(db)
    assignment = [
        draw(st.integers(min_value=0, max_value=k - 1)) for _ in range(n)
    ]
    # Repair: force channel c to own item c so no channel is empty.
    for channel in range(k):
        assignment[channel] = channel
    return ChannelAllocation.from_assignment_vector(db, assignment, k)


common_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestPartitionProperties:
    @common_settings
    @given(databases_with_k())
    def test_drp_is_exact_partition(self, db_k):
        db, k = db_k
        result = drp_allocate(db, k)
        ids = sorted(
            item.item_id
            for group in result.allocation.channels
            for item in group
        )
        assert ids == sorted(db.item_ids)
        assert result.allocation.num_channels == k
        assert all(stat.count >= 1 for stat in result.allocation.channel_stats)

    @common_settings
    @given(databases_with_k())
    def test_drp_cost_sandwiched(self, db_k):
        db, k = db_k
        result = drp_allocate(db, k)
        dp_cost = contiguous_optimal(db.sorted_by_benefit_ratio(), k)[1]
        single = db.total_frequency * db.total_size
        assert dp_cost <= result.cost + 1e-7 * max(1.0, abs(result.cost))
        assert result.cost <= single + 1e-7 * max(1.0, single)

    @common_settings
    @given(databases(min_items=2))
    def test_best_split_never_worse_than_any_split(self, db):
        items = db.sorted_by_benefit_ratio()
        _, best_cost = best_split(items)
        for p in range(1, len(items)):
            split_total = group_cost(items[:p]) + group_cost(items[p:])
            assert best_cost <= split_total + 1e-9 * max(1.0, split_total)

    @common_settings
    @given(databases_with_k())
    def test_lower_bound_holds_for_drp(self, db_k):
        db, k = db_k
        result = drp_allocate(db, k)
        bound = cost_lower_bound(db, k)
        assert bound <= result.cost + 1e-7 * max(1.0, result.cost)


class TestMoveDeltaProperties:
    @common_settings
    @given(allocations())
    def test_delta_matches_recomputation_for_all_moves(self, allocation):
        stats = allocation.channel_stats
        before = allocation_cost(allocation)
        groups = [list(group) for group in allocation.channels]
        for origin in range(allocation.num_channels):
            if len(groups[origin]) < 2:
                continue
            item = groups[origin][0]
            for dest in range(allocation.num_channels):
                if dest == origin:
                    continue
                predicted = move_delta(
                    item,
                    origin_frequency=stats[origin].frequency,
                    origin_size=stats[origin].size,
                    dest_frequency=stats[dest].frequency,
                    dest_size=stats[dest].size,
                )
                moved = [list(g) for g in groups]
                moved[origin] = moved[origin][1:]
                moved[dest] = moved[dest] + [item]
                after = allocation_cost(
                    allocation.replace_channels(moved)
                )
                assert predicted == (
                    __import__("pytest").approx(
                        before - after, rel=1e-6, abs=1e-9
                    )
                )


class TestCDSProperties:
    @common_settings
    @given(allocations())
    def test_cds_monotone_and_stable(self, allocation):
        result = cds_refine(allocation)
        assert result.cost <= result.initial_cost + 1e-9
        # Stability: refining again performs no moves.
        again = cds_refine(result.allocation)
        assert again.iterations == 0

    @common_settings
    @given(allocations())
    def test_cds_preserves_partition(self, allocation):
        result = cds_refine(allocation)
        ids = sorted(
            item.item_id
            for group in result.allocation.channels
            for item in group
        )
        assert ids == sorted(allocation.database.item_ids)
        assert all(
            stat.count >= 1 for stat in result.allocation.channel_stats
        )


class TestModelIdentities:
    @common_settings
    @given(allocations(), st.floats(min_value=0.1, max_value=100.0))
    def test_waiting_time_identity(self, allocation, bandwidth):
        direct = average_waiting_time(allocation, bandwidth=bandwidth)
        from_cost = waiting_time_from_cost(
            allocation_cost(allocation),
            allocation.database.fixed_download_cost,
            bandwidth=bandwidth,
        )
        assert math.isclose(direct, from_cost, rel_tol=1e-9)

    @common_settings
    @given(allocations())
    def test_cost_is_sum_of_channel_costs(self, allocation):
        total = allocation_cost(allocation)
        channel_sum = sum(stat.cost for stat in allocation.channel_stats)
        assert math.isclose(total, channel_sum, rel_tol=1e-9)

    @common_settings
    @given(databases())
    def test_single_group_cost_is_f_times_z(self, db):
        assert math.isclose(
            group_cost(db.items),
            db.total_frequency * db.total_size,
            rel_tol=1e-9,
        )
