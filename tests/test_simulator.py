"""Integration tests for the end-to-end simulator."""

from __future__ import annotations

import pytest

from repro.core.allocation import ChannelAllocation
from repro.core.scheduler import DRPCDSAllocator
from repro.exceptions import SimulationError
from repro.simulation.simulator import run_broadcast_simulation


@pytest.fixture
def allocation(medium_db):
    return DRPCDSAllocator().allocate(medium_db, 4).allocation


class TestRunSimulation:
    def test_report_shape(self, allocation):
        report = run_broadcast_simulation(
            allocation, num_requests=2000, seed=0
        )
        assert report.num_requests == 2000
        assert report.events_processed == 4000  # arrival + delivery each
        assert report.measured.count == 2000
        assert report.per_item  # at least the hot items appear

    def test_measured_converges_to_analytical(self, allocation):
        report = run_broadcast_simulation(
            allocation, num_requests=40000, seed=1
        )
        assert report.relative_error < 0.03

    def test_more_requests_tighter_ci(self, allocation):
        small = run_broadcast_simulation(allocation, num_requests=500, seed=0)
        large = run_broadcast_simulation(
            allocation, num_requests=20000, seed=0
        )
        assert large.measured.ci_halfwidth < small.measured.ci_halfwidth

    def test_reproducible(self, allocation):
        a = run_broadcast_simulation(allocation, num_requests=1000, seed=5)
        b = run_broadcast_simulation(allocation, num_requests=1000, seed=5)
        assert a.measured.mean == b.measured.mean

    def test_arrival_rate_does_not_bias_mean(self, allocation):
        slow = run_broadcast_simulation(
            allocation, num_requests=20000, arrival_rate=0.5, seed=2
        )
        fast = run_broadcast_simulation(
            allocation, num_requests=20000, arrival_rate=20.0, seed=2
        )
        assert slow.measured.mean == pytest.approx(
            fast.measured.mean, rel=0.05
        )

    def test_all_waits_at_least_download_time(self, tiny_db):
        allocation = ChannelAllocation(
            tiny_db, [tiny_db.items[:2], tiny_db.items[2:]]
        )
        report = run_broadcast_simulation(
            allocation, num_requests=500, bandwidth=10.0, seed=0
        )
        min_download = min(item.size for item in tiny_db) / 10.0
        assert report.measured.minimum >= min_download - 1e-12

    def test_bad_request_count(self, allocation):
        with pytest.raises(SimulationError):
            run_broadcast_simulation(allocation, num_requests=0)


class TestBandwidthEffects:
    def test_doubling_bandwidth_halves_waits(self, allocation):
        # The *expectation* scales exactly with 1/b; the measured means
        # only approximately, because the same absolute arrival times
        # land at different cycle phases once cycles shrink.
        base = run_broadcast_simulation(
            allocation, num_requests=20000, bandwidth=10.0, seed=3
        )
        double = run_broadcast_simulation(
            allocation, num_requests=20000, bandwidth=20.0, seed=3
        )
        assert double.analytical_waiting_time == pytest.approx(
            base.analytical_waiting_time / 2.0
        )
        assert double.measured.mean == pytest.approx(
            base.measured.mean / 2.0, rel=0.05
        )

    def test_heterogeneous_bandwidths_accepted(self, allocation):
        bandwidths = [10.0] * allocation.num_channels
        bandwidths[0] = 40.0
        report = run_broadcast_simulation(
            allocation,
            bandwidths=bandwidths,
            num_requests=2000,
            seed=0,
        )
        assert report.num_requests == 2000


class TestProfileMismatch:
    def test_mismatched_requests_break_model_match(self, allocation):
        """With all requests on one cold item the analytical W_b
        (computed for the optimised profile) no longer predicts the
        measured mean."""
        database = allocation.database
        cold = database.sorted_by_frequency()[-1]
        probabilities = [
            1.0 if item.item_id == cold.item_id else 0.0
            for item in database.items
        ]
        report = run_broadcast_simulation(
            allocation,
            num_requests=5000,
            seed=0,
            request_probabilities=probabilities,
        )
        expected = None
        from repro.simulation.server import BroadcastProgram

        program = BroadcastProgram(allocation)
        expected = program.expected_waiting_time(cold.item_id)
        assert report.measured.mean == pytest.approx(expected, rel=0.05)
