"""Tests for the optimality-gap experiment (repro.experiments.gap)."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidDatabaseError
from repro.experiments.gap import (
    DEFAULT_GAP_ALGORITHMS,
    GapReport,
    run_gap_experiment,
)


@pytest.fixture(scope="module")
def reports():
    return run_gap_experiment(
        num_items=9,
        num_channels=3,
        instances=4,
        algorithms=("vfk", "drp", "drp-cds"),
    )


class TestRunGapExperiment:
    def test_one_report_per_algorithm(self, reports):
        assert [r.algorithm for r in reports] == ["vfk", "drp", "drp-cds"]
        assert all(isinstance(r, GapReport) for r in reports)

    def test_gaps_are_nonnegative(self, reports):
        for report in reports:
            assert all(gap >= -1e-9 for gap in report.gaps)

    def test_one_gap_per_instance(self, reports):
        assert all(len(r.gaps) == 4 for r in reports)

    def test_quality_ordering(self, reports):
        by_name = {r.algorithm: r for r in reports}
        assert (
            by_name["drp-cds"].summary.mean
            <= by_name["drp"].summary.mean + 1e-12
        )
        assert by_name["drp"].summary.mean <= by_name["vfk"].summary.mean

    def test_drp_cds_gap_is_small(self, reports):
        by_name = {r.algorithm: r for r in reports}
        assert by_name["drp-cds"].summary.mean < 0.03

    def test_hit_rate_and_worst(self, reports):
        for report in reports:
            assert 0.0 <= report.hit_rate <= 1.0
            assert report.worst == max(report.gaps)
            assert report.exact_hits == sum(
                1 for gap in report.gaps if gap < 1e-9
            )

    def test_deterministic(self):
        kwargs = dict(
            num_items=8, num_channels=2, instances=3, algorithms=("drp",)
        )
        first = run_gap_experiment(**kwargs)
        second = run_gap_experiment(**kwargs)
        assert first[0].gaps == second[0].gaps

    def test_default_algorithms(self):
        assert "drp-cds" in DEFAULT_GAP_ALGORITHMS
        assert "gopt" in DEFAULT_GAP_ALGORITHMS

    def test_validation(self):
        with pytest.raises(InvalidDatabaseError):
            run_gap_experiment(instances=0)
        with pytest.raises(InvalidDatabaseError):
            run_gap_experiment(algorithms=())


class TestGapCLI:
    def test_gap_subcommand(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "gap",
                    "--items", "8",
                    "--channels", "2",
                    "--instances", "2",
                    "--algorithms", "drp-cds",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "mean gap" in output
        assert "drp-cds" in output

    def test_figure_chart_flag(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "figure", "figure6",
                    "--replications", "1",
                    "--quiet",
                    "--chart",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "figure6 shape" in output
        assert "█" in output
