"""Unit tests for the differential oracles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cds import cds_refine
from repro.core.drp import drp_allocate
from repro.verify.oracles import (
    oracle_cds_backends,
    oracle_dp_methods,
    oracle_drp_backends,
    oracle_serial_parallel,
    oracle_simulators,
    oracle_warm_cold,
)
from repro.workloads.generator import WorkloadSpec, generate_database


@pytest.fixture(scope="module")
def database():
    return generate_database(
        WorkloadSpec(num_items=40, skewness=0.8, diversity=1.5, seed=2024)
    )


class TestKernelOracles:
    @pytest.mark.parametrize("policy", ("max-cost", "max-reduction"))
    def test_drp_backends_agree(self, database, policy):
        assert oracle_drp_backends(database, 5, split_policy=policy) == []

    def test_drp_backends_agree_on_paper_db(self, paper_db):
        assert oracle_drp_backends(paper_db, 5) == []

    def test_cds_backends_agree(self, database, paper_db):
        assert oracle_cds_backends(database, 5) == []
        assert oracle_cds_backends(paper_db, 5) == []

    def test_dp_methods_agree(self, database, paper_db):
        assert oracle_dp_methods(database, 5) == []
        assert oracle_dp_methods(paper_db, 4) == []

    def test_infeasible_channel_count_is_vacuous(self, tiny_db):
        assert oracle_drp_backends(tiny_db, 99) == []
        assert oracle_cds_backends(tiny_db, 99) == []
        assert oracle_dp_methods(tiny_db, 99) == []


class TestSimulatorOracle:
    def test_event_and_batched_agree(self, database):
        allocation = cds_refine(drp_allocate(database, 4).allocation).allocation
        assert (
            oracle_simulators(allocation, num_requests=300, seed=5) == []
        )


@pytest.mark.slow
class TestSerialParallelOracle:
    def test_rows_identical(self):
        assert oracle_serial_parallel(seed=42) == []


class TestWarmColdOracle:
    def test_guard_respected_with_default_drift(self, database):
        assert oracle_warm_cold(database, 5) == []

    def test_guard_respected_with_random_drift(self, database):
        rng = np.random.default_rng(99)
        assert oracle_warm_cold(database, 5, rng=rng, drift=0.3) == []

    def test_infeasible_channel_count_is_vacuous(self, tiny_db):
        assert oracle_warm_cold(tiny_db, 99) == []
