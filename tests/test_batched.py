"""Parity tests: batched simulation vs the discrete-event engine.

The batched path promises *bitwise-identical* measured statistics to
the event-driven engine for the same seed — same request stream, same
per-request waiting times, same exact-fsum summaries — with
``events_processed = 0`` as the only sanctioned difference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.allocation import ChannelAllocation
from repro.core.scheduler import DRPCDSAllocator
from repro.exceptions import SimulationError
from repro.simulation.batched import (
    batched_waiting_times,
    run_batched_simulation,
)
from repro.simulation.client import RequestGenerator
from repro.simulation.server import BroadcastProgram
from repro.simulation.simulator import run_broadcast_simulation


@pytest.fixture
def allocation(medium_db):
    return DRPCDSAllocator().allocate(medium_db, 4).allocation


def assert_reports_match(engine_report, batched_report):
    assert engine_report.measured == batched_report.measured
    assert engine_report.per_item == batched_report.per_item
    assert engine_report.num_requests == batched_report.num_requests
    assert (
        engine_report.analytical_waiting_time
        == batched_report.analytical_waiting_time
    )


class TestSampleBatch:
    def test_matches_generate_stream(self, medium_db):
        a = RequestGenerator(medium_db, seed=11)
        b = RequestGenerator(medium_db, seed=11)
        arrivals, picks = a.sample_batch(500)
        requests = list(b.generate(500))
        assert [r.arrival_time for r in requests] == arrivals.tolist()
        item_ids = a.item_ids
        assert [r.item_id for r in requests] == [
            item_ids[int(p)] for p in picks
        ]

    def test_empty_batch(self, medium_db):
        arrivals, picks = RequestGenerator(medium_db).sample_batch(0)
        assert arrivals.size == 0 and picks.size == 0

    def test_negative_rejected(self, medium_db):
        with pytest.raises(SimulationError):
            RequestGenerator(medium_db).sample_batch(-1)


class TestBatchedWaitingTimes:
    def test_matches_channel_timing_per_request(self, allocation):
        program = BroadcastProgram(allocation)
        generator = RequestGenerator(allocation.database, seed=3)
        arrivals, picks = generator.sample_batch(300)
        item_ids = generator.item_ids
        waits = batched_waiting_times(program, item_ids, arrivals, picks)
        for i in range(300):
            expected = program.waiting_time(
                item_ids[int(picks[i])], float(arrivals[i])
            )
            assert waits[i] == expected  # bitwise, not approx

    def test_waits_bounded_below_by_download(self, allocation):
        program = BroadcastProgram(allocation)
        generator = RequestGenerator(allocation.database, seed=5)
        arrivals, picks = generator.sample_batch(1000)
        waits = batched_waiting_times(
            program, generator.item_ids, arrivals, picks
        )
        min_download = min(
            channel.transmission_time(item.item_id)
            for channel in program.channels
            for item in channel.items
        )
        assert float(np.min(waits)) >= min_download - 1e-12


class TestEngineParity:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_identical_reports(self, allocation, seed):
        engine = run_broadcast_simulation(
            allocation, num_requests=2000, seed=seed, backend="python"
        )
        batched = run_broadcast_simulation(
            allocation, num_requests=2000, seed=seed, backend="numpy"
        )
        assert_reports_match(engine, batched)
        assert engine.events_processed == 4000
        assert batched.events_processed == 0

    def test_auto_backend_selects_batched(self, allocation):
        report = run_broadcast_simulation(
            allocation, num_requests=500, seed=0, backend="auto"
        )
        assert report.events_processed == 0

    def test_heterogeneous_bandwidths_parity(self, allocation):
        bandwidths = [10.0] * allocation.num_channels
        bandwidths[0] = 40.0
        engine = run_broadcast_simulation(
            allocation,
            bandwidths=bandwidths,
            num_requests=1500,
            seed=2,
            backend="python",
        )
        batched = run_broadcast_simulation(
            allocation,
            bandwidths=bandwidths,
            num_requests=1500,
            seed=2,
            backend="numpy",
        )
        assert_reports_match(engine, batched)

    def test_request_probability_override_parity(self, allocation):
        database = allocation.database
        cold = database.sorted_by_frequency()[-1]
        probabilities = [
            1.0 if item.item_id == cold.item_id else 0.0
            for item in database.items
        ]
        engine = run_broadcast_simulation(
            allocation,
            num_requests=800,
            seed=0,
            request_probabilities=probabilities,
            backend="python",
        )
        batched = run_broadcast_simulation(
            allocation,
            num_requests=800,
            seed=0,
            request_probabilities=probabilities,
            backend="numpy",
        )
        assert_reports_match(engine, batched)
        assert set(batched.per_item) == {cold.item_id}

    def test_arrival_rate_parity(self, allocation):
        engine = run_broadcast_simulation(
            allocation,
            num_requests=1000,
            arrival_rate=12.5,
            seed=4,
            backend="python",
        )
        batched = run_broadcast_simulation(
            allocation,
            num_requests=1000,
            arrival_rate=12.5,
            seed=4,
            backend="numpy",
        )
        assert_reports_match(engine, batched)

    def test_tiny_allocation_parity(self, tiny_db):
        allocation = ChannelAllocation(
            tiny_db, [tiny_db.items[:2], tiny_db.items[2:]]
        )
        engine = run_broadcast_simulation(
            allocation, num_requests=400, seed=9, backend="python"
        )
        batched = run_broadcast_simulation(
            allocation, num_requests=400, seed=9, backend="numpy"
        )
        assert_reports_match(engine, batched)


class TestValidation:
    def test_bad_backend_rejected(self, allocation):
        with pytest.raises(SimulationError, match="backend"):
            run_broadcast_simulation(allocation, backend="fortran")

    def test_bad_request_count(self, allocation):
        with pytest.raises(SimulationError):
            run_batched_simulation(allocation, num_requests=0)

    def test_analytical_model_still_converges(self, allocation):
        report = run_batched_simulation(
            allocation, num_requests=40_000, seed=1
        )
        assert report.relative_error < 0.03
