"""Property-based tests (hypothesis) for the extension modules.

Covers the invariants of the heterogeneous-bandwidth model, (1, m)
indexing, trace/estimation, and persistence round-trips for arbitrary
valid inputs.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.allocation import ChannelAllocation
from repro.core.cost import average_waiting_time
from repro.core.database import BroadcastDatabase
from repro.core.hetero import (
    hetero_cds_refine,
    hetero_move_delta,
    hetero_waiting_time,
)
from repro.core.item import DataItem
from repro.io import (
    allocation_from_json,
    allocation_to_json,
    database_from_json,
    database_to_json,
)
from repro.simulation.indexing import IndexedChannel
from repro.workloads.estimator import CountEstimator, DecayEstimator
from repro.workloads.trace import RequestTrace

_positive = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)


@st.composite
def databases(draw, min_items=2, max_items=16):
    n = draw(st.integers(min_value=min_items, max_value=max_items))
    raw = draw(st.lists(_positive, min_size=n, max_size=n))
    sizes = draw(st.lists(_positive, min_size=n, max_size=n))
    total = math.fsum(raw)
    return BroadcastDatabase(
        DataItem(f"d{i}", f / total, z)
        for i, (f, z) in enumerate(zip(raw, sizes))
    )


@st.composite
def allocations_with_bandwidths(draw):
    db = draw(databases(min_items=3, max_items=14))
    k = draw(st.integers(min_value=2, max_value=min(4, len(db))))
    assignment = [
        draw(st.integers(min_value=0, max_value=k - 1))
        for _ in range(len(db))
    ]
    for channel in range(k):
        assignment[channel] = channel
    allocation = ChannelAllocation.from_assignment_vector(db, assignment, k)
    bandwidths = [
        draw(st.floats(min_value=0.5, max_value=50.0)) for _ in range(k)
    ]
    return allocation, bandwidths


common = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestHeteroProperties:
    @common
    @given(allocations_with_bandwidths())
    def test_equal_bandwidths_reduce_to_paper_model(self, pair):
        allocation, bandwidths = pair
        b = bandwidths[0]
        hetero = hetero_waiting_time(
            allocation, [b] * allocation.num_channels
        )
        classic = average_waiting_time(allocation, bandwidth=b)
        assert math.isclose(hetero, classic, rel_tol=1e-9)

    @common
    @given(allocations_with_bandwidths())
    def test_delta_matches_recomputation(self, pair):
        allocation, bandwidths = pair
        before = hetero_waiting_time(allocation, bandwidths)
        groups = [list(g) for g in allocation.channels]
        agg_f = [math.fsum(i.frequency for i in g) for g in groups]
        agg_z = [math.fsum(i.size for i in g) for g in groups]
        for origin in range(len(groups)):
            if len(groups[origin]) < 2:
                continue
            item = groups[origin][0]
            for dest in range(len(groups)):
                if dest == origin:
                    continue
                predicted = hetero_move_delta(
                    item,
                    origin_frequency=agg_f[origin],
                    origin_size=agg_z[origin],
                    dest_frequency=agg_f[dest],
                    dest_size=agg_z[dest],
                    origin_bandwidth=bandwidths[origin],
                    dest_bandwidth=bandwidths[dest],
                )
                moved = [list(g) for g in groups]
                moved[origin] = moved[origin][1:]
                moved[dest] = moved[dest] + [item]
                after = hetero_waiting_time(
                    allocation.replace_channels(moved), bandwidths
                )
                assert predicted == pytest.approx(
                    before - after, rel=1e-6, abs=1e-9
                )
            break  # one origin suffices per example

    @common
    @given(allocations_with_bandwidths())
    def test_refine_monotone_and_feasible(self, pair):
        allocation, bandwidths = pair
        result = hetero_cds_refine(allocation, bandwidths)
        assert result.waiting_time <= result.initial_waiting_time + 1e-9
        ids = sorted(
            i.item_id for g in result.allocation.channels for i in g
        )
        assert ids == sorted(allocation.database.item_ids)
        assert all(
            s.count >= 1 for s in result.allocation.channel_stats
        )


class TestIndexingProperties:
    @common
    @given(
        databases(min_items=3, max_items=12),
        st.integers(min_value=1, max_value=3),
        st.floats(min_value=0.01, max_value=2.0),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_tuning_bounded_by_waiting(self, db, m, entry, tune_in):
        items = list(db.items)
        m = min(m, len(items))
        channel = IndexedChannel(
            0, items, 10.0, replication=m, index_entry_size=entry
        )
        timing = channel.retrieve(items[0].item_id, tune_in)
        assert 0 < timing.tuning_time <= timing.waiting_time + 1e-9

    @common
    @given(
        databases(min_items=3, max_items=10),
        st.floats(min_value=0.0, max_value=50.0),
    )
    def test_periodicity(self, db, tune_in):
        items = list(db.items)
        channel = IndexedChannel(
            0, items, 10.0, replication=2, index_entry_size=0.5
        )
        target = items[-1].item_id
        a = channel.retrieve(target, tune_in)
        b = channel.retrieve(target, tune_in + channel.cycle_length)
        assert a.waiting_time == pytest.approx(b.waiting_time, abs=1e-6)
        assert a.tuning_time == pytest.approx(b.tuning_time, abs=1e-6)

    @common
    @given(databases(min_items=3, max_items=10))
    def test_waiting_at_least_download(self, db):
        items = list(db.items)
        channel = IndexedChannel(
            0, items, 10.0, replication=1, index_entry_size=0.5
        )
        for item in items[:3]:
            timing = channel.expected_timing(item.item_id)
            assert timing.waiting_time >= item.size / 10.0 - 1e-9


class TestEstimatorProperties:
    @common
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1000),
                st.sampled_from(["a", "b", "c"]),
            ),
            max_size=40,
        ),
        st.floats(min_value=0.01, max_value=5.0),
    )
    def test_estimates_are_distributions(self, raw_records, smoothing):
        trace = RequestTrace()
        for timestamp, item in sorted(raw_records):
            trace.record(timestamp, item)
        catalogue = ["a", "b", "c"]
        for estimator in (
            CountEstimator(smoothing=smoothing),
            DecayEstimator(half_life=10.0, smoothing=smoothing),
        ):
            estimate = estimator.estimate(trace, catalogue)
            assert set(estimate) == set(catalogue)
            assert all(value > 0 for value in estimate.values())
            assert math.fsum(estimate.values()) == pytest.approx(1.0)


class TestPersistenceProperties:
    @common
    @given(databases())
    def test_database_json_round_trip(self, db):
        assert database_from_json(database_to_json(db)) == db

    @common
    @given(allocations_with_bandwidths())
    def test_allocation_json_round_trip(self, pair):
        allocation, _ = pair
        restored = allocation_from_json(allocation_to_json(allocation))
        assert restored == allocation
