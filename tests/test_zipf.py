"""Unit tests for repro.workloads.zipf."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidDatabaseError
from repro.workloads.zipf import zipf_frequencies, zipf_skewness_of


class TestZipfFrequencies:
    def test_normalised(self):
        for theta in (0.0, 0.4, 1.0, 1.6):
            freqs = zipf_frequencies(100, theta)
            assert freqs.sum() == pytest.approx(1.0)

    def test_rank_order_descending(self):
        freqs = zipf_frequencies(50, 0.8)
        assert (np.diff(freqs) <= 0).all()

    def test_theta_zero_is_uniform(self):
        freqs = zipf_frequencies(10, 0.0)
        assert freqs == pytest.approx(np.full(10, 0.1))

    def test_matches_paper_formula(self):
        n, theta = 7, 1.3
        freqs = zipf_frequencies(n, theta)
        denom = sum((1.0 / j) ** theta for j in range(1, n + 1))
        for i in range(1, n + 1):
            assert freqs[i - 1] == pytest.approx(
                ((1.0 / i) ** theta) / denom
            )

    def test_higher_theta_more_skewed(self):
        mild = zipf_frequencies(100, 0.4)
        steep = zipf_frequencies(100, 1.6)
        assert steep[0] > mild[0]
        assert steep[-1] < mild[-1]

    def test_single_item(self):
        assert zipf_frequencies(1, 1.0) == pytest.approx([1.0])

    @pytest.mark.parametrize("n", [0, -3])
    def test_bad_counts(self, n):
        with pytest.raises(InvalidDatabaseError):
            zipf_frequencies(n, 1.0)

    @pytest.mark.parametrize("theta", [-0.1, float("nan"), float("inf")])
    def test_bad_skewness(self, theta):
        with pytest.raises(InvalidDatabaseError):
            zipf_frequencies(10, theta)


class TestSkewnessEstimate:
    def test_recovers_generating_theta(self):
        for theta in (0.4, 0.8, 1.2, 1.6):
            freqs = zipf_frequencies(200, theta)
            estimate = zipf_skewness_of(freqs.tolist())
            assert estimate == pytest.approx(theta, abs=1e-6)

    def test_order_independent(self):
        freqs = zipf_frequencies(50, 1.0)
        shuffled = np.random.default_rng(0).permutation(freqs)
        assert zipf_skewness_of(shuffled.tolist()) == pytest.approx(
            zipf_skewness_of(freqs.tolist())
        )

    def test_degenerate_inputs(self):
        assert zipf_skewness_of([1.0]) is None
        assert zipf_skewness_of([]) is None

    def test_nonpositive_rejected(self):
        with pytest.raises(InvalidDatabaseError):
            zipf_skewness_of([0.5, 0.0])
