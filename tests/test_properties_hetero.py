"""Hypothesis properties for the heterogeneous-bandwidth extension.

``core/hetero.py`` generalises the paper's machinery to per-channel
bandwidths; these properties pin the generalisation to the base model:

* every refined allocation passes the verification layer's
  well-formedness checker;
* with equal bandwidths the generalised waiting time collapses to the
  paper's Eq. (2);
* ``hetero_cds_refine`` never worsens the waiting time it starts from;
* ``assign_groups_to_bandwidths`` is a permutation and (by the
  rearrangement inequality) beats every other pairing.
"""

from __future__ import annotations

import itertools
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cost import average_waiting_time
from repro.core.database import BroadcastDatabase
from repro.core.drp import drp_allocate
from repro.core.hetero import (
    assign_groups_to_bandwidths,
    channel_load,
    hetero_cds_refine,
    hetero_waiting_time,
)
from repro.core.item import DataItem
from repro.verify.invariants import REL_TOL, check_allocation_wellformed

pytestmark = pytest.mark.slow

_positive = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)
_bandwidth = st.floats(
    min_value=0.5, max_value=50.0, allow_nan=False, allow_infinity=False
)


@st.composite
def hetero_instances(draw, min_items=3, max_items=16, max_channels=4):
    """A database, a channel count and per-channel bandwidths."""
    n = draw(st.integers(min_value=min_items, max_value=max_items))
    raw_freqs = draw(st.lists(_positive, min_size=n, max_size=n))
    sizes = draw(st.lists(_positive, min_size=n, max_size=n))
    total = math.fsum(raw_freqs)
    db = BroadcastDatabase(
        [
            DataItem(f"d{i}", frequency=f / total, size=z)
            for i, (f, z) in enumerate(zip(raw_freqs, sizes))
        ]
    )
    k = draw(st.integers(min_value=2, max_value=min(max_channels, n)))
    bandwidths = draw(st.lists(_bandwidth, min_size=k, max_size=k))
    return db, k, bandwidths


common_settings = settings(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestHeteroRefineProperties:
    @common_settings
    @given(hetero_instances())
    def test_output_passes_invariant_checker(self, instance):
        db, k, bandwidths = instance
        seed = drp_allocate(db, k).allocation
        result = hetero_cds_refine(seed, bandwidths)
        assert check_allocation_wellformed(result.allocation) == []

    @common_settings
    @given(hetero_instances())
    def test_refine_never_worsens_waiting_time(self, instance):
        db, k, bandwidths = instance
        seed = drp_allocate(db, k).allocation
        result = hetero_cds_refine(seed, bandwidths)
        start = hetero_waiting_time(seed, bandwidths)
        slack = REL_TOL * max(1.0, start)
        assert result.waiting_time <= start + slack
        assert result.initial_waiting_time == pytest.approx(start, rel=1e-9)
        assert result.improvement >= -slack

    @common_settings
    @given(hetero_instances(), _bandwidth)
    def test_equal_bandwidths_reduce_to_eq2(self, instance, bandwidth):
        db, k, _ = instance
        allocation = drp_allocate(db, k).allocation
        hetero = hetero_waiting_time(allocation, [bandwidth] * k)
        homogeneous = average_waiting_time(allocation, bandwidth=bandwidth)
        assert hetero == pytest.approx(homogeneous, rel=1e-9)


class TestGroupAssignmentProperties:
    @common_settings
    @given(hetero_instances(max_items=10, max_channels=4))
    def test_assignment_is_optimal_permutation(self, instance):
        db, k, bandwidths = instance
        groups = drp_allocate(db, k).allocation.channels
        order = assign_groups_to_bandwidths(groups, bandwidths)
        assert sorted(order) == list(range(k))
        loads = [channel_load(group) for group in groups]
        chosen = math.fsum(
            loads[order[i]] / bandwidths[i] for i in range(k)
        )
        for permutation in itertools.permutations(range(k)):
            other = math.fsum(
                loads[permutation[i]] / bandwidths[i] for i in range(k)
            )
            assert chosen <= other + REL_TOL * max(1.0, other)
