"""Package-level tests: exports, exception hierarchy, entry points."""

from __future__ import annotations

import importlib
import subprocess
import sys

import pytest

import repro
from repro.exceptions import (
    InfeasibleProblemError,
    InvalidAllocationError,
    InvalidDatabaseError,
    InvalidItemError,
    ReproError,
    SimulationError,
    SolverLimitError,
)


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_pep440_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) >= 2
        assert all(part.isdigit() for part in parts[:2])

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.baselines",
            "repro.workloads",
            "repro.simulation",
            "repro.analysis",
            "repro.experiments",
            "repro.io",
            "repro.cli",
        ],
    )
    def test_subpackage_all_names_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_quickstart_from_docstring_runs(self):
        """The module docstring's example must actually work."""
        from repro import DRPCDSAllocator, WorkloadSpec, generate_database

        database = generate_database(WorkloadSpec(num_items=60, seed=7))
        outcome = DRPCDSAllocator().allocate(database, num_channels=5)
        assert outcome.allocation.num_channels == 5


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            InvalidItemError,
            InvalidDatabaseError,
            InvalidAllocationError,
            InfeasibleProblemError,
            SolverLimitError,
            SimulationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert issubclass(exception, ReproError)
        assert issubclass(exception, Exception)

    def test_catching_the_base_class_works(self):
        from repro.core.item import DataItem

        with pytest.raises(ReproError):
            DataItem("x", -1.0, 1.0)

    def test_library_never_raises_bare_exceptions_for_bad_input(self):
        """A representative sample of bad inputs across modules all
        raise ReproError subclasses, not ValueError/TypeError."""
        from repro.core.database import BroadcastDatabase
        from repro.core.drp import drp_allocate
        from repro.workloads.generator import WorkloadSpec

        cases = [
            lambda: BroadcastDatabase([]),
            lambda: WorkloadSpec(num_items=0),
        ]
        for case in cases:
            with pytest.raises(ReproError):
                case()
        db = BroadcastDatabase.from_pairs({"a": (1.0, 1.0)})
        with pytest.raises(ReproError):
            drp_allocate(db, 5)


class TestEntryPoints:
    def test_python_dash_m_repro(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "drp-cds" in result.stdout

    def test_main_returns_int(self):
        from repro.cli import main

        assert main(["list"]) == 0
