"""Benchmark-history regression gate: flattening, baselines, the gate.

The acceptance scenario from the issue is tested end to end: seed a
history from the committed ``BENCH_core.json``, inject a >=10%
synthetic regression into one tracked metric, and assert the CLI exits
nonzero naming it.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.obs import bench as bench_history
from repro.obs.bench import (
    Regression,
    append_history,
    check_regressions,
    extract_metrics,
    load_history,
    metric_direction,
)
from repro.obs.manifest import config_digest

REPO_ROOT = Path(__file__).resolve().parents[1]


def core_payload() -> dict:
    return json.loads((REPO_ROOT / "BENCH_core.json").read_text())


class TestDirections:
    def test_higher_is_better(self):
        assert metric_direction("delta_evaluations_per_second") == "higher"
        assert metric_direction("warm.speedup") == "higher"
        assert metric_direction("moves_reduction") == "higher"

    def test_lower_is_better(self):
        assert metric_direction("wall_seconds") == "lower"
        assert metric_direction("peak_rss_bytes") == "lower"
        assert metric_direction("disabled_overhead_percent") == "lower"

    def test_higher_wins_over_lower_substring(self):
        # "evaluations_per_second" contains neither lower token, but a
        # name with both must resolve to higher-is-better.
        assert metric_direction("seconds_per_second") == "higher"

    def test_unknown_is_ungated(self):
        assert metric_direction("spans_recorded") is None


class TestExtractMetrics:
    def test_flattens_committed_core_bench(self):
        metrics = extract_metrics(core_payload())
        assert metrics, "no metrics extracted from BENCH_core.json"
        # Result rows are keyed by their identity fields, not position.
        assert any("kernel=" in key for key in metrics)
        assert all(isinstance(value, (int, float)) for value in metrics.values())

    def test_skips_metadata_fields(self):
        metrics = extract_metrics(
            {
                "schema": 3,
                "timestamp": "2026-01-01T00:00:00",
                "config": {"sizes": [100]},
                "wall_seconds": 1.5,
            }
        )
        assert metrics == {"wall_seconds": 1.5}

    def test_limited_by_cpu_count_marks_higher_metrics(self):
        metrics = extract_metrics(
            {
                "runner": {
                    "limited_by_cpu_count": True,
                    "speedup": 0.8,
                    "serial_seconds": 2.0,
                }
            }
        )
        # "higher"-direction children of a flagged section carry the
        # marker: recorded in history, never gated on a 1-CPU runner.
        marked = "runner.speedup[limited_by_cpu_count]"
        assert marked in metrics
        assert metrics[marked] == 0.8
        assert metric_direction(marked) is None
        # The flag itself is metadata, not a metric.
        assert not any("limited_by_cpu_count" == k.split(".")[-1] for k in metrics)
        # "lower"-direction metrics still gate normally.
        assert metric_direction("runner.serial_seconds") == "lower"

    def test_unflagged_section_keeps_speedup_gated(self):
        metrics = extract_metrics({"runner": {"speedup": 1.9}})
        assert metrics == {"runner.speedup": 1.9}
        assert metric_direction("runner.speedup") == "higher"


class TestHistory:
    def test_append_and_load_round_trip(self, tmp_path):
        bench_path = tmp_path / "BENCH_core.json"
        bench_path.write_text(json.dumps(core_payload()))
        history_path = tmp_path / "history.jsonl"
        record = append_history(str(bench_path), str(history_path))
        assert record["bench"] == "BENCH_core"
        loaded = load_history(str(history_path))
        assert len(loaded) == 1
        assert loaded[0]["metrics"] == record["metrics"]

    def test_load_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(
            'not json\n{"bench": "x"}\n'
            '{"bench": "y", "metrics": {"wall_seconds": 1.0}}\n'
        )
        assert len(load_history(str(path))) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "absent.jsonl")) == []


def _history_of(metrics: dict, copies: int, bench: str = "B", digest: str = "d") -> list:
    return [
        {
            "schema": 1,
            "bench": bench,
            "config_sha256": digest,
            "metrics": dict(metrics),
        }
        for _ in range(copies)
    ]


class TestCheckRegressions:
    def test_clean_run_passes(self):
        history = _history_of({"wall_seconds": 1.0}, 5)
        regressions, summary = check_regressions(
            "B", {"wall_seconds": 1.02}, history, config_sha256="d"
        )
        assert regressions == []
        assert summary["metrics_gated"] == 1

    def test_lower_is_better_regression(self):
        history = _history_of({"wall_seconds": 1.0}, 5)
        regressions, _ = check_regressions(
            "B", {"wall_seconds": 1.2}, history, config_sha256="d"
        )
        assert len(regressions) == 1
        regression = regressions[0]
        assert isinstance(regression, Regression)
        assert regression.metric == "wall_seconds"
        assert regression.change_percent == pytest.approx(20.0)

    def test_higher_is_better_regression(self):
        history = _history_of({"ops_per_second": 100.0}, 5)
        regressions, _ = check_regressions(
            "B", {"ops_per_second": 80.0}, history, config_sha256="d"
        )
        assert len(regressions) == 1

    def test_threshold_boundary(self):
        history = _history_of({"wall_seconds": 1.0}, 5)
        within, _ = check_regressions(
            "B", {"wall_seconds": 1.09}, history, config_sha256="d"
        )
        past, _ = check_regressions(
            "B", {"wall_seconds": 1.11}, history, config_sha256="d"
        )
        assert within == [] and len(past) == 1

    def test_custom_threshold(self):
        history = _history_of({"wall_seconds": 1.0}, 5)
        regressions, _ = check_regressions(
            "B", {"wall_seconds": 1.06}, history, config_sha256="d", threshold=0.05
        )
        assert len(regressions) == 1

    def test_baseline_is_median_of_window(self):
        history = _history_of({"wall_seconds": 1.0}, 3) + _history_of(
            {"wall_seconds": 100.0}, 2
        )
        # Median of [1, 1, 1, 100, 100] is 1.0: one noisy pair of runs
        # must not mask a regression against the typical baseline.
        regressions, _ = check_regressions(
            "B", {"wall_seconds": 2.0}, history, config_sha256="d"
        )
        assert len(regressions) == 1

    def test_config_digest_isolates_baselines(self):
        history = _history_of({"wall_seconds": 1.0}, 5, digest="other")
        regressions, summary = check_regressions(
            "B", {"wall_seconds": 9.9}, history, config_sha256="d"
        )
        assert regressions == [] and summary["history_records"] == 0

    def test_other_bench_records_ignored(self):
        history = _history_of({"wall_seconds": 1.0}, 5, bench="OTHER")
        regressions, summary = check_regressions(
            "B", {"wall_seconds": 9.9}, history, config_sha256="d"
        )
        assert regressions == [] and summary["history_records"] == 0


class TestCliGate:
    """The issue's acceptance scenario, driven through `repro bench-check`."""

    def _seed(self, tmp_path, payload) -> Path:
        bench_path = tmp_path / "BENCH_core.json"
        bench_path.write_text(json.dumps(payload))
        history_path = tmp_path / "history.jsonl"
        for _ in range(3):
            append_history(str(bench_path), str(history_path))
        return history_path

    def test_clean_bench_exits_zero(self, tmp_path, capsys):
        payload = core_payload()
        history_path = self._seed(tmp_path, payload)
        bench_path = tmp_path / "BENCH_core.json"
        code = cli_main(
            [
                "bench-check",
                str(bench_path),
                "--history",
                str(history_path),
                "--no-append",
            ]
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        payload = core_payload()
        history_path = self._seed(tmp_path, payload)
        regressed = copy.deepcopy(payload)
        row = regressed["results"][0]
        victim = next(
            key
            for key, value in row.items()
            if bench_history.metric_direction(key) == "lower"
            and isinstance(value, (int, float))
            and value
        )
        row[victim] = row[victim] * 1.15  # inject a 15% slowdown
        bench_path = tmp_path / "BENCH_core.json"
        bench_path.write_text(json.dumps(regressed))
        assert config_digest(regressed.get("config", {})) == config_digest(
            payload.get("config", {})
        )
        code = cli_main(
            [
                "bench-check",
                str(bench_path),
                "--history",
                str(history_path),
                "--no-append",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "REGRESSION" in captured.out
        assert victim in captured.out

    def test_append_grows_history(self, tmp_path):
        payload = core_payload()
        history_path = self._seed(tmp_path, payload)
        before = len(load_history(str(history_path)))
        bench_path = tmp_path / "BENCH_core.json"
        code = cli_main(
            ["bench-check", str(bench_path), "--history", str(history_path)]
        )
        assert code == 0
        assert len(load_history(str(history_path))) == before + 1

    def test_no_bench_files_exits_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert cli_main(["bench-check"]) == 2
