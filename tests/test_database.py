"""Unit tests for repro.core.database."""

from __future__ import annotations

import pytest

from repro.core.database import BroadcastDatabase, FREQUENCY_SUM_TOLERANCE
from repro.core.item import DataItem
from repro.exceptions import InvalidDatabaseError


class TestConstruction:
    def test_empty_database_rejected(self):
        with pytest.raises(InvalidDatabaseError):
            BroadcastDatabase([])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(InvalidDatabaseError, match="duplicate"):
            BroadcastDatabase(
                [DataItem("a", 0.5, 1.0), DataItem("a", 0.5, 2.0)]
            )

    def test_non_item_entries_rejected(self):
        with pytest.raises(InvalidDatabaseError, match="DataItem"):
            BroadcastDatabase([("a", 0.5, 1.0)])  # type: ignore[list-item]

    def test_unnormalised_rejected_by_default(self):
        with pytest.raises(InvalidDatabaseError, match="sum to 1"):
            BroadcastDatabase([DataItem("a", 0.5, 1.0)])

    def test_unnormalised_accepted_when_requested(self):
        db = BroadcastDatabase(
            [DataItem("a", 0.5, 1.0)], require_normalized=False
        )
        assert db.total_frequency == pytest.approx(0.5)
        assert not db.is_normalized

    def test_tolerance_accepts_rounded_profiles(self):
        # Frequencies that sum to 1 within the documented tolerance.
        off = FREQUENCY_SUM_TOLERANCE / 2
        db = BroadcastDatabase(
            [DataItem("a", 0.5, 1.0), DataItem("b", 0.5 + off, 1.0)]
        )
        assert db.is_normalized


class TestContainerProtocol:
    def test_len_iter_contains_getitem(self, tiny_db):
        assert len(tiny_db) == 4
        assert [item.item_id for item in tiny_db] == ["a", "b", "c", "d"]
        assert "a" in tiny_db
        assert "zz" not in tiny_db
        assert tiny_db["b"].size == 2.0

    def test_getitem_missing_raises_keyerror(self, tiny_db):
        with pytest.raises(KeyError, match="zz"):
            tiny_db["zz"]

    def test_equality_and_hash(self, tiny_db):
        clone = BroadcastDatabase(list(tiny_db.items))
        assert clone == tiny_db
        assert hash(clone) == hash(tiny_db)
        assert tiny_db != "not a database"


class TestDerivedQuantities:
    def test_totals(self, tiny_db):
        assert tiny_db.total_frequency == pytest.approx(1.0)
        assert tiny_db.total_size == pytest.approx(10.0)

    def test_fixed_download_cost(self, tiny_db):
        # 0.4*1 + 0.3*2 + 0.2*3 + 0.1*4 = 2.0
        assert tiny_db.fixed_download_cost == pytest.approx(2.0)

    def test_sorted_by_benefit_ratio_descending(self, tiny_db):
        ordered = tiny_db.sorted_by_benefit_ratio()
        ratios = [item.benefit_ratio for item in ordered]
        assert ratios == sorted(ratios, reverse=True)
        assert ordered[0].item_id == "a"

    def test_benefit_ratio_sort_breaks_ties_by_catalogue_order(self):
        db = BroadcastDatabase(
            [
                DataItem("x", 0.25, 1.0),
                DataItem("y", 0.25, 1.0),
                DataItem("z", 0.5, 1.0),
            ]
        )
        ordered = [item.item_id for item in db.sorted_by_benefit_ratio()]
        assert ordered == ["z", "x", "y"]

    def test_sorted_by_frequency_descending(self, tiny_db):
        ordered = [item.item_id for item in tiny_db.sorted_by_frequency()]
        assert ordered == ["a", "b", "c", "d"]

    def test_paper_order_matches_table3(self, paper_db):
        ordered = [item.item_id for item in paper_db.sorted_by_benefit_ratio()]
        assert ordered == [
            "d9", "d2", "d3", "d6", "d5", "d15", "d1", "d12",
            "d10", "d13", "d4", "d8", "d14", "d7", "d11",
        ]


class TestTransforms:
    def test_normalized_rescales_to_unit_sum(self):
        db = BroadcastDatabase(
            [DataItem("a", 2.0, 1.0), DataItem("b", 6.0, 2.0)],
            require_normalized=False,
        )
        normalized = db.normalized()
        assert normalized.total_frequency == pytest.approx(1.0)
        assert normalized["a"].frequency == pytest.approx(0.25)
        assert normalized["b"].frequency == pytest.approx(0.75)

    def test_subset_preserves_order(self, tiny_db):
        subset = tiny_db.subset(["c", "a"])
        assert [item.item_id for item in subset] == ["c", "a"]

    def test_from_pairs(self):
        db = BroadcastDatabase.from_pairs({"a": (0.6, 1.0), "b": (0.4, 2.0)})
        assert db["a"].frequency == 0.6
        assert db.item_ids == ("a", "b")

    def test_from_arrays(self):
        db = BroadcastDatabase.from_arrays([0.7, 0.3], [1.0, 2.0])
        assert db.item_ids == ("d1", "d2")
        assert db["d2"].size == 2.0

    def test_from_arrays_custom_prefix(self):
        db = BroadcastDatabase.from_arrays([0.7, 0.3], [1.0, 2.0], prefix="v")
        assert db.item_ids == ("v1", "v2")

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(InvalidDatabaseError, match="equal length"):
            BroadcastDatabase.from_arrays([0.5], [1.0, 2.0])
