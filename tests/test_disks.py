"""Tests for Broadcast Disks scheduling (repro.simulation.disks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.item import DataItem
from repro.exceptions import SimulationError
from repro.simulation.channel import BroadcastChannel
from repro.simulation.disks import (
    MultiScheduleChannel,
    broadcast_disk_schedule,
    disks_from_allocation,
)


def items(*specs):
    return [DataItem(name, f, z) for name, f, z in specs]


class TestMultiScheduleChannel:
    def test_reduces_to_plain_channel_without_repeats(self, tiny_db):
        plain = BroadcastChannel(0, tiny_db.items, 10.0)
        multi = MultiScheduleChannel(0, tiny_db.items, 10.0)
        assert multi.cycle_length == pytest.approx(plain.cycle_length)
        for item in tiny_db.items:
            assert multi.expected_waiting_time(
                item.item_id
            ) == pytest.approx(plain.expected_waiting_time(item.item_id))
            for t in (0.0, 0.3, 1.7):
                assert multi.waiting_time(item.item_id, t) == pytest.approx(
                    plain.waiting_time(item.item_id, t)
                )

    def test_repeats_shorten_expected_wait(self):
        hot, cold = items(("hot", 0.8, 10.0), ("cold", 0.2, 10.0))
        once = MultiScheduleChannel(0, [hot, cold], 10.0)
        twice = MultiScheduleChannel(
            0, [hot, cold, hot, cold], 10.0
        )
        # Same per-appearance spacing but the doubled schedule's cycle
        # doubles too — identical expectation.  Now repeat only hot:
        hot_heavy = MultiScheduleChannel(0, [hot, cold, hot], 10.0)
        assert hot_heavy.expected_waiting_time(
            "hot"
        ) < once.expected_waiting_time("hot")
        assert twice.expected_waiting_time("hot") == pytest.approx(
            once.expected_waiting_time("hot")
        )

    def test_even_spacing_beats_bursty(self):
        """The gap formula: evenly spaced repeats minimise the probe."""
        hot, a, b = items(("hot", 0.5, 10.0), ("a", 0.3, 10.0), ("b", 0.2, 10.0))
        even = MultiScheduleChannel(0, [hot, a, hot, b], 10.0)
        bursty = MultiScheduleChannel(0, [hot, hot, a, b], 10.0)
        assert even.expected_waiting_time("hot") < (
            bursty.expected_waiting_time("hot")
        )

    def test_expected_matches_uniform_average(self):
        hot, a, b = items(("hot", 0.5, 7.0), ("a", 0.3, 13.0), ("b", 0.2, 5.0))
        channel = MultiScheduleChannel(0, [hot, a, hot, b], 10.0)
        steps = 20000
        for item_id in ("hot", "a", "b"):
            total = sum(
                channel.waiting_time(
                    item_id, (k + 0.5) * channel.cycle_length / steps
                )
                for k in range(steps)
            )
            assert total / steps == pytest.approx(
                channel.expected_waiting_time(item_id), rel=1e-3
            )

    def test_appearances(self):
        hot, a = items(("hot", 0.7, 1.0), ("a", 0.3, 1.0))
        channel = MultiScheduleChannel(0, [hot, a, hot], 10.0)
        assert channel.appearances("hot") == 2
        assert channel.appearances("a") == 1
        assert channel.carries("hot")
        assert not channel.carries("zz")

    def test_validation(self):
        with pytest.raises(SimulationError):
            MultiScheduleChannel(0, [], 10.0)
        hot = DataItem("hot", 0.5, 10.0)
        with pytest.raises(SimulationError):
            MultiScheduleChannel(0, [hot], 0.0)
        resized = DataItem("hot", 0.5, 20.0)
        with pytest.raises(SimulationError, match="different sizes"):
            MultiScheduleChannel(0, [hot, resized], 10.0)
        channel = MultiScheduleChannel(0, [hot], 10.0)
        with pytest.raises(SimulationError):
            channel.waiting_time("zz", 0.0)
        with pytest.raises(SimulationError):
            channel.waiting_time("hot", -1.0)


class TestBroadcastDiskSchedule:
    def test_frequencies_realised(self):
        disk1 = items(("h1", 0.4, 1.0), ("h2", 0.3, 1.0))
        disk2 = items(("c1", 0.1, 1.0), ("c2", 0.1, 1.0), ("c3", 0.05, 1.0), ("c4", 0.05, 1.0))
        schedule = broadcast_disk_schedule([disk1, disk2], [2, 1])
        channel = MultiScheduleChannel(0, schedule, 10.0)
        assert channel.appearances("h1") == 2
        assert channel.appearances("c1") == 1

    def test_equal_frequencies_single_pass(self):
        disk1 = items(("a", 0.5, 1.0))
        disk2 = items(("b", 0.5, 1.0))
        schedule = broadcast_disk_schedule([disk1, disk2], [1, 1])
        assert [item.item_id for item in schedule] == ["a", "b"]

    def test_hot_disk_waits_less(self):
        disk1 = items(("hot", 0.6, 5.0))
        disk2 = items(
            ("c1", 0.1, 5.0), ("c2", 0.1, 5.0), ("c3", 0.1, 5.0), ("c4", 0.1, 5.0)
        )
        flat = MultiScheduleChannel(
            0, broadcast_disk_schedule([disk1, disk2], [1, 1]), 10.0
        )
        spun = MultiScheduleChannel(
            0, broadcast_disk_schedule([disk1, disk2], [4, 1]), 10.0
        )
        assert spun.expected_waiting_time("hot") < flat.expected_waiting_time(
            "hot"
        )
        # The cold items pay for it.
        assert spun.expected_waiting_time("c1") > flat.expected_waiting_time(
            "c1"
        )

    def test_validation(self):
        disk = items(("a", 1.0, 1.0))
        with pytest.raises(SimulationError):
            broadcast_disk_schedule([], [])
        with pytest.raises(SimulationError):
            broadcast_disk_schedule([disk], [1, 2])
        with pytest.raises(SimulationError):
            broadcast_disk_schedule([disk], [0])
        with pytest.raises(SimulationError):
            broadcast_disk_schedule([disk], [1.5])  # type: ignore[list-item]
        with pytest.raises(SimulationError):
            broadcast_disk_schedule([disk, disk], [1, 1])
        with pytest.raises(SimulationError):
            broadcast_disk_schedule([[]], [1])


class TestDisksFromAllocation:
    def test_partition_and_order(self, medium_db):
        disks = disks_from_allocation(medium_db, 3)
        assert len(disks) == 3
        ids = sorted(item.item_id for disk in disks for item in disk)
        assert ids == sorted(medium_db.item_ids)
        # Disks ordered hot (high aggregate br) to cold.
        ratios = [
            sum(i.frequency for i in disk) / sum(i.size for i in disk)
            for disk in disks
        ]
        assert ratios == sorted(ratios, reverse=True)

    def test_weighted_wait_improves_with_spin(self, medium_db):
        """Spinning the hot disk faster lowers the frequency-weighted
        expected wait versus a flat single-frequency schedule."""
        disks = disks_from_allocation(medium_db, 3)
        flat = MultiScheduleChannel(
            0, broadcast_disk_schedule(disks, [1, 1, 1]), 10.0
        )
        spun = MultiScheduleChannel(
            0, broadcast_disk_schedule(disks, [4, 2, 1]), 10.0
        )

        def weighted(channel):
            return sum(
                item.frequency * channel.expected_waiting_time(item.item_id)
                for item in medium_db
            )

        assert weighted(spun) < weighted(flat)
