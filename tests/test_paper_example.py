"""Golden tests: the paper's worked example, Tables 2-4, end to end.

Every intermediate number the paper prints for its 15-item example is
asserted here.  The paper's algorithm listing and its example disagree
on the split-selection rule (see repro.core.drp); the example follows
the "max-reduction" policy, which these tests use.
"""

from __future__ import annotations

import pytest

from repro.core.cds import cds_refine
from repro.core.cost import allocation_cost, group_cost
from repro.core.drp import drp_allocate
from repro.workloads.paper_profile import (
    PAPER_CDS_COST,
    PAPER_CDS_GROUPS,
    PAPER_DRP_COST,
    PAPER_DRP_GROUPS,
    PAPER_INITIAL_COST,
    PAPER_NUM_CHANNELS,
    PAPER_PROFILE,
    paper_database,
)

from tests.conftest import PAPER_GOLDENS


@pytest.fixture(scope="module")
def db():
    return paper_database()


@pytest.fixture(scope="module")
def drp_result(db):
    return drp_allocate(
        db, PAPER_NUM_CHANNELS, split_policy="max-reduction", trace=True
    )


@pytest.fixture(scope="module")
def cds_result(drp_result):
    return cds_refine(drp_result.allocation)


class TestTable2:
    def test_fifteen_items(self, db):
        assert len(db) == 15
        assert set(db.item_ids) == set(PAPER_PROFILE)

    def test_frequencies_sum_to_one_within_rounding(self, db):
        assert db.total_frequency == pytest.approx(1.0, abs=1e-3)

    def test_total_size(self, db):
        assert db.total_size == pytest.approx(
            PAPER_GOLDENS["total_size"], abs=0.01
        )

    def test_initial_cost_table3a(self, db):
        assert group_cost(db.items) == pytest.approx(
            PAPER_INITIAL_COST, abs=0.01
        )


class TestTable3:
    def test_benefit_ratio_order(self, db):
        ordered = [item.item_id for item in db.sorted_by_benefit_ratio()]
        assert ordered == [
            "d9", "d2", "d3", "d6", "d5", "d15", "d1", "d12",
            "d10", "d13", "d4", "d8", "d14", "d7", "d11",
        ]

    def test_first_iteration_costs(self, drp_result):
        snap = drp_result.snapshots[1]
        assert sorted(snap.costs, reverse=True) == pytest.approx(
            list(PAPER_GOLDENS["first_split_costs"]), abs=0.02
        )
        assert snap.groups[0] == (
            "d9", "d2", "d3", "d6", "d5", "d15", "d1", "d12",
        )

    def test_second_iteration_costs(self, drp_result):
        snap = drp_result.snapshots[2]
        assert sorted(round(c, 2) for c in snap.costs) == pytest.approx(
            sorted(PAPER_GOLDENS["second_split_costs"]), abs=0.02
        )

    def test_final_grouping_table3d(self, drp_result):
        groups = [tuple(g) for g in drp_result.allocation.as_id_lists()]
        assert set(groups) == set(PAPER_DRP_GROUPS)

    def test_final_costs_table3d(self, drp_result):
        costs = sorted(
            stat.cost for stat in drp_result.allocation.channel_stats
        )
        assert costs == pytest.approx(
            sorted(PAPER_GOLDENS["drp_channel_costs"]), abs=0.02
        )

    def test_drp_total_cost(self, drp_result):
        assert drp_result.cost == pytest.approx(PAPER_DRP_COST, abs=0.02)


class TestTable4:
    def test_initial_cost_table4a(self, drp_result):
        assert allocation_cost(drp_result.allocation) == pytest.approx(
            PAPER_GOLDENS["drp_cost"], abs=0.02
        )

    def test_first_move_is_d10_with_delta_095(self, cds_result):
        golden = PAPER_GOLDENS["cds_moves"][0]
        move = cds_result.moves[0]
        assert move.item_id == golden["item"]
        assert move.delta == pytest.approx(golden["delta"], abs=0.01)
        assert move.cost_after == pytest.approx(golden["cost_after"], abs=0.02)

    def test_first_move_goes_from_group4_to_group2(self, cds_result, drp_result):
        move = cds_result.moves[0]
        origin_ids = drp_result.allocation.as_id_lists()[move.origin]
        dest_ids = drp_result.allocation.as_id_lists()[move.destination]
        assert set(origin_ids) == {"d10", "d13", "d4", "d8"}
        assert set(dest_ids) == {"d6", "d5", "d15"}

    def test_second_move_is_d12_with_delta_045(self, cds_result):
        golden = PAPER_GOLDENS["cds_moves"][1]
        move = cds_result.moves[1]
        assert move.item_id == golden["item"]
        assert move.delta == pytest.approx(golden["delta"], abs=0.01)
        assert move.cost_after == pytest.approx(golden["cost_after"], abs=0.02)

    def test_local_optimum_cost_table4d(self, cds_result):
        assert cds_result.cost == pytest.approx(PAPER_CDS_COST, abs=0.02)

    def test_local_optimum_grouping_table4d(self, cds_result):
        groups = {tuple(sorted(g)) for g in cds_result.allocation.as_id_lists()}
        expected = {tuple(sorted(g)) for g in PAPER_CDS_GROUPS}
        assert groups == expected

    def test_cds_converged(self, cds_result):
        assert cds_result.converged


class TestPaperConsistencyNote:
    def test_max_cost_policy_diverges_from_example(self, db):
        """Documents the paper's listing-vs-example discrepancy.

        Under the listing's max-cost rule the 4th split must take the
        7.26 group, producing a different grouping than Table 3(d).
        """
        listing = drp_allocate(db, PAPER_NUM_CHANNELS, split_policy="max-cost")
        example_groups = {tuple(sorted(g)) for g in PAPER_DRP_GROUPS}
        listing_groups = {
            tuple(sorted(g)) for g in listing.allocation.as_id_lists()
        }
        assert listing_groups != example_groups
        # Both are valid DRP outputs with nearby costs.
        assert listing.cost == pytest.approx(
            PAPER_GOLDENS["max_cost_policy_cost"], abs=0.02
        )
