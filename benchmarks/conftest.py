"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper.
Series tables are printed to stdout *and* written to
``benchmarks/results/<name>.txt`` so a ``--benchmark-only`` run leaves
a complete, inspectable record of the reproduction.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.baselines  # noqa: F401  (registers allocators)
from repro.workloads.generator import WorkloadSpec, generate_database

RESULTS_DIR = Path(__file__).parent / "results"


def save_report(name: str, text: str) -> None:
    """Persist a regenerated table and echo it to the console."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def standard_workload():
    """The mid-range workload used by single-point timing benches."""
    return generate_database(
        WorkloadSpec(num_items=120, skewness=0.8, diversity=1.5, seed=99)
    )


@pytest.fixture(scope="session")
def small_workload():
    return generate_database(
        WorkloadSpec(num_items=60, skewness=0.8, diversity=1.5, seed=99)
    )


@pytest.fixture(scope="session")
def large_workload():
    return generate_database(
        WorkloadSpec(num_items=180, skewness=0.8, diversity=1.5, seed=99)
    )
