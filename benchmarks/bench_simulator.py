"""Substrate benchmark: discrete-event simulator throughput + validation.

Not a paper figure — this measures the event kernel's request
throughput and re-validates the analytical model (Eq. 2) against
measured waiting times under benchmark conditions.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.analysis.tables import format_table
from repro.core.scheduler import make_allocator
from repro.simulation.simulator import run_broadcast_simulation


@pytest.fixture(scope="module")
def allocation(request):
    database = request.getfixturevalue("small_workload")
    return make_allocator("drp-cds").allocate(database, 5).allocation


def test_simulator_throughput(benchmark, allocation):
    report = benchmark.pedantic(
        run_broadcast_simulation,
        args=(allocation,),
        kwargs={"num_requests": 20000, "seed": 0},
        rounds=3,
        iterations=1,
    )
    assert report.events_processed == 40000


def test_model_validation_report(benchmark, allocation):
    def validate():
        rows = []
        for seed in range(3):
            report = run_broadcast_simulation(
                allocation, num_requests=20000, seed=seed
            )
            rows.append(
                (
                    seed,
                    report.measured.mean,
                    report.analytical_waiting_time,
                    report.relative_error * 100,
                )
            )
        return rows

    rows = benchmark.pedantic(validate, rounds=1, iterations=1)
    report = format_table(
        ["seed", "measured W_b", "analytical W_b", "error %"],
        rows,
        title="DES validation of the Eq. (2) waiting-time model",
    )
    save_report("simulator_validation", report)
    for _, _, _, error in rows:
        assert error < 3.0
