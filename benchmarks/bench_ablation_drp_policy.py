"""Ablation: DRP split-selection policy (max-cost vs max-reduction).

The paper's algorithm listing keys the priority queue on group cost;
its worked example follows a max-reduction rule (see repro.core.drp).
This bench quantifies the difference on random workloads: both before
and after CDS refinement the two policies land within a fraction of a
percent of each other — the discrepancy in the paper is immaterial.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.analysis.tables import format_table
from repro.core.cds import cds_refine
from repro.core.drp import drp_allocate
from repro.workloads.generator import WorkloadSpec, generate_database


def compare_policies(seeds, num_items=120, num_channels=7):
    rows = []
    for seed in seeds:
        database = generate_database(
            WorkloadSpec(num_items=num_items, seed=seed)
        )
        cells = [seed]
        for policy in ("max-cost", "max-reduction"):
            rough = drp_allocate(database, num_channels, split_policy=policy)
            refined = cds_refine(rough.allocation)
            cells.extend([rough.cost, refined.cost])
        rows.append(tuple(cells))
    return rows


def test_drp_policy_ablation(benchmark):
    rows = benchmark.pedantic(
        compare_policies, args=(range(5),), rounds=1, iterations=1
    )
    report = format_table(
        [
            "seed",
            "max-cost DRP",
            "max-cost +CDS",
            "max-reduction DRP",
            "max-reduction +CDS",
        ],
        rows,
        title="Ablation: DRP split policy (cost, lower is better)",
    )
    save_report("ablation_drp_policy", report)

    # After CDS the two policies agree within 2%.
    for _, _, cost_a, _, cost_b in rows:
        assert abs(cost_a - cost_b) / min(cost_a, cost_b) < 0.02


@pytest.mark.parametrize("policy", ["max-cost", "max-reduction"])
def test_drp_policy_runtime(benchmark, standard_workload, policy):
    result = benchmark(
        drp_allocate, standard_workload, 7, split_policy=policy
    )
    assert result.allocation.num_channels == 7
