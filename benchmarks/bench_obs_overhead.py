"""Overhead benchmark for the observability layer.

Measures three things and writes ``BENCH_obs.json`` at the repository
root:

1. **Disabled overhead** — a DRP+CDS workload with the no-op tracer and
   registry installed versus the same workload with instrumentation
   enabled; the disabled run must be within 5% of a hypothetical
   uninstrumented run (approximated by per-span no-op cost x spans per
   run, the same budget ``tests/test_obs_integration.py`` enforces).
2. **Per-span cost** — the raw price of ``with obs.span(...)`` on the
   no-op path and on the collecting path.
3. **Enabled tracing cost** — how much a fully traced run pays, for the
   docs' "tracing is cheap but not free" claim.
4. **Live-path cost** — the disabled price of the heartbeat factory,
   the enabled price of a (throttled) ``Heartbeat.beat`` call, and a
   metrics-enabled workload with the OpenMetrics endpoint serving
   versus the same workload without it.

Run standalone (CI uses the defaults)::

    python benchmarks/bench_obs_overhead.py [--items 120] [--channels 7]
                                            [--repeats 20]
                                            [--output BENCH_obs.json]

or via ``make bench-obs``.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs
from repro.core.cds import cds_refine
from repro.core.drp import drp_allocate
from repro.workloads.generator import WorkloadSpec, generate_database

SCHEMA_VERSION = 2
DEFAULT_ITEMS = 120
DEFAULT_CHANNELS = 7
DEFAULT_REPEATS = 20
DEFAULT_SEED = 7

#: Spans a DRP+CDS run opens (drp.allocate + cds.refine).
SPANS_PER_RUN = 2


def _time_workload(database, channels: int, repeats: int) -> float:
    """Median seconds of one DRP+CDS run over ``repeats`` samples."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        rough = drp_allocate(database, channels)
        cds_refine(rough.allocation)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _time_noop_span(iterations: int = 50_000) -> float:
    """Seconds per ``with obs.span(...)`` on the current tracer."""
    start = time.perf_counter()
    for _ in range(iterations):
        with obs.span("bench.noop", items=1, channels=1):
            pass
    return (time.perf_counter() - start) / iterations


def _time_disabled_heartbeat(iterations: int = 50_000) -> float:
    """Seconds per ``obs.heartbeat(...)`` factory call when disabled.

    Hot loops call the factory once and then guard on ``hb is not
    None`` per iteration, so the factory is the whole disabled cost.
    """
    start = time.perf_counter()
    for _ in range(iterations):
        obs.heartbeat("bench.hb", rates=("x",))
    return (time.perf_counter() - start) / iterations


def _time_heartbeat_beat(iterations: int = 50_000) -> float:
    """Seconds per ``Heartbeat.beat`` with metrics enabled.

    Almost every call hits the throttle check and returns; the
    occasional emit (every 0.25s) is amortised into the figure, which
    is exactly what a hot loop pays.
    """
    heartbeat = obs.heartbeat("bench.hb", rates=("x",))
    assert heartbeat is not None
    start = time.perf_counter()
    for index in range(iterations):
        heartbeat.beat(x=index)
    return (time.perf_counter() - start) / iterations


def run_benchmark(
    *,
    items: int = DEFAULT_ITEMS,
    channels: int = DEFAULT_CHANNELS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
) -> dict:
    database = generate_database(
        WorkloadSpec(num_items=items, skewness=0.8, seed=seed)
    )

    obs.reset()
    _time_workload(database, channels, 3)  # warm-up
    disabled_run = _time_workload(database, channels, repeats)
    disabled_span = _time_noop_span()
    disabled_heartbeat = _time_disabled_heartbeat()

    obs.configure(trace=True, metrics=True)
    enabled_run = _time_workload(database, channels, repeats)
    spans_recorded = len(obs.get_tracer().records)
    enabled_span = _time_noop_span()
    enabled_beat = _time_heartbeat_beat()
    obs.reset()

    # Live path: the same metrics-enabled workload with and without the
    # OpenMetrics endpoint serving in the background.
    obs.configure(metrics=True)
    metrics_only_run = _time_workload(database, channels, repeats)
    obs.start_metrics_server(0)
    live_server_run = _time_workload(database, channels, repeats)
    obs.reset()

    disabled_overhead = SPANS_PER_RUN * disabled_span
    disabled_overhead_pct = disabled_overhead / disabled_run * 100.0
    enabled_overhead_pct = (enabled_run - disabled_run) / disabled_run * 100.0

    return {
        "schema": SCHEMA_VERSION,
        "benchmark": "obs_overhead",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "config": {
            "items": items,
            "channels": channels,
            "repeats": repeats,
            "seed": seed,
            "spans_per_run": SPANS_PER_RUN,
        },
        "workload_seconds": {
            "disabled": disabled_run,
            "enabled": enabled_run,
            "metrics_only": metrics_only_run,
            "live_server": live_server_run,
        },
        "span_seconds": {
            "noop": disabled_span,
            "collecting": enabled_span,
        },
        "heartbeat_seconds": {
            "disabled_factory": disabled_heartbeat,
            "enabled_beat": enabled_beat,
        },
        "live_server_overhead_percent": (
            (live_server_run - metrics_only_run) / metrics_only_run * 100.0
        ),
        "disabled_overhead_percent": disabled_overhead_pct,
        "enabled_overhead_percent": enabled_overhead_pct,
        "spans_recorded_enabled": spans_recorded,
        "budget": {
            "disabled_overhead_limit_percent": 5.0,
            "within_budget": disabled_overhead_pct < 5.0,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="measure observability overhead (disabled and enabled)"
    )
    parser.add_argument("--items", type=int, default=DEFAULT_ITEMS)
    parser.add_argument("--channels", type=int, default=DEFAULT_CHANNELS)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_obs.json")
    )
    args = parser.parse_args(argv)
    result = run_benchmark(
        items=args.items,
        channels=args.channels,
        repeats=args.repeats,
        seed=args.seed,
    )
    Path(args.output).write_text(json.dumps(result, indent=2, sort_keys=True))
    print(
        "disabled: {:.3f}ms/run, no-op span {:.0f}ns "
        "(overhead {:.3f}% of run, budget 5%)".format(
            result["workload_seconds"]["disabled"] * 1e3,
            result["span_seconds"]["noop"] * 1e9,
            result["disabled_overhead_percent"],
        )
    )
    print(
        "enabled:  {:.3f}ms/run, collecting span {:.0f}ns "
        "({:+.1f}% vs disabled, {} spans)".format(
            result["workload_seconds"]["enabled"] * 1e3,
            result["span_seconds"]["collecting"] * 1e9,
            result["enabled_overhead_percent"],
            result["spans_recorded_enabled"],
        )
    )
    print(
        "live:     heartbeat factory {:.0f}ns disabled / beat {:.0f}ns "
        "enabled, /metrics endpoint {:+.1f}% on a metrics run".format(
            result["heartbeat_seconds"]["disabled_factory"] * 1e9,
            result["heartbeat_seconds"]["enabled_beat"] * 1e9,
            result["live_server_overhead_percent"],
        )
    )
    print(f"wrote {args.output}")
    if not result["budget"]["within_budget"]:
        print("FAIL: disabled overhead exceeds the 5% budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
