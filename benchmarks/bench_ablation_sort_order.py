"""Ablation: is the benefit ratio the right dimension reduction?

DRP's whole premise is that sorting by ``br = f/z`` turns the 2-D
grouping problem into a 1-D partitioning problem.  This bench runs the
identical bisection machinery over alternative orders — by frequency,
by size, by ``f·z`` weight, and the catalogue order — and shows the
benefit-ratio order wins (equivalently: loses least to the contiguous
optimum computed in *its own* order).
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.analysis.stats import aggregate
from repro.analysis.tables import format_table
from repro.core.drp import drp_allocate
from repro.workloads.generator import WorkloadSpec, generate_database

ORDERS = ("benefit-ratio", "frequency", "size", "weight", "catalogue")


def _ordered_items(database, order):
    if order == "benefit-ratio":
        return database.sorted_by_benefit_ratio()
    if order == "frequency":
        return database.sorted_by_frequency()
    if order == "size":
        return tuple(
            sorted(database.items, key=lambda i: (-i.size, i.item_id))
        )
    if order == "weight":
        return tuple(
            sorted(database.items, key=lambda i: (-i.weight, i.item_id))
        )
    return database.items  # catalogue


def compare_orders(seeds, num_items=120, num_channels=7):
    costs = {order: [] for order in ORDERS}
    for seed in seeds:
        database = generate_database(
            WorkloadSpec(num_items=num_items, seed=seed)
        )
        for order in ORDERS:
            result = drp_allocate(
                database,
                num_channels,
                presorted_items=_ordered_items(database, order),
            )
            costs[order].append(result.cost)
    return costs


def test_sort_order_ablation(benchmark):
    costs = benchmark.pedantic(
        compare_orders, args=(range(5),), rounds=1, iterations=1
    )
    rows = [
        (order, aggregate(costs[order]).mean, aggregate(costs[order]).std)
        for order in ORDERS
    ]
    report = format_table(
        ["item order", "mean cost", "std"],
        rows,
        title="Ablation: DRP item order (cost, lower is better)",
    )
    save_report("ablation_sort_order", report)

    br_mean = aggregate(costs["benefit-ratio"]).mean
    for order in ORDERS:
        if order == "benefit-ratio":
            continue
        assert br_mean <= aggregate(costs[order]).mean + 1e-9, order
