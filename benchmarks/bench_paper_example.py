"""Tables 2-4: the paper's worked example, timed and verified.

Regenerates the DRP trace (Table 3) and the CDS refinement (Table 4) on
the exact Table 2 profile, asserting the golden costs while measuring
how long the full DRP-CDS pipeline takes on the 15-item instance.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.analysis.tables import format_table
from repro.core.cds import cds_refine
from repro.core.drp import drp_allocate
from repro.workloads.paper_profile import (
    PAPER_CDS_COST,
    PAPER_DRP_COST,
    PAPER_NUM_CHANNELS,
    paper_database,
)


def run_pipeline():
    database = paper_database()
    rough = drp_allocate(
        database, PAPER_NUM_CHANNELS, split_policy="max-reduction"
    )
    refined = cds_refine(rough.allocation)
    return rough, refined


def test_paper_example_pipeline(benchmark):
    rough, refined = benchmark(run_pipeline)
    assert rough.cost == pytest.approx(PAPER_DRP_COST, abs=0.02)
    assert refined.cost == pytest.approx(PAPER_CDS_COST, abs=0.02)

    rows = []
    for index, group in enumerate(refined.allocation.as_id_lists()):
        stats = refined.allocation.channel_stats[index]
        rows.append(
            (
                index + 1,
                " ".join(group),
                stats.frequency,
                stats.size,
                stats.cost,
            )
        )
    report = format_table(
        ["channel", "items", "F_i", "Z_i", "cost"],
        rows,
        title=(
            "Tables 2-4 reproduction: DRP cost "
            f"{rough.cost:.2f} (paper 24.09), CDS cost "
            f"{refined.cost:.2f} (paper 22.29)"
        ),
    )
    save_report("paper_example", report)


def test_paper_example_drp_only(benchmark):
    database = paper_database()
    result = benchmark(
        drp_allocate,
        database,
        PAPER_NUM_CHANNELS,
        split_policy="max-reduction",
    )
    assert result.cost == pytest.approx(PAPER_DRP_COST, abs=0.02)


def test_paper_example_cds_only(benchmark):
    database = paper_database()
    rough = drp_allocate(
        database, PAPER_NUM_CHANNELS, split_policy="max-reduction"
    )
    result = benchmark(cds_refine, rough.allocation)
    assert result.cost == pytest.approx(PAPER_CDS_COST, abs=0.02)
