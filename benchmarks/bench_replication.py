"""Extension bench: cross-channel replication sweep (paper's ref [8]).

Sweeps the number of hot items replicated onto every channel, for both
a naive (round-robin) and an optimised (DRP-CDS) starting allocation.
Measured finding, asserted below and documented in docs/extensions.md:

* on the naive program replication shows the classic U-shape — a few
  replicas help, too many bloat the cycles;
* on the DRP-CDS program replication **never** helps: the
  frequency-aware allocation already gives hot items short dedicated
  cycles, subsuming the benefit replication exists to provide.
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.analysis.tables import format_table
from repro.baselines.flat import RoundRobinAllocator
from repro.core.scheduler import DRPCDSAllocator
from repro.simulation.replication import (
    ReplicatedProgram,
    replicate_hot_items,
    simulate_replicated_program,
)
from repro.workloads.generator import WorkloadSpec, generate_database

REPLICA_COUNTS = (0, 1, 2, 4, 6, 8)


def sweep():
    database = generate_database(
        WorkloadSpec(num_items=40, skewness=1.6, diversity=1.0, seed=9)
    )
    allocations = {
        "round-robin": RoundRobinAllocator().allocate(database, 5).allocation,
        "drp-cds": DRPCDSAllocator().allocate(database, 5).allocation,
    }
    rows = []
    for replicas in REPLICA_COUNTS:
        row = [replicas]
        for allocation in allocations.values():
            program = ReplicatedProgram(
                database, replicate_hot_items(allocation, replicas)
            )
            row.append(
                simulate_replicated_program(
                    program, num_requests=15000, seed=2
                ).mean
            )
        rows.append(tuple(row))
    return rows


def test_replication_sweep(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = format_table(
        ["hot replicas", "round-robin W_b", "drp-cds W_b"],
        rows,
        title=(
            "Replicating the r hottest items onto every channel "
            "(N=40, K=5, θ=1.6)"
        ),
        precision=4,
    )
    save_report("replication_sweep", report)

    flat = {r: wait for r, wait, _ in rows}
    optimised = {r: wait for r, _, wait in rows}
    # Naive program: some replication level beats none.
    assert min(flat[r] for r in REPLICA_COUNTS if r > 0) < flat[0]
    # Optimised program: replication never beats the pure partition.
    assert all(
        optimised[r] >= optimised[0] - 1e-9 for r in REPLICA_COUNTS
    )
    # And the un-replicated DRP-CDS program beats even the best
    # replicated flat program — allocation quality dominates.
    assert optimised[0] < min(flat.values())
