"""Reproducible perf harness for the parallel execution layer.

Times two things and writes ``BENCH_runner.json`` at the repository
root (the runner-layer companion of ``BENCH_core.json``):

1. **Experiment fan-out** — one multi-replication sweep executed
   serially and with ``run_experiment(..., workers=N)``, asserting the
   aggregated rows are identical (wall-clock ``elapsed`` aggregates
   excepted) and recording the wall-clock speedup.  The speedup scales
   with available cores — ``config.cpu_count`` is recorded precisely so
   a number measured on a 1-CPU CI runner is not misread.
2. **Batched simulation** — the discrete-event engine against the
   vectorized closed-form path at N clients (default 10 000), asserting
   bitwise-identical measured statistics and recording the speedup.

Run standalone (CI smoke run uses ``--replications 2 --requests 2000``)::

    python benchmarks/bench_parallel.py [--workers 4] [--replications 6]
                                        [--requests 10000]
                                        [--output BENCH_runner.json]

or via ``make bench-parallel``.  A pytest-benchmark smoke wrapper at
the bottom keeps the comparison in the ``make bench`` record.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.scheduler import DRPCDSAllocator
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.simulation.simulator import run_broadcast_simulation
from repro.workloads.generator import WorkloadSpec, generate_database

SCHEMA_VERSION = 1
DEFAULT_WORKERS = 4
DEFAULT_REPLICATIONS = 6
DEFAULT_REQUESTS = 10_000
DEFAULT_SEED = 7

#: The timed sweep: a figure-2-shaped channel sweep with the full paper
#: line-up (GOPT dominates per-cell cost, giving the fan-out real work).
BENCH_SWEEP_VALUES = (4.0, 7.0, 10.0)
BENCH_ALGORITHMS = ("vfk", "drp", "drp-cds", "gopt")


def _strip_elapsed(rows):
    """Rows with the wall-clock aggregates zeroed — the only fields a
    parallel run is *allowed* to differ in."""
    return [
        dataclasses.replace(
            row, mean_elapsed_seconds=0.0, std_elapsed_seconds=0.0
        )
        for row in rows
    ]


def bench_runner(workers: int, replications: int) -> dict:
    """Serial vs fan-out wall clock on one multi-replication sweep."""
    config = ExperimentConfig(
        name="bench-parallel",
        description="fan-out benchmark sweep",
        sweep_parameter="num_channels",
        sweep_values=BENCH_SWEEP_VALUES,
        algorithms=BENCH_ALGORITHMS,
        num_items=120,
        replications=replications,
    )
    start = time.perf_counter()
    serial = run_experiment(config)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_experiment(config, workers=workers)
    parallel_seconds = time.perf_counter() - start

    identical = _strip_elapsed(serial.rows) == _strip_elapsed(parallel.rows)
    assert identical, "parallel rows diverged from serial — bug"
    assert not serial.errors and not parallel.errors
    from repro.experiments.parallel import auto_workers

    return {
        "sweep_values": list(BENCH_SWEEP_VALUES),
        "algorithms": list(BENCH_ALGORITHMS),
        "replications": replications,
        "cells": len(BENCH_SWEEP_VALUES) * replications * len(BENCH_ALGORITHMS),
        "workers": workers,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "rows_identical": identical,
        # On a single usable CPU the fan-out cannot beat serial; mark
        # the section so bench-check records the speedup in history but
        # never gates on it (see repro.obs.bench.ENV_LIMITED_FLAG).
        "limited_by_cpu_count": auto_workers() < 2,
    }


def bench_simulation(num_requests: int, seed: int) -> dict:
    """Event-driven engine vs batched fast path at N clients."""
    database = generate_database(
        WorkloadSpec(num_items=120, skewness=0.8, diversity=1.5, seed=seed)
    )
    allocation = DRPCDSAllocator().allocate(database, 7).allocation

    start = time.perf_counter()
    engine = run_broadcast_simulation(
        allocation, num_requests=num_requests, seed=seed, backend="python"
    )
    engine_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = run_broadcast_simulation(
        allocation, num_requests=num_requests, seed=seed, backend="numpy"
    )
    batched_seconds = time.perf_counter() - start

    identical = (
        engine.measured == batched.measured
        and engine.per_item == batched.per_item
    )
    assert identical, "batched metrics diverged from the engine — bug"
    return {
        "num_requests": num_requests,
        "engine_seconds": engine_seconds,
        "batched_seconds": batched_seconds,
        "speedup": engine_seconds / batched_seconds,
        "events_processed_engine": engine.events_processed,
        "measured_mean": engine.measured.mean,
        "metrics_identical": identical,
    }


def run_benchmarks(
    workers: int = DEFAULT_WORKERS,
    replications: int = DEFAULT_REPLICATIONS,
    num_requests: int = DEFAULT_REQUESTS,
    seed: int = DEFAULT_SEED,
) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "benchmarks/bench_parallel.py",
        "config": {
            "workers": workers,
            "replications": replications,
            "num_requests": num_requests,
            "seed": seed,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "runner": bench_runner(workers, replications),
        "simulation": bench_simulation(num_requests, seed),
    }


def _format_report(document: dict) -> str:
    runner = document["runner"]
    sim = document["simulation"]
    cpus = document["config"]["cpu_count"]
    return "\n".join(
        [
            f"experiment fan-out  ({runner['cells']} cells, "
            f"workers={runner['workers']}, {cpus} CPUs)",
            f"  serial    {runner['serial_seconds']:>8.3f} s",
            f"  parallel  {runner['parallel_seconds']:>8.3f} s   "
            f"({runner['speedup']:.2f}x, rows identical: "
            f"{runner['rows_identical']})"
            + (
                "   [limited by cpu count — environment note, not "
                "a regression]"
                if runner.get("limited_by_cpu_count")
                else ""
            ),
            f"batched simulation  (N={sim['num_requests']} requests)",
            f"  engine    {sim['engine_seconds']:>8.3f} s   "
            f"({sim['events_processed_engine']} events)",
            f"  batched   {sim['batched_seconds']:>8.3f} s   "
            f"({sim['speedup']:.1f}x, metrics identical: "
            f"{sim['metrics_identical']})",
        ]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS,
        help="worker processes for the fan-out comparison (default: 4)",
    )
    parser.add_argument(
        "--replications", type=int, default=DEFAULT_REPLICATIONS,
        help="replications per sweep value (default: 6)",
    )
    parser.add_argument(
        "--requests", type=int, default=DEFAULT_REQUESTS,
        help="client requests for the simulation comparison (default: 10000)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_runner.json",
        help="where to write the JSON document (default: repo root)",
    )
    options = parser.parse_args(argv)

    document = run_benchmarks(
        workers=options.workers,
        replications=options.replications,
        num_requests=options.requests,
        seed=options.seed,
    )
    options.output.write_text(json.dumps(document, indent=2) + "\n")
    print(_format_report(document))
    print(f"\nwrote {options.output}")
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark smoke wrapper (keeps `make bench` coverage)
# ----------------------------------------------------------------------
def test_parallel_layer_smoke(benchmark):
    from benchmarks.conftest import save_report

    document = benchmark.pedantic(
        lambda: run_benchmarks(workers=2, replications=2, num_requests=2000),
        rounds=1,
        iterations=1,
    )
    assert document["runner"]["rows_identical"]
    assert document["simulation"]["metrics_identical"]
    assert document["simulation"]["speedup"] > 1.0
    save_report("parallel", _format_report(document))


if __name__ == "__main__":
    raise SystemExit(main())
