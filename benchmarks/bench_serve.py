"""Live-service bench: sketch-based serving vs the exact-counter oracle.

Measures the ``repro serve`` ingestion loop end to end — request
serving, sketch updates, epoch re-estimation, warm re-allocation and
cycle-aligned handover — on a generated drifting stream, once with the
count-min estimator and once with the exact-counter oracle baseline.
Headlines are **ingested requests/second** and **epochs/second**, plus
the sketch's final-epoch allocation-cost ratio against the oracle
(bounded by the 1.02x regression guard in the end-to-end tests) and the
estimator state sizes (the sketch's O(width x depth) vs the oracle's
O(items)).

Run standalone (CI smoke uses ``--requests-per-epoch 300 --epochs 4``)::

    python benchmarks/bench_serve.py [--items 2000] [--epochs 12]
        [--requests-per-epoch 3000] [--output BENCH_serve.json]

or via ``make bench-serve``.  Timings are medians over ``--repeats``
full service runs; both estimator modes consume the identical
pre-materialised stream.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parents[1]

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import BroadcastService, drifting_stream
from repro.service.serve import _cost_under_profile
from repro.workloads.generator import WorkloadSpec, generate_database
from repro.workloads.sketch import CountMinSketch

SCHEMA_VERSION = 1
DEFAULT_ITEMS = 2_000
DEFAULT_CHANNELS = 8
DEFAULT_EPOCHS = 12
DEFAULT_REQUESTS_PER_EPOCH = 3_000
# Long enough that the major broadcast cycle of a 2000-item programme
# fits inside one epoch, so every staged re-allocation actually promotes
# (handovers ~ epochs) instead of being replaced while pending.
DEFAULT_EPOCH_SECONDS = 600.0
DEFAULT_WIDTH = 1024
DEFAULT_DEPTH = 4
DEFAULT_REPEATS = 3
DEFAULT_SEED = 7


def _median(samples: List[float]) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def _run_once(sizes, database, records, *, channels, epoch_seconds, sketch):
    service = BroadcastService(
        sizes,
        channels,
        epoch_seconds=epoch_seconds,
        sketch=sketch,
        initial_database=database,
    )
    start = time.perf_counter()
    reports = service.run(iter(records))
    elapsed = time.perf_counter() - start
    return service, reports, elapsed


def run_benchmarks(
    num_items: int = DEFAULT_ITEMS,
    num_channels: int = DEFAULT_CHANNELS,
    epochs: int = DEFAULT_EPOCHS,
    requests_per_epoch: int = DEFAULT_REQUESTS_PER_EPOCH,
    epoch_seconds: float = DEFAULT_EPOCH_SECONDS,
    sketch_width: int = DEFAULT_WIDTH,
    sketch_depth: int = DEFAULT_DEPTH,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
) -> dict:
    """Time sketch vs exact-oracle service runs; return the BENCH doc."""
    database = generate_database(
        WorkloadSpec(num_items=num_items, skewness=1.2, seed=seed)
    )
    sizes = {item.item_id: item.size for item in database.items}
    half_life = 2.0 * epoch_seconds
    records = list(
        drifting_stream(
            database,
            epochs=epochs,
            requests_per_epoch=requests_per_epoch,
            epoch_seconds=epoch_seconds,
            seed=seed,
        )
    )
    variants = {
        "sketch": lambda: CountMinSketch(
            sketch_width, sketch_depth, half_life=half_life
        ),
        "exact": lambda: CountMinSketch(1, 1, half_life=half_life, exact=True),
    }
    rows = {}
    finals = {}
    for name, make_sketch in variants.items():
        samples: List[float] = []
        service = reports = None
        for _ in range(repeats):
            service, reports, elapsed = _run_once(
                sizes,
                database,
                records,
                channels=num_channels,
                epoch_seconds=epoch_seconds,
                sketch=make_sketch(),
            )
            samples.append(elapsed)
        seconds = _median(samples)
        rows[name] = {
            "estimator": name,
            "n": num_items,
            "k": num_channels,
            "epochs": len(reports),
            "requests": len(records),
            "seconds": seconds,
            "requests_per_second": len(records) / seconds,
            "epochs_per_second": len(reports) / seconds,
            "handovers": len(service.live.handovers),
            "estimator_state": service.sketch.state_size,
            "modes": _mode_counts(reports),
        }
        finals[name] = service
    # Judge both final allocations under the oracle's exact belief —
    # the same yardstick as tests/test_serve.py.
    truth = finals["exact"].profile()
    sketch_cost = _cost_under_profile(
        finals["sketch"].live.allocation, truth
    )
    oracle_cost = _cost_under_profile(finals["exact"].live.allocation, truth)
    results = [rows["sketch"], rows["exact"]]
    results[0]["final_cost_ratio_vs_exact"] = sketch_cost / oracle_cost
    results[0]["state_ratio_vs_exact"] = (
        rows["sketch"]["estimator_state"] / rows["exact"]["estimator_state"]
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "benchmarks/bench_serve.py",
        "config": {
            "num_items": num_items,
            "num_channels": num_channels,
            "epochs": epochs,
            "requests_per_epoch": requests_per_epoch,
            "epoch_seconds": epoch_seconds,
            "sketch_width": sketch_width,
            "sketch_depth": sketch_depth,
            "repeats": repeats,
            "seed": seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "results": results,
    }


def _mode_counts(reports) -> dict:
    modes: dict = {}
    for report in reports:
        modes[report.allocation_mode] = modes.get(report.allocation_mode, 0) + 1
    return modes


def _format_report(document: dict) -> str:
    lines = [
        f"{'estimator':>9}  {'req/s':>10}  {'epochs/s':>9}  "
        f"{'state':>9}  {'handovers':>9}"
    ]
    for row in document["results"]:
        lines.append(
            f"{row['estimator']:>9}  "
            f"{row['requests_per_second']:>10.0f}  "
            f"{row['epochs_per_second']:>9.2f}  "
            f"{row['estimator_state']:>9}  "
            f"{row['handovers']:>9}"
        )
    sketch_row = document["results"][0]
    lines.append(
        f"final cost ratio vs exact oracle: "
        f"{sketch_row['final_cost_ratio_vs_exact']:.4f} "
        f"(state {sketch_row['state_ratio_vs_exact']:.2f}x of exact)"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--items", type=int, default=DEFAULT_ITEMS,
        help="catalogue size N (default: 2000)",
    )
    parser.add_argument(
        "--channels", type=int, default=DEFAULT_CHANNELS,
        help="channel count K (default: 8)",
    )
    parser.add_argument(
        "--epochs", type=int, default=DEFAULT_EPOCHS,
        help="stream length in epochs (default: 12)",
    )
    parser.add_argument(
        "--requests-per-epoch", type=int, default=DEFAULT_REQUESTS_PER_EPOCH,
        help="request volume per epoch (default: 3000)",
    )
    parser.add_argument(
        "--sketch-width", type=int, default=DEFAULT_WIDTH,
        help="count-min width (default: 1024)",
    )
    parser.add_argument(
        "--sketch-depth", type=int, default=DEFAULT_DEPTH,
        help="count-min depth (default: 4)",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS,
        help="timed service runs per estimator; median wins (default: 3)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_serve.json",
        help="where to write the JSON document (default: repo root)",
    )
    options = parser.parse_args(argv)

    document = run_benchmarks(
        num_items=options.items,
        num_channels=options.channels,
        epochs=options.epochs,
        requests_per_epoch=options.requests_per_epoch,
        sketch_width=options.sketch_width,
        sketch_depth=options.sketch_depth,
        repeats=options.repeats,
        seed=options.seed,
    )
    options.output.write_text(json.dumps(document, indent=2) + "\n")
    print(_format_report(document))
    print(f"\nwrote {options.output}")
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark wrappers (keep `make bench` coverage)
# ----------------------------------------------------------------------
def test_serve_ingest_smoke(benchmark):
    """Small smoke of the BENCH_serve harness: sketch serving works and
    stays within the regression guard of the exact oracle."""
    from benchmarks.conftest import save_report

    document = benchmark.pedantic(
        lambda: run_benchmarks(
            num_items=300,
            epochs=4,
            requests_per_epoch=400,
            repeats=1,
        ),
        rounds=1,
        iterations=1,
    )
    sketch_row = document["results"][0]
    assert sketch_row["requests_per_second"] > 0
    assert sketch_row["final_cost_ratio_vs_exact"] <= 1.02 + 1e-9
    save_report("serve_ingest", _format_report(document))


if __name__ == "__main__":
    raise SystemExit(main())
