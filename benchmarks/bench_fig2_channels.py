"""Figure 2: channel number K vs average waiting time.

Sweeps K = 4..10 with the paper's algorithm line-up (VF^K, DRP,
DRP-CDS, GOPT) and prints/stores the regenerated series.  Expected
shape (paper §4.2): waiting time decreases in K for every algorithm,
VF^K's gap to GOPT widens with K, DRP-CDS stays within a few percent of
GOPT, and DRP alone nearly matches DRP-CDS at K = 2^n.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.core.scheduler import make_allocator
from repro.experiments.figures import figure2
from repro.experiments.runner import run_experiment


def test_figure2_series(benchmark):
    config = figure2().scaled_down(replications=3)
    result = benchmark.pedantic(
        run_experiment, args=(config,), rounds=1, iterations=1
    )
    save_report("figure2", result.to_text("mean_waiting_time"))

    for value in result.sweep_values():
        gopt = result.cell(value, "gopt").mean_waiting_time
        vfk = result.cell(value, "vfk").mean_waiting_time
        drpcds = result.cell(value, "drp-cds").mean_waiting_time
        assert vfk >= gopt
        assert drpcds >= gopt - 1e-12
        # DRP-CDS within a few percent of the optimum proxy.
        assert (drpcds - gopt) / gopt < 0.06
    # Waiting time decreases in K (endpoints).
    for algorithm in result.algorithms:
        series = result.series(algorithm)
        assert series[-1][1] < series[0][1]


@pytest.mark.parametrize("num_channels", [4, 7, 10])
def test_drp_cds_runtime_vs_channels(benchmark, standard_workload, num_channels):
    allocator = make_allocator("drp-cds")
    outcome = benchmark(allocator.allocate, standard_workload, num_channels)
    assert outcome.allocation.num_channels == num_channels


@pytest.mark.parametrize("num_channels", [4, 10])
def test_vfk_runtime_vs_channels(benchmark, standard_workload, num_channels):
    allocator = make_allocator("vfk")
    outcome = benchmark(allocator.allocate, standard_workload, num_channels)
    assert outcome.allocation.num_channels == num_channels
