"""Extension bench: heterogeneous channel bandwidths.

Quantifies what the bandwidth-aware pipeline (DESIGN.md §6) buys over
the paper's homogeneous pipeline when channel capacities differ, and
times the bandwidth-aware refinement.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.analysis.tables import format_table
from repro.core.hetero import (
    HeteroDRPCDSAllocator,
    hetero_cds_refine,
    hetero_waiting_time,
)
from repro.core.drp import drp_allocate
from repro.core.scheduler import DRPCDSAllocator
from repro.workloads.generator import WorkloadSpec, generate_database

BANDWIDTHS = [25.0, 10.0, 10.0, 5.0, 5.0, 5.0]


def compare(seeds, num_items=90):
    rows = []
    for seed in seeds:
        database = generate_database(
            WorkloadSpec(num_items=num_items, seed=seed)
        )
        naive = DRPCDSAllocator().allocate(
            database, len(BANDWIDTHS)
        ).allocation
        aware = (
            HeteroDRPCDSAllocator(BANDWIDTHS)
            .allocate(database, len(BANDWIDTHS))
            .allocation
        )
        naive_wait = hetero_waiting_time(naive, BANDWIDTHS)
        aware_wait = hetero_waiting_time(aware, BANDWIDTHS)
        rows.append(
            (
                seed,
                naive_wait,
                aware_wait,
                (naive_wait - aware_wait) / naive_wait * 100,
            )
        )
    return rows


def test_hetero_vs_homogeneous_pipeline(benchmark):
    rows = benchmark.pedantic(compare, args=(range(4),), rounds=1, iterations=1)
    report = format_table(
        ["seed", "paper pipeline W_b", "bandwidth-aware W_b", "saved (%)"],
        rows,
        title=(
            "Heterogeneous bandwidths "
            f"{BANDWIDTHS}: homogeneous vs bandwidth-aware pipeline"
        ),
        precision=3,
    )
    save_report("hetero_pipeline", report)
    for _, naive_wait, aware_wait, _ in rows:
        assert aware_wait <= naive_wait + 1e-9


def test_hetero_cds_runtime(benchmark, standard_workload):
    bandwidths = [40.0, 20.0, 10.0, 10.0, 5.0, 5.0, 2.5]
    rough = drp_allocate(standard_workload, len(bandwidths)).allocation
    result = benchmark(hetero_cds_refine, rough, bandwidths)
    assert result.converged


@pytest.mark.parametrize("spread", ["flat", "steep"])
def test_hetero_allocator_runtime(benchmark, standard_workload, spread):
    bandwidths = (
        [10.0] * 7 if spread == "flat" else [40.0, 20.0, 10.0, 5.0, 2.5, 2.5, 2.5]
    )
    allocator = HeteroDRPCDSAllocator(bandwidths)
    outcome = benchmark(allocator.allocate, standard_workload, 7)
    assert outcome.allocation.num_channels == 7
