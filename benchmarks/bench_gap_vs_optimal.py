"""The paper's global-optimum comparison, with exact ground truth.

Section 4 of the paper claims the DRP-CDS local optimum is "very close
to the global optimum", measured against GOPT (itself a GA suboptimum).
This bench strengthens the claim: on brute-forceable instances it
measures the *true* gap of every algorithm against exhaustive
enumeration, and times the exact solver to show why the paper could not
do this at N = 60–180 (the search space is the Stirling number
S(N, K) — S(15, 5) alone is ~2.1 × 10^8, S(60, 7) exceeds 10^45).
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.analysis.tables import format_table
from repro.baselines.exact import brute_force_optimal, stirling2
from repro.experiments.gap import run_gap_experiment
from repro.workloads.generator import WorkloadSpec, generate_database


def test_true_optimality_gaps(benchmark):
    reports = benchmark.pedantic(
        run_gap_experiment,
        kwargs=dict(num_items=10, num_channels=3, instances=8),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            report.algorithm,
            report.summary.mean * 100,
            report.worst * 100,
            f"{report.exact_hits}/{len(report.gaps)}",
        )
        for report in reports
    ]
    report_text = format_table(
        ["algorithm", "mean gap (%)", "worst gap (%)", "exact"],
        rows,
        title=(
            "True optimality gaps, 8 instances, N=10, K=3 "
            "(brute-force ground truth)"
        ),
        precision=3,
    )
    save_report("gap_vs_optimal", report_text)

    by_name = {r.algorithm: r for r in reports}
    # The paper's claim, exactly quantified: DRP-CDS within a few
    # percent of the true optimum; VF^K far behind.
    assert by_name["drp-cds"].summary.mean < 0.03
    assert by_name["vfk"].summary.mean > by_name["drp-cds"].summary.mean
    assert by_name["gopt"].summary.mean <= by_name["drp-cds"].summary.mean + 1e-9


def test_brute_force_runtime(benchmark):
    """Why exhaustive search is hopeless at paper scale: time S(11, 4)."""
    database = generate_database(WorkloadSpec(num_items=11, seed=0))
    _, cost = benchmark.pedantic(
        brute_force_optimal, args=(database, 4), rounds=1, iterations=1
    )
    assert cost > 0
    # The search-space explosion the timing extrapolates to:
    assert stirling2(11, 4) == 145_750
    assert stirling2(60, 7) > 10 ** 45
