"""Extension bench: frequency-estimator accuracy.

How much trace does the server need before an estimated profile yields
a near-truth program?  Sweeps trace length (L1 error should shrink like
1/sqrt(n)) and compares the count vs decay estimators under drift.
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.analysis.tables import format_table
from repro.core.allocation import ChannelAllocation
from repro.core.cost import allocation_cost
from repro.core.scheduler import DRPCDSAllocator
from repro.workloads.estimator import (
    CountEstimator,
    DecayEstimator,
    estimate_database,
    profile_l1_error,
)
from repro.workloads.generator import WorkloadSpec, generate_database
from repro.workloads.trace import synthesize_trace

TRACE_LENGTHS = (200, 1000, 5000, 25000)


def accuracy_sweep():
    database = generate_database(WorkloadSpec(num_items=80, seed=4))
    sizes = {item.item_id: item.size for item in database.items}
    truth = {item.item_id: item.frequency for item in database.items}
    allocator = DRPCDSAllocator()
    truth_cost = allocator.allocate(database, 6).cost
    rows = []
    for length in TRACE_LENGTHS:
        trace = synthesize_trace(database, length, seed=1)
        estimated = estimate_database(
            trace, sizes, estimator=CountEstimator(smoothing=0.5)
        )
        profile = {
            item.item_id: item.frequency for item in estimated.items
        }
        error = profile_l1_error(profile, truth)
        # Allocation built from the estimate, scored under the truth.
        allocation = allocator.allocate(estimated, 6).allocation
        under_truth = allocation_cost(
            ChannelAllocation(
                database,
                [
                    [database[i.item_id] for i in group]
                    for group in allocation.channels
                ],
            )
        )
        rows.append(
            (
                length,
                error,
                under_truth,
                (under_truth - truth_cost) / truth_cost * 100,
            )
        )
    return rows, truth_cost


def test_estimator_accuracy_vs_trace_length(benchmark):
    rows, truth_cost = benchmark.pedantic(
        accuracy_sweep, rounds=1, iterations=1
    )
    report = format_table(
        ["trace length", "L1 error", "cost under truth", "vs oracle (%)"],
        rows,
        title=(
            "Profile estimation: trace length vs allocation quality "
            f"(oracle cost {truth_cost:.3f})"
        ),
        precision=4,
    )
    save_report("estimator_accuracy", report)

    errors = [error for _, error, _, _ in rows]
    assert errors[-1] < errors[0]  # more data, better profile
    # With 25k requests the allocation is within 2% of the oracle.
    assert rows[-1][3] < 2.0


def test_decay_beats_counts_under_drift(benchmark):
    """After a popularity flip, the decayed estimator tracks the new
    regime while plain counts stay anchored to history."""
    database = generate_database(WorkloadSpec(num_items=40, seed=5))
    ids = list(database.item_ids)
    old_profile = [item.frequency for item in database.items]
    new_profile = list(reversed(old_profile))  # popularity flipped

    def run():
        from repro.workloads.trace import RequestTrace

        early = synthesize_trace(
            database, 4000, seed=2, probabilities=old_profile
        )
        late = synthesize_trace(
            database, 4000, seed=3, probabilities=new_profile
        )
        merged = RequestTrace()
        for record in early:
            merged.record(record.timestamp, record.item_id)
        offset = merged[len(merged) - 1].timestamp
        for record in late:
            merged.record(offset + record.timestamp, record.item_id)
        truth = dict(zip(ids, new_profile))
        count_est = CountEstimator(smoothing=0.5).estimate(merged, ids)
        decay_est = DecayEstimator(
            half_life=offset / 8, smoothing=0.5
        ).estimate(merged, ids)
        return (
            profile_l1_error(count_est, truth),
            profile_l1_error(decay_est, truth),
        )

    count_error, decay_error = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    save_report(
        "estimator_drift",
        format_table(
            ["estimator", "L1 error vs post-drift truth"],
            [("count", count_error), ("decay", decay_error)],
            title="Estimators after a popularity flip (same merged trace)",
        ),
    )
    assert decay_error < count_error
