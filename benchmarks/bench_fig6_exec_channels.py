"""Figure 6: channel number K vs execution time.

The complexity comparison between DRP-CDS and GOPT as K varies.
Expected shape (paper §4.5): GOPT's execution time dwarfs DRP-CDS's at
every K, and K affects GOPT only mildly (K changes the gene alphabet,
not the chromosome length).

Absolute times differ from the paper's 2005 Java numbers; the relative
shape is the reproduction target (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.core.scheduler import make_allocator
from repro.experiments.figures import figure6
from repro.experiments.runner import run_experiment


def test_figure6_series(benchmark):
    config = figure6()
    result = benchmark.pedantic(
        run_experiment, args=(config,), rounds=1, iterations=1
    )
    save_report("figure6", result.to_text("mean_elapsed_seconds", precision=5))

    # GOPT massively slower at every K (loose factor absorbs timing
    # noise on cold first runs; typical ratios are 15-80x).
    for value in result.sweep_values():
        drpcds = result.cell(value, "drp-cds").mean_elapsed_seconds
        gopt = result.cell(value, "gopt").mean_elapsed_seconds
        assert gopt > 4 * drpcds


@pytest.mark.parametrize("num_channels", [4, 7, 10])
def test_gopt_runtime_vs_channels(benchmark, standard_workload, num_channels):
    allocator = make_allocator("gopt")
    benchmark.pedantic(
        allocator.allocate,
        args=(standard_workload, num_channels),
        rounds=2,
        iterations=1,
    )


@pytest.mark.parametrize("num_channels", [4, 7, 10])
def test_drp_runtime_vs_channels(benchmark, standard_workload, num_channels):
    allocator = make_allocator("drp")
    outcome = benchmark(allocator.allocate, standard_workload, num_channels)
    assert outcome.allocation.num_channels == num_channels
