"""Extension bench: push vs pull broadcasting across load levels.

The paper's footnote 1 situates its push-based problem next to
on-demand (pull) broadcast [2].  This bench makes the folklore
comparison concrete on diverse data: at the same aggregate bandwidth,
a pull server (RxW batching) dominates when requests are sparse, while
the push program's load-independent `W_b` wins once the air saturates.
Also compares the on-demand policies on the diverse catalogue, where
the size-aware RxW variant shines.
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.analysis.tables import format_table
from repro.core.scheduler import DRPCDSAllocator
from repro.simulation.ondemand import (
    FCFSPolicy,
    MRFPolicy,
    RxWPolicy,
    SizeAwareRxWPolicy,
    compare_push_pull,
    simulate_on_demand,
)
from repro.workloads.generator import WorkloadSpec, generate_database

RATES = (0.1, 1.0, 10.0, 50.0, 200.0)


def crossover():
    database = generate_database(
        WorkloadSpec(num_items=60, skewness=1.0, diversity=1.5, seed=3)
    )
    allocation = DRPCDSAllocator().allocate(database, 4).allocation
    return compare_push_pull(
        database,
        allocation,
        rates=RATES,
        num_channels=4,
        num_requests=4000,
    )


def test_push_pull_crossover(benchmark):
    rows = benchmark.pedantic(crossover, rounds=1, iterations=1)
    table_rows = [
        (rate, pull, push, "pull" if pull < push else "push")
        for rate, pull, push in rows
    ]
    report = format_table(
        ["request rate (1/s)", "pull wait (s)", "push W_b (s)", "winner"],
        table_rows,
        title=(
            "Push (DRP-CDS program) vs pull (RxW on-demand), "
            "equal aggregate bandwidth"
        ),
        precision=3,
    )
    save_report("push_pull_crossover", report)

    # Pull wins the quiet end; its wait grows monotonically-ish with
    # load while push stays flat; push wins the saturated end.
    assert rows[0][1] < rows[0][2]
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][1] > rows[-1][2] * 0.9  # pull no longer clearly ahead


def test_on_demand_policies(benchmark):
    database = generate_database(
        WorkloadSpec(num_items=60, skewness=1.0, diversity=2.0, seed=3)
    )

    def run_policies():
        rows = []
        for factory in (FCFSPolicy, MRFPolicy, RxWPolicy, SizeAwareRxWPolicy):
            report = simulate_on_demand(
                database,
                policy=factory(),
                num_channels=2,
                num_requests=4000,
                arrival_rate=8.0,
                seed=1,
            )
            rows.append(
                (
                    report.policy,
                    report.waiting.mean,
                    report.stretch.mean,
                    report.mean_batch_size,
                )
            )
        return rows

    rows = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    report = format_table(
        ["policy", "mean wait (s)", "mean stretch", "mean batch"],
        rows,
        title="On-demand policies on a diverse catalogue (Φ=2)",
        precision=3,
    )
    save_report("ondemand_policies", report)

    by_policy = {name: (wait, stretch) for name, wait, stretch, _ in rows}
    # The size-aware variant gives the best stretch on diverse data.
    assert by_policy["rxw-size"][1] == min(
        stretch for _, stretch in by_policy.values()
    )
