"""Extension bench: (1, m) index replication sweep.

Regenerates the waiting-vs-tuning trade-off on a DRP-CDS program's
hottest channel and checks the classic shape: tuning monotone
decreasing in m, waiting U-shaped with its minimum near
m* = sqrt(data/index).
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.analysis.tables import format_table
from repro.core.scheduler import DRPCDSAllocator
from repro.simulation.indexing import IndexedChannel, optimal_index_replication

INDEX_ENTRY_SIZE = 0.25
BANDWIDTH = 10.0


def sweep(standard_workload):
    allocation = DRPCDSAllocator().allocate(standard_workload, 6).allocation
    hot = max(
        range(allocation.num_channels),
        key=lambda i: allocation.channel_stats[i].frequency,
    )
    items = allocation.channel_items(hot)
    stats = allocation.channel_stats[hot]
    rule = optimal_index_replication(
        stats.size, len(items) * INDEX_ENTRY_SIZE
    )
    rows = []
    weight = sum(item.frequency for item in items)
    for m in range(1, len(items) + 1):
        channel = IndexedChannel(
            hot, items, BANDWIDTH,
            replication=m, index_entry_size=INDEX_ENTRY_SIZE,
        )
        wait = sum(
            item.frequency
            * channel.expected_timing(item.item_id).waiting_time
            for item in items
        ) / weight
        tune = sum(
            item.frequency
            * channel.expected_timing(item.item_id).tuning_time
            for item in items
        ) / weight
        rows.append((m, wait, tune))
    return rows, rule


def test_index_replication_sweep(benchmark, standard_workload):
    rows, rule = benchmark.pedantic(
        sweep, args=(standard_workload,), rounds=1, iterations=1
    )
    report = format_table(
        ["m", "E[wait] (s)", "E[tuning] (s)"],
        rows,
        title=f"(1, m) indexing sweep; sqrt rule suggests m* = {rule}",
        precision=3,
    )
    save_report("indexing_sweep", report)

    tunings = [tune for _, _, tune in rows]
    waits = [wait for _, wait, _ in rows]
    # Tuning falls monotonically.
    assert all(a >= b - 1e-9 for a, b in zip(tunings, tunings[1:]))
    # Waiting: extremes worse than the sqrt-rule point.
    rule_wait = waits[rule - 1]
    assert waits[-1] > rule_wait
    # Empirical waiting minimum lands near the rule.
    empirical = min(range(len(waits)), key=waits.__getitem__) + 1
    assert abs(empirical - rule) <= 2


def test_indexed_retrieval_throughput(benchmark, standard_workload):
    allocation = DRPCDSAllocator().allocate(standard_workload, 6).allocation
    items = allocation.channel_items(0)
    channel = IndexedChannel(
        0, items, BANDWIDTH, replication=2, index_entry_size=INDEX_ENTRY_SIZE
    )
    target = items[len(items) // 2].item_id

    def retrieve_many():
        total = 0.0
        for k in range(1000):
            total += channel.retrieve(target, k * 0.37).waiting_time
        return total

    assert benchmark(retrieve_many) > 0
