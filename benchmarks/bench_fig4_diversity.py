"""Figure 4: diversity Φ vs average waiting time.

Sweeps Φ = 0..3 at N = 120, K = 7.  Expected shape (paper §4.3):
waiting time rises steeply with Φ (average item size grows); VF^K is
near-optimal at Φ = 0 (the conventional environment) but falls far
behind as Φ grows, while DRP-CDS tracks GOPT everywhere — the paper's
core motivation for diversity-aware allocation.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.core.scheduler import make_allocator
from repro.experiments.figures import figure4
from repro.experiments.runner import run_experiment
from repro.workloads.generator import WorkloadSpec, generate_database


def test_figure4_series(benchmark):
    config = figure4().scaled_down(replications=3)
    result = benchmark.pedantic(
        run_experiment, args=(config,), rounds=1, iterations=1
    )
    save_report("figure4", result.to_text("mean_waiting_time"))

    values = result.sweep_values()
    # Waiting time rises sharply with diversity.
    for algorithm in result.algorithms:
        series = result.series(algorithm)
        assert series[-1][1] > 10 * series[0][1]
    # VF^K: competitive at Φ=0, clearly behind at Φ=3.
    gap_at = {}
    for value in (values[0], values[-1]):
        gopt = result.cell(value, "gopt").mean_waiting_time
        vfk = result.cell(value, "vfk").mean_waiting_time
        gap_at[value] = (vfk - gopt) / gopt
    assert gap_at[values[0]] < 0.02
    assert gap_at[values[-1]] > gap_at[values[0]]
    # DRP-CDS close to GOPT at every diversity level.
    for value in values:
        gopt = result.cell(value, "gopt").mean_waiting_time
        drpcds = result.cell(value, "drp-cds").mean_waiting_time
        assert (drpcds - gopt) / gopt < 0.06


@pytest.mark.parametrize("diversity", [0.0, 1.5, 3.0])
def test_drp_cds_runtime_vs_diversity(benchmark, diversity):
    database = generate_database(
        WorkloadSpec(num_items=120, diversity=diversity, seed=99)
    )
    allocator = make_allocator("drp-cds")
    outcome = benchmark(allocator.allocate, database, 7)
    assert outcome.allocation.num_channels == 7
