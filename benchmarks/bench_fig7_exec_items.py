"""Figure 7: number of broadcast items N vs execution time.

Expected shape (paper §4.5): GOPT's execution time grows markedly with
N (longer chromosomes mean more work per generation *and* a larger
search space), and is more sensitive to N than to K; DRP-CDS stays
orders of magnitude cheaper throughout.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.core.scheduler import make_allocator
from repro.experiments.figures import figure7
from repro.experiments.runner import run_experiment


def test_figure7_series(benchmark):
    config = figure7()
    result = benchmark.pedantic(
        run_experiment, args=(config,), rounds=1, iterations=1
    )
    save_report("figure7", result.to_text("mean_elapsed_seconds", precision=5))

    values = result.sweep_values()
    # GOPT massively slower at every N (loose factor absorbs timing
    # noise on cold first runs; typical ratios are 15-30x).
    for value in values:
        drpcds = result.cell(value, "drp-cds").mean_elapsed_seconds
        gopt = result.cell(value, "gopt").mean_elapsed_seconds
        assert gopt > 4 * drpcds
    # GOPT's time grows with N.
    gopt_series = result.series("gopt", "mean_elapsed_seconds")
    assert gopt_series[-1][1] > gopt_series[0][1]


def test_gopt_n_sensitivity_exceeds_k_sensitivity(benchmark, small_workload, large_workload):
    """The paper's observation: N drives GOPT's cost more than K.

    Compare tripling N (60 -> 180 at K = 7) against more than doubling
    K (4 -> 10 at N = 120): the N ratio must exceed the K ratio.
    """
    import time

    allocator = make_allocator("gopt")

    def measure(database, channels):
        samples = []
        for _ in range(3):
            start = time.perf_counter()
            allocator.allocate(database, channels)
            samples.append(time.perf_counter() - start)
        samples.sort()
        return samples[1]  # median of three absorbs timing noise

    def experiment():
        n_ratio = measure(large_workload, 7) / measure(small_workload, 7)
        from repro.workloads.generator import WorkloadSpec, generate_database

        mid = generate_database(WorkloadSpec(num_items=120, seed=99))
        k_ratio = measure(mid, 10) / measure(mid, 4)
        return n_ratio, k_ratio

    n_ratio, k_ratio = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert n_ratio > k_ratio


@pytest.mark.parametrize(
    "fixture", ["small_workload", "standard_workload", "large_workload"]
)
def test_gopt_runtime_vs_items(benchmark, request, fixture):
    database = request.getfixturevalue(fixture)
    allocator = make_allocator("gopt")
    benchmark.pedantic(
        allocator.allocate, args=(database, 7), rounds=2, iterations=1
    )
