"""Extension bench: Broadcast Disks vs multi-channel partitioning.

Two ways to spend K× bandwidth on skew: the paper's K separate
channels (DRP-CDS) versus one fat channel spinning K virtual disks at
geometric frequencies (Acharya's Broadcast Disks).  Same catalogue,
same aggregate bandwidth — which mechanism exploits skew better?
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.analysis.tables import format_table
from repro.core.cost import average_waiting_time
from repro.core.scheduler import DRPCDSAllocator
from repro.simulation.disks import (
    MultiScheduleChannel,
    broadcast_disk_schedule,
    disks_from_allocation,
)
from repro.workloads.generator import WorkloadSpec, generate_database

NUM_DISKS = 4
PER_CHANNEL_BANDWIDTH = 10.0


def compare(seeds):
    rows = []
    for seed in seeds:
        database = generate_database(
            WorkloadSpec(num_items=80, skewness=1.2, diversity=1.5, seed=seed)
        )
        # Mechanism A: K channels of bandwidth b each (the paper).
        outcome = DRPCDSAllocator().allocate(database, NUM_DISKS)
        multi_channel = average_waiting_time(
            outcome.allocation, bandwidth=PER_CHANNEL_BANDWIDTH
        )
        # Mechanism B: one channel of bandwidth K*b spinning K disks.
        disks = disks_from_allocation(database, NUM_DISKS)
        fat_bandwidth = NUM_DISKS * PER_CHANNEL_BANDWIDTH
        flat = MultiScheduleChannel(
            0,
            broadcast_disk_schedule(disks, [1] * NUM_DISKS),
            fat_bandwidth,
        )
        spun = MultiScheduleChannel(
            0,
            broadcast_disk_schedule(disks, [8, 4, 2, 1]),
            fat_bandwidth,
        )

        def weighted(channel):
            return sum(
                item.frequency * channel.expected_waiting_time(item.item_id)
                for item in database
            )

        rows.append(
            (seed, multi_channel, weighted(flat), weighted(spun))
        )
    return rows


def test_disks_vs_channels(benchmark):
    rows = benchmark.pedantic(compare, args=(range(4),), rounds=1, iterations=1)
    report = format_table(
        [
            "seed",
            "K channels (DRP-CDS)",
            "1 fat channel, flat",
            "1 fat channel, disks 8:4:2:1",
        ],
        rows,
        title=(
            "Equal aggregate bandwidth: channel partitioning vs "
            "Broadcast Disks (N=80, θ=1.2)"
        ),
        precision=3,
    )
    save_report("disks_vs_channels", report)

    for _, channels, flat, spun in rows:
        # Spinning beats the flat fat channel — skew exploited.
        assert spun < flat
        # Both skew-aware mechanisms land in the same ballpark (within
        # 2x of each other), far below the flat schedule.
        assert spun < 2 * channels
        assert channels < 2 * spun


def test_disk_schedule_generation_runtime(benchmark, standard_workload):
    disks = disks_from_allocation(standard_workload, 4)
    schedule = benchmark(
        broadcast_disk_schedule, disks, [8, 4, 2, 1]
    )
    assert len(schedule) >= len(standard_workload)
