"""Figure 3: number of broadcast items N vs average waiting time.

Sweeps N = 60..180 at K = 7.  Expected shape (paper §4.2): waiting time
grows with N for every algorithm; DRP alone degrades as N grows while
DRP-CDS stays close to GOPT across the whole range.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.core.scheduler import make_allocator
from repro.experiments.figures import figure3
from repro.experiments.runner import run_experiment


def test_figure3_series(benchmark):
    config = figure3().scaled_down(replications=3)
    result = benchmark.pedantic(
        run_experiment, args=(config,), rounds=1, iterations=1
    )
    save_report("figure3", result.to_text("mean_waiting_time"))

    # Waiting time grows with N for every algorithm.
    for algorithm in result.algorithms:
        series = result.series(algorithm)
        assert series[-1][1] > series[0][1]
    # DRP-CDS stays close to GOPT across the range (quality maintained
    # as N scales — the paper's CDS-scalability claim).
    for value in result.sweep_values():
        gopt = result.cell(value, "gopt").mean_waiting_time
        drpcds = result.cell(value, "drp-cds").mean_waiting_time
        assert (drpcds - gopt) / gopt < 0.06


@pytest.mark.parametrize("fixture", ["small_workload", "standard_workload", "large_workload"])
def test_drp_cds_runtime_vs_items(benchmark, request, fixture):
    database = request.getfixturevalue(fixture)
    allocator = make_allocator("drp-cds")
    outcome = benchmark(allocator.allocate, database, 7)
    assert outcome.allocation.num_channels == 7
