"""Ablation: how much does each stage of the pipeline contribute?

Compares, on shared workloads:

* DRP alone (rough allocation),
* DRP + CDS (the paper's proposal),
* CDS from a round-robin seed (is the DRP seed needed?),
* DRP + simulated annealing + descent (does escaping local optima
  buy anything over the paper's greedy CDS?),
* the contiguous-DP optimum (how far is bisection from the best
  contiguous partition?).

Empirical answer (also asserted below): the DRP seed matters little for
final *quality* but cuts CDS iterations; annealing buys only a percent
or so over CDS at ~100× the runtime — the paper's simple mechanism is a
sound choice.
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.analysis.tables import format_table
from repro.core.scheduler import make_allocator
from repro.workloads.generator import WorkloadSpec, generate_database

ALGORITHMS = ("drp", "drp-cds", "cds-only", "annealing", "contiguous-dp")


def compare_refiners(seeds, num_items=90, num_channels=6):
    rows = []
    for seed in seeds:
        database = generate_database(
            WorkloadSpec(num_items=num_items, seed=seed)
        )
        cells = [seed]
        for name in ALGORITHMS:
            outcome = make_allocator(name).allocate(database, num_channels)
            cells.append(outcome.cost)
        rows.append(tuple(cells))
    return rows


def test_refiner_ablation(benchmark):
    rows = benchmark.pedantic(
        compare_refiners, args=(range(4),), rounds=1, iterations=1
    )
    report = format_table(
        ("seed",) + ALGORITHMS,
        rows,
        title="Ablation: refinement stages (cost, lower is better)",
    )
    save_report("ablation_refiners", report)

    header = ("seed",) + ALGORITHMS
    drp_i = header.index("drp")
    drpcds_i = header.index("drp-cds")
    anneal_i = header.index("annealing")
    for row in rows:
        # CDS always improves on (or matches) raw DRP.
        assert row[drpcds_i] <= row[drp_i] + 1e-9
        # Annealing's advantage over plain CDS stays marginal (<2%).
        assert (row[drpcds_i] - row[anneal_i]) / row[anneal_i] < 0.02


def test_cds_refinement_runtime(benchmark, standard_workload):
    from repro.core.cds import cds_refine
    from repro.core.drp import drp_allocate

    rough = drp_allocate(standard_workload, 7)
    result = benchmark(cds_refine, rough.allocation)
    assert result.converged


def test_annealing_runtime(benchmark, small_workload):
    allocator = make_allocator("annealing")
    benchmark.pedantic(
        allocator.allocate, args=(small_workload, 6), rounds=2, iterations=1
    )
