"""Figure 5: skewness θ vs average waiting time.

Sweeps θ = 0.4..1.6 at N = 120, K = 7.  Expected shape (paper §4.4):
waiting time falls as skew rises (hot items concentrate on short
channels), and the DRP-CDS-vs-GOPT discrepancy shrinks with θ because
access frequency increasingly dominates the allocation.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.core.scheduler import make_allocator
from repro.experiments.figures import figure5
from repro.experiments.runner import run_experiment
from repro.workloads.generator import WorkloadSpec, generate_database


def test_figure5_series(benchmark):
    config = figure5().scaled_down(replications=3)
    result = benchmark.pedantic(
        run_experiment, args=(config,), rounds=1, iterations=1
    )
    save_report("figure5", result.to_text("mean_waiting_time"))

    # Waiting time decreases with skewness for every algorithm.
    for algorithm in result.algorithms:
        series = result.series(algorithm)
        assert series[-1][1] < series[0][1]
    # DRP-CDS absolute error vs GOPT shrinks as skew rises.
    values = result.sweep_values()
    first_gap = (
        result.cell(values[0], "drp-cds").mean_waiting_time
        - result.cell(values[0], "gopt").mean_waiting_time
    )
    last_gap = (
        result.cell(values[-1], "drp-cds").mean_waiting_time
        - result.cell(values[-1], "gopt").mean_waiting_time
    )
    assert last_gap <= first_gap + 1e-9


@pytest.mark.parametrize("skewness", [0.4, 1.0, 1.6])
def test_drp_cds_runtime_vs_skewness(benchmark, skewness):
    database = generate_database(
        WorkloadSpec(num_items=120, skewness=skewness, seed=99)
    )
    allocator = make_allocator("drp-cds")
    outcome = benchmark(allocator.allocate, database, 7)
    assert outcome.allocation.num_channels == 7
