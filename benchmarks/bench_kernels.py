"""Reproducible perf harness for the vectorized hot-path kernels.

Times the scalar (``backend="python"``) against the vectorized
(``backend="numpy"``) implementations of the three cost-model hot
paths — CDS refinement, DRP allocation and the contiguous DP — and
writes ``BENCH_core.json`` at the repository root so successive PRs
accumulate a perf trajectory.

Run standalone (CI smoke run uses ``--sizes 100``)::

    python benchmarks/bench_kernels.py [--sizes 100 1000 10000]
                                       [--output BENCH_core.json]

or via ``make bench-kernels``.  A pytest-benchmark smoke wrapper at the
bottom keeps the kernel comparison in the ``make bench`` record.

Methodology: every (kernel, N) cell reports the median of ``--repeats``
runs.  CDS is timed for a fixed move budget from a deliberately bad
contiguous seed (per-iteration cost is the quantity of interest; both
backends execute the identical move sequence, which the harness
asserts).  The quadratic DP oracle is skipped above
``--dp-oracle-limit`` items — O(K·N²) in pure Python is minutes at
N=10k — and the skip is recorded in the JSON rather than silently
dropped.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.allocation import ChannelAllocation
from repro.core.cds import cds_refine
from repro.core.drp import drp_allocate
from repro.core.partition import contiguous_optimal
from repro.workloads.generator import WorkloadSpec, generate_database

SCHEMA_VERSION = 1
DEFAULT_SIZES = (100, 1000, 10000)
DEFAULT_CHANNELS = 8
DEFAULT_CDS_ITERATIONS = 10
DEFAULT_REPEATS = 3
DEFAULT_DP_ORACLE_LIMIT = 2000
DEFAULT_SEED = 7


def _median_seconds(function, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def _contiguous_seed(database, num_channels: int) -> ChannelAllocation:
    """A deliberately bad catalogue-order chunking: plenty of CDS moves."""
    items = database.items
    size = max(1, len(items) // num_channels)
    groups = [
        list(items[i * size: (i + 1) * size]) for i in range(num_channels - 1)
    ]
    groups.append(list(items[(num_channels - 1) * size:]))
    return ChannelAllocation(database, groups)


def _speedup(python_seconds: Optional[float], numpy_seconds: Optional[float]):
    if not python_seconds or not numpy_seconds:
        return None
    return python_seconds / numpy_seconds


def run_benchmarks(
    sizes=DEFAULT_SIZES,
    num_channels: int = DEFAULT_CHANNELS,
    cds_iterations: int = DEFAULT_CDS_ITERATIONS,
    repeats: int = DEFAULT_REPEATS,
    dp_oracle_limit: int = DEFAULT_DP_ORACLE_LIMIT,
    seed: int = DEFAULT_SEED,
) -> dict:
    """Time every kernel at every size; return the BENCH_core document."""
    results: List[dict] = []
    for n in sizes:
        k = min(num_channels, n)
        database = generate_database(
            WorkloadSpec(num_items=n, skewness=0.8, diversity=1.5, seed=seed)
        )
        ordered = database.sorted_by_benefit_ratio()

        # --- CDS: fixed move budget from a bad seed ------------------
        cds_seed = _contiguous_seed(database, k)
        scalar = cds_refine(
            cds_seed, max_iterations=cds_iterations, backend="python"
        )
        vector = cds_refine(
            cds_seed, max_iterations=cds_iterations, backend="numpy"
        )
        assert scalar.moves == vector.moves, "backends diverged — bug"
        python_s = _median_seconds(
            lambda: cds_refine(
                cds_seed, max_iterations=cds_iterations, backend="python"
            ),
            repeats,
        )
        numpy_s = _median_seconds(
            lambda: cds_refine(
                cds_seed, max_iterations=cds_iterations, backend="numpy"
            ),
            repeats,
        )
        results.append(
            {
                "kernel": "cds_refine",
                "n": n,
                "k": k,
                "iterations": len(scalar.moves),
                "python_seconds": python_s,
                "numpy_seconds": numpy_s,
                "speedup": _speedup(python_s, numpy_s),
            }
        )

        # --- DRP: full allocation, split-heavy policy ----------------
        python_s = _median_seconds(
            lambda: drp_allocate(
                database, k, split_policy="max-reduction", backend="python"
            ),
            repeats,
        )
        numpy_s = _median_seconds(
            lambda: drp_allocate(
                database, k, split_policy="max-reduction", backend="numpy"
            ),
            repeats,
        )
        results.append(
            {
                "kernel": "drp_allocate",
                "n": n,
                "k": k,
                "python_seconds": python_s,
                "numpy_seconds": numpy_s,
                "speedup": _speedup(python_s, numpy_s),
            }
        )

        # --- Contiguous DP: quadratic oracle vs divide-and-conquer ---
        row = {"kernel": "contiguous_dp", "n": n, "k": k}
        dc_s = _median_seconds(
            lambda: contiguous_optimal(ordered, k, method="divide-conquer"),
            repeats,
        )
        row["divide_conquer_seconds"] = dc_s
        if n <= dp_oracle_limit:
            quad_s = _median_seconds(
                lambda: contiguous_optimal(ordered, k, method="quadratic"),
                max(1, repeats if n <= 200 else 1),
            )
            _, quad_cost = contiguous_optimal(ordered, k, method="quadratic")
            _, dc_cost = contiguous_optimal(ordered, k, method="divide-conquer")
            assert quad_cost == dc_cost, "DP methods diverged — bug"
            row["quadratic_seconds"] = quad_s
            row["speedup"] = _speedup(quad_s, dc_s)
        else:
            row["quadratic_seconds"] = None
            row["speedup"] = None
            row["note"] = (
                f"quadratic oracle skipped above N={dp_oracle_limit} "
                "(O(K*N^2) in pure Python)"
            )
        results.append(row)

    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "benchmarks/bench_kernels.py",
        "config": {
            "sizes": list(sizes),
            "num_channels": num_channels,
            "cds_iterations": cds_iterations,
            "repeats": repeats,
            "dp_oracle_limit": dp_oracle_limit,
            "seed": seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "results": results,
    }


def _format_report(document: dict) -> str:
    lines = [
        f"{'kernel':<15} {'N':>6} {'K':>3}  "
        f"{'scalar (s)':>10}  {'kernel (s)':>10}  {'speedup':>8}"
    ]
    for row in document["results"]:
        base = row.get("python_seconds") or row.get("quadratic_seconds")
        fast = row.get("numpy_seconds") or row.get("divide_conquer_seconds")
        speedup = row.get("speedup")
        base_text = f"{base:>10.4f}" if base is not None else f"{'—':>10}"
        speed_text = f"{speedup:>7.1f}x" if speedup else f"{'—':>8}"
        lines.append(
            f"{row['kernel']:<15} {row['n']:>6} {row['k']:>3}  "
            f"{base_text}  {fast:>10.4f}  {speed_text}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="catalogue sizes N to benchmark (default: 100 1000 10000)",
    )
    parser.add_argument(
        "--channels", type=int, default=DEFAULT_CHANNELS,
        help="channel count K (default: 8)",
    )
    parser.add_argument(
        "--cds-iterations", type=int, default=DEFAULT_CDS_ITERATIONS,
        help="CDS move budget per timed run (default: 5)",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS,
        help="timed repeats per cell; the median is reported (default: 3)",
    )
    parser.add_argument(
        "--dp-oracle-limit", type=int, default=DEFAULT_DP_ORACLE_LIMIT,
        help="largest N the quadratic DP oracle is timed at (default: 2000)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_core.json",
        help="where to write the JSON document (default: repo root)",
    )
    options = parser.parse_args(argv)

    document = run_benchmarks(
        sizes=options.sizes,
        num_channels=options.channels,
        cds_iterations=options.cds_iterations,
        repeats=options.repeats,
        dp_oracle_limit=options.dp_oracle_limit,
        seed=options.seed,
    )
    options.output.write_text(json.dumps(document, indent=2) + "\n")
    print(_format_report(document))
    print(f"\nwrote {options.output}")
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark smoke wrapper (keeps `make bench` coverage)
# ----------------------------------------------------------------------
def test_kernel_speedups_smoke(benchmark):
    from benchmarks.conftest import save_report

    document = benchmark.pedantic(
        lambda: run_benchmarks(sizes=(100, 1000), repeats=1),
        rounds=1,
        iterations=1,
    )
    for row in document["results"]:
        if row["kernel"] == "cds_refine" and row["n"] >= 1000:
            assert row["speedup"] and row["speedup"] > 1.0
    save_report("kernels", _format_report(document))


if __name__ == "__main__":
    raise SystemExit(main())
