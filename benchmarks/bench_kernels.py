"""Reproducible perf harness for the vectorized hot-path kernels.

Times the scalar (``backend="python"``) against the vectorized
(``backend="numpy"``) implementations of the three cost-model hot
paths — CDS refinement, DRP allocation and the contiguous DP — and
writes ``BENCH_core.json`` at the repository root so successive PRs
accumulate a perf trajectory.

Run standalone (CI smoke run uses ``--sizes 100``)::

    python benchmarks/bench_kernels.py [--sizes 100 1000 10000]
                                       [--output BENCH_core.json]

or via ``make bench-kernels``.  A pytest-benchmark smoke wrapper at the
bottom keeps the kernel comparison in the ``make bench`` record.

Methodology: every (kernel, N) cell reports the median of ``--repeats``
runs.  CDS is timed for a fixed move budget from a deliberately bad
contiguous seed built through the trusted index-group constructor, so
seeding a million-item run materialises zero per-item objects; it is
timed twice — ``scan="full"`` and ``scan="incremental"`` — with an
in-run assert that both modes executed the identical move sequence,
and each row records the *measured* Δc evaluation count
(``delta_evaluations_measured``), its per-move rate and the
``per_move_reduction`` the dirty-pair index achieves (schema v3).  The
contiguous DP cell times divide-and-conquer against SMAWK on the same
structure-of-arrays prefix sums and cross-checks that every method
returns the identical cost.  Scalar backends are skipped above
``--scalar-limit`` items and the quadratic DP oracle above
``--dp-oracle-limit`` — O(K·N²) in pure Python is minutes at N=10k —
with the skip recorded in the JSON rather than silently dropped.

Memory: each cell reports ``items_materialized`` (the
:func:`repro.core.item.items_created` delta across its timed runs —
the SoA zero-churn guarantee, asserted at large N), the process peak
RSS high-watermark after the cell, and — below
``--memory-profile-limit`` items — a ``tracemalloc`` peak for one
extra instrumented run of the vectorized path (tracemalloc slows the
run several-fold, so it is never sampled during timing).
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
import tracemalloc
from pathlib import Path
from typing import List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.allocation import ChannelAllocation
from repro.core.cds import cds_refine
from repro.core.drp import drp_allocate
from repro.core.item import items_created
from repro.core.kernels import HAS_NUMBA
from repro.core.partition import PrefixSums, contiguous_optimal
from repro.workloads.generator import WorkloadSpec, generate_database

SCHEMA_VERSION = 3
DEFAULT_SIZES = (100, 1000, 10000)
DEFAULT_CHANNELS = 8
DEFAULT_CDS_ITERATIONS = 10
DEFAULT_REPEATS = 3
DEFAULT_DP_ORACLE_LIMIT = 2000
DEFAULT_SCALAR_LIMIT = 20_000
DEFAULT_MEMORY_PROFILE_LIMIT = 200_000
DEFAULT_SEED = 7


def _median_seconds(function, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def _median_seconds_with_result(function, repeats: int):
    """Like :func:`_median_seconds` but also hands back the last result,
    so correctness cross-checks don't need an extra untimed run (the DP
    at N=10^6 costs minutes per invocation)."""
    samples = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2], result


def _tracemalloc_peak(function) -> int:
    """Peak traced allocation (bytes) of one instrumented run."""
    tracemalloc.start()
    try:
        function()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def _peak_rss_kb() -> int:
    """Process peak RSS high-watermark in KiB (monotone over the run)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _contiguous_seed(database, num_channels: int) -> ChannelAllocation:
    """A deliberately bad catalogue-order chunking: plenty of CDS moves.

    Built from index groups through the trusted constructor — no
    per-item objects even at a million items.
    """
    n = len(database)
    size = max(1, n // num_channels)
    groups = [
        np.arange(i * size, (i + 1) * size)
        for i in range(num_channels - 1)
    ]
    groups.append(np.arange((num_channels - 1) * size, n))
    return ChannelAllocation._from_index_groups(database, groups)


def _speedup(python_seconds: Optional[float], numpy_seconds: Optional[float]):
    if not python_seconds or not numpy_seconds:
        return None
    return python_seconds / numpy_seconds


def run_benchmarks(
    sizes=DEFAULT_SIZES,
    num_channels=DEFAULT_CHANNELS,
    cds_iterations: int = DEFAULT_CDS_ITERATIONS,
    repeats: int = DEFAULT_REPEATS,
    dp_oracle_limit: int = DEFAULT_DP_ORACLE_LIMIT,
    scalar_limit: int = DEFAULT_SCALAR_LIMIT,
    memory_profile_limit: int = DEFAULT_MEMORY_PROFILE_LIMIT,
    seed: int = DEFAULT_SEED,
) -> dict:
    """Time every kernel at every size; return the BENCH_core document.

    ``num_channels`` is either one K for every size or a sequence
    aligned with ``sizes`` — the large-N tier runs at K in the
    hundreds while the historical small tiers stay at K=8.
    """
    if isinstance(num_channels, int):
        channels_per_size = [num_channels] * len(sizes)
    else:
        channels_per_size = list(num_channels)
        if len(channels_per_size) == 1:
            channels_per_size *= len(sizes)
        if len(channels_per_size) != len(sizes):
            raise ValueError(
                f"--channels takes one K or one per size: got "
                f"{len(channels_per_size)} for {len(sizes)} sizes"
            )
    results: List[dict] = []
    for n, size_channels in zip(sizes, channels_per_size):
        k = min(size_channels, n)
        database = generate_database(
            WorkloadSpec(num_items=n, skewness=0.8, diversity=1.5, seed=seed)
        )
        time_scalar = n <= scalar_limit
        profile_memory = n <= memory_profile_limit
        skip_note = (
            f"python backend skipped above N={scalar_limit}"
            if not time_scalar
            else None
        )

        # --- CDS: fixed move budget from a bad seed, both scan modes -
        cds_seed = _contiguous_seed(database, k)
        created_before = items_created()
        numpy_s, vector = _median_seconds_with_result(
            lambda: cds_refine(
                cds_seed,
                max_iterations=cds_iterations,
                backend="numpy",
                scan="full",
            ),
            repeats,
        )
        full_materialized = items_created() - created_before
        created_before = items_created()
        incremental_s, incremental = _median_seconds_with_result(
            lambda: cds_refine(
                cds_seed,
                max_iterations=cds_iterations,
                backend="numpy",
                scan="incremental",
            ),
            repeats,
        )
        incremental_materialized = items_created() - created_before
        # The dirty-pair index must execute the identical move sequence.
        assert incremental.moves == vector.moves, "scan modes diverged — bug"
        assert incremental.cost == vector.cost, "scan modes diverged — bug"
        python_s = None
        if time_scalar:
            scalar = cds_refine(
                cds_seed, max_iterations=cds_iterations, backend="python"
            )
            assert scalar.moves == vector.moves, "backends diverged — bug"
            python_s = _median_seconds(
                lambda: cds_refine(
                    cds_seed, max_iterations=cds_iterations, backend="python"
                ),
                repeats,
            )

        def _per_move(result) -> Optional[float]:
            if not result.moves:
                return None
            if result.scan_mode == "incremental":
                # Charge the cold index build (one full-scan equivalent)
                # to setup, not to the moves it precedes.
                build = len(database) * (k - 1)
                return (result.delta_evaluations - build) / len(result.moves)
            scans = len(result.moves) + (1 if result.converged else 0)
            return result.delta_evaluations / max(1, scans)

        full_per_move = _per_move(vector)
        incremental_per_move = _per_move(incremental)
        for scan_mode, seconds, result, materialized in (
            ("full", numpy_s, vector, full_materialized),
            ("incremental", incremental_s, incremental,
             incremental_materialized),
        ):
            row = {
                "kernel": "cds_refine",
                "n": n,
                "k": k,
                "scan_mode": scan_mode,
                "iterations": len(result.moves),
                "python_seconds": python_s if scan_mode == "full" else None,
                "numpy_seconds": seconds,
                "speedup": (
                    _speedup(python_s, seconds)
                    if scan_mode == "full"
                    else None
                ),
                "speedup_vs_full_scan": (
                    _speedup(numpy_s, seconds)
                    if scan_mode == "incremental"
                    else None
                ),
                "delta_evaluations_measured": result.delta_evaluations,
                "full_scan_equivalent": result.full_scan_equivalent,
                "delta_evaluations_per_move": _per_move(result),
                "per_move_reduction": (
                    full_per_move / incremental_per_move
                    if scan_mode == "incremental"
                    and full_per_move
                    and incremental_per_move
                    else None
                ),
                "items_materialized": materialized,
                "tracemalloc_peak_bytes": (
                    _tracemalloc_peak(
                        lambda: cds_refine(
                            cds_seed,
                            max_iterations=cds_iterations,
                            backend="numpy",
                            scan=scan_mode,
                        )
                    )
                    if profile_memory
                    else None
                ),
                "peak_rss_kb": _peak_rss_kb(),
            }
            if skip_note:
                row["note"] = skip_note
            results.append(row)

        # --- DRP: full allocation, split-heavy policy ----------------
        python_s = None
        if time_scalar:
            python_s = _median_seconds(
                lambda: drp_allocate(
                    database, k, split_policy="max-reduction",
                    backend="python",
                ),
                repeats,
            )
        created_before = items_created()
        numpy_s = _median_seconds(
            lambda: drp_allocate(
                database, k, split_policy="max-reduction", backend="numpy"
            ),
            repeats,
        )
        materialized = items_created() - created_before
        row = {
            "kernel": "drp_allocate",
            "n": n,
            "k": k,
            "python_seconds": python_s,
            "numpy_seconds": numpy_s,
            "speedup": _speedup(python_s, numpy_s),
            "items_materialized": materialized,
            "tracemalloc_peak_bytes": (
                _tracemalloc_peak(
                    lambda: drp_allocate(
                        database, k, split_policy="max-reduction",
                        backend="numpy",
                    )
                )
                if profile_memory
                else None
            ),
            "peak_rss_kb": _peak_rss_kb(),
        }
        if skip_note:
            row["note"] = skip_note
        results.append(row)

        # --- Contiguous DP: quadratic oracle vs D&C vs SMAWK ---------
        # All methods time the same structure-of-arrays prefix sums;
        # building them is a one-off O(N) cumsum kept outside the
        # timed region.
        order = database.benefit_ratio_order()
        sums = PrefixSums.from_arrays(
            database.frequencies[order], database.sizes[order]
        )
        row = {"kernel": "contiguous_dp", "n": n, "k": k}
        dc_s, (_, dc_cost) = _median_seconds_with_result(
            lambda: contiguous_optimal(
                None, k, method="divide-conquer", sums=sums
            ),
            repeats,
        )
        smawk_s, (_, smawk_cost) = _median_seconds_with_result(
            lambda: contiguous_optimal(None, k, method="smawk", sums=sums),
            repeats,
        )
        assert dc_cost == smawk_cost, "DP methods diverged — bug"
        row["divide_conquer_seconds"] = dc_s
        row["smawk_seconds"] = smawk_s
        row["smawk_speedup_vs_divide_conquer"] = _speedup(dc_s, smawk_s)
        if n <= dp_oracle_limit:
            quad_s, (_, quad_cost) = _median_seconds_with_result(
                lambda: contiguous_optimal(
                    None, k, method="quadratic", sums=sums
                ),
                max(1, repeats if n <= 200 else 1),
            )
            assert quad_cost == dc_cost, "DP methods diverged — bug"
            row["quadratic_seconds"] = quad_s
            row["speedup"] = _speedup(quad_s, dc_s)
        else:
            row["quadratic_seconds"] = None
            row["speedup"] = None
            row["note"] = (
                f"quadratic oracle skipped above N={dp_oracle_limit} "
                "(O(K*N^2) in pure Python)"
            )
        row["tracemalloc_peak_bytes"] = (
            _tracemalloc_peak(
                lambda: contiguous_optimal(None, k, method="smawk", sums=sums)
            )
            if profile_memory
            else None
        )
        row["peak_rss_kb"] = _peak_rss_kb()
        results.append(row)

    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "benchmarks/bench_kernels.py",
        "config": {
            "sizes": list(sizes),
            "num_channels": channels_per_size,
            "cds_iterations": cds_iterations,
            "repeats": repeats,
            "dp_oracle_limit": dp_oracle_limit,
            "scalar_limit": scalar_limit,
            "memory_profile_limit": memory_profile_limit,
            "seed": seed,
            "cds_scan_modes": ["full", "incremental"],
            "python": platform.python_version(),
            "machine": platform.machine(),
            "numpy": np.__version__,
            "has_numba": HAS_NUMBA,
            "memory_notes": (
                "peak_rss_kb is the process high-watermark (monotone "
                "across rows); tracemalloc_peak_bytes instruments one "
                "extra vectorized run and is null above "
                "memory_profile_limit"
            ),
        },
        "results": results,
    }


def _format_report(document: dict) -> str:
    lines = [
        f"{'kernel':<21} {'N':>8} {'K':>4}  "
        f"{'scalar (s)':>10}  {'kernel (s)':>10}  {'speedup':>8}"
    ]
    for row in document["results"]:
        label = row["kernel"]
        if row["kernel"] == "contiguous_dp":
            base = row.get("divide_conquer_seconds")
            fast = row.get("smawk_seconds")
            speedup = row.get("smawk_speedup_vs_divide_conquer")
        elif row.get("scan_mode") == "incremental":
            label = f"{row['kernel']}/incr"
            base = None  # the full-scan row above is the baseline
            fast = row.get("numpy_seconds")
            speedup = row.get("speedup_vs_full_scan")
        else:
            base = row.get("python_seconds")
            fast = row.get("numpy_seconds")
            speedup = row.get("speedup")
        base_text = f"{base:>10.4f}" if base is not None else f"{'—':>10}"
        speed_text = f"{speedup:>7.1f}x" if speedup else f"{'—':>8}"
        lines.append(
            f"{label:<21} {row['n']:>8} {row['k']:>4}  "
            f"{base_text}  {fast:>10.4f}  {speed_text}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="catalogue sizes N to benchmark (default: 100 1000 10000)",
    )
    parser.add_argument(
        "--channels", type=int, nargs="+", default=[DEFAULT_CHANNELS],
        help="channel count K — one value for every size, or one per "
             "size (default: 8)",
    )
    parser.add_argument(
        "--cds-iterations", type=int, default=DEFAULT_CDS_ITERATIONS,
        help="CDS move budget per timed run (default: 10)",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS,
        help="timed repeats per cell; the median is reported (default: 3)",
    )
    parser.add_argument(
        "--dp-oracle-limit", type=int, default=DEFAULT_DP_ORACLE_LIMIT,
        help="largest N the quadratic DP oracle is timed at (default: 2000)",
    )
    parser.add_argument(
        "--scalar-limit", type=int, default=DEFAULT_SCALAR_LIMIT,
        help="largest N the pure-Python backends are timed at "
             "(default: 20000)",
    )
    parser.add_argument(
        "--memory-profile-limit", type=int,
        default=DEFAULT_MEMORY_PROFILE_LIMIT,
        help="largest N given an extra tracemalloc-instrumented run "
             "(default: 200000)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_core.json",
        help="where to write the JSON document (default: repo root)",
    )
    options = parser.parse_args(argv)

    document = run_benchmarks(
        sizes=options.sizes,
        num_channels=options.channels,
        cds_iterations=options.cds_iterations,
        repeats=options.repeats,
        dp_oracle_limit=options.dp_oracle_limit,
        scalar_limit=options.scalar_limit,
        memory_profile_limit=options.memory_profile_limit,
        seed=options.seed,
    )
    options.output.write_text(json.dumps(document, indent=2) + "\n")
    print(_format_report(document))
    print(f"\nwrote {options.output}")
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark smoke wrapper (keeps `make bench` coverage)
# ----------------------------------------------------------------------
def test_kernel_speedups_smoke(benchmark):
    from benchmarks.conftest import save_report

    document = benchmark.pedantic(
        lambda: run_benchmarks(sizes=(100, 1000), repeats=1),
        rounds=1,
        iterations=1,
    )
    for row in document["results"]:
        if row["kernel"] == "cds_refine" and row["n"] >= 1000:
            assert row["items_materialized"] == 0
            if row["scan_mode"] == "full":
                assert row["speedup"] and row["speedup"] > 1.0
            else:
                # The dirty-pair index must pay fewer Δc evaluations
                # per move than a full rescan, even at K=8.
                assert row["per_move_reduction"] and (
                    row["per_move_reduction"] > 1.0
                )
    save_report("kernels", _format_report(document))


if __name__ == "__main__":
    raise SystemExit(main())
