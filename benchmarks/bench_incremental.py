"""Extension bench: incremental maintenance vs full rebuild.

Two perf stories live here:

* **catalogue edits** (pytest-benchmark tests below): a single-item
  insert/remove + warm CDS polish against a full DRP-CDS re-run —
  quality must stay within a few percent of the rebuild;
* **epoch re-allocation** (standalone harness): the warm-start engine
  (:class:`repro.core.incremental.IncrementalAllocator`) against a cold
  DRP+CDS pipeline across profile drift rates, reported as epochs/sec
  and written to ``BENCH_incr.json`` at the repo root.

Run the harness standalone (CI smoke uses ``--items 600 --epochs 2``)::

    python benchmarks/bench_incremental.py [--items 10000] [--epochs 4]
        [--drift-rates 0.001 0.01 0.05] [--output BENCH_incr.json]

or via ``make bench-incr``.  Methodology: one engine holds state across
``--epochs`` drifted profiles per drift rate; every epoch is timed for
the warm engine and for a cold DRP+CDS re-run on the identical drifted
database, and the per-epoch **median** makes the headline epochs/sec.
The drift parameter is the approximate fraction of probability mass
moved per epoch (each frequency is scaled by ``1 ± 4·rate`` uniformly,
then renormalized).  Cost parity is recorded per epoch as
``(warm - cold) / cold``; the guard bounds it by construction.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.cds import cds_refine
from repro.core.cost import allocation_cost
from repro.core.database import BroadcastDatabase
from repro.core.drp import drp_allocate
from repro.core.incremental import (
    IncrementalAllocator,
    insert_item,
    remove_item,
)
from repro.core.item import DataItem
from repro.core.scheduler import DRPCDSAllocator
from repro.workloads.generator import WorkloadSpec, generate_database

SCHEMA_VERSION = 1
DEFAULT_ITEMS = 10_000
DEFAULT_CHANNELS = 8
DEFAULT_EPOCHS = 4
DEFAULT_DRIFT_RATES = (0.001, 0.01, 0.05)
DEFAULT_SEED = 7


def _drifted(
    database: BroadcastDatabase, rng: np.random.Generator, rate: float
) -> BroadcastDatabase:
    """Move roughly ``rate`` of the probability mass between items."""
    factors = 1.0 + rng.uniform(-4.0 * rate, 4.0 * rate, size=len(database))
    raw = [
        item.frequency * factor
        for item, factor in zip(database.items, factors)
    ]
    total = sum(raw)
    return BroadcastDatabase(
        [
            DataItem(item.item_id, freq / total, item.size)
            for item, freq in zip(database.items, raw)
        ]
    )


def _median(samples: List[float]) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def run_benchmarks(
    num_items: int = DEFAULT_ITEMS,
    num_channels: int = DEFAULT_CHANNELS,
    epochs: int = DEFAULT_EPOCHS,
    drift_rates=DEFAULT_DRIFT_RATES,
    seed: int = DEFAULT_SEED,
) -> dict:
    """Time warm vs cold epoch re-allocation; return the BENCH_incr doc."""
    results: List[dict] = []
    base = generate_database(
        WorkloadSpec(
            num_items=num_items, skewness=0.8, diversity=1.5, seed=seed
        )
    )
    for rate in drift_rates:
        rng = np.random.default_rng(seed)
        engine = IncrementalAllocator(num_channels)
        engine.reallocate(base)  # untimed cold start seeds the engine
        warm_samples: List[float] = []
        cold_samples: List[float] = []
        gaps: List[float] = []
        modes: dict = {}
        database = base
        for _ in range(epochs):
            database = _drifted(database, rng, rate)

            start = time.perf_counter()
            warm = engine.reallocate(database)
            warm_samples.append(time.perf_counter() - start)

            start = time.perf_counter()
            rough = drp_allocate(database, num_channels)
            cold = cds_refine(rough.allocation)
            cold_samples.append(time.perf_counter() - start)

            gaps.append((warm.cost - cold.cost) / cold.cost)
            modes[warm.mode] = modes.get(warm.mode, 0) + 1
        warm_s = _median(warm_samples)
        cold_s = _median(cold_samples)
        results.append(
            {
                "drift_rate": rate,
                "n": num_items,
                "k": num_channels,
                "epochs": epochs,
                "warm_seconds_per_epoch": warm_s,
                "cold_seconds_per_epoch": cold_s,
                "warm_epochs_per_second": 1.0 / warm_s if warm_s else None,
                "cold_epochs_per_second": 1.0 / cold_s if cold_s else None,
                "speedup": cold_s / warm_s if warm_s else None,
                "mean_cost_gap_percent": sum(gaps) / len(gaps) * 100,
                "max_cost_gap_percent": max(gaps) * 100,
                "warm_modes": modes,
                "warm_moves_total": engine.stats.warm_moves,
            }
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "benchmarks/bench_incremental.py",
        "config": {
            "num_items": num_items,
            "num_channels": num_channels,
            "epochs": epochs,
            "drift_rates": list(drift_rates),
            "seed": seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "results": results,
    }


def _format_report(document: dict) -> str:
    lines = [
        f"{'drift':>7}  {'warm (s)':>9}  {'cold (s)':>9}  "
        f"{'speedup':>8}  {'gap mean/max (%)':>17}"
    ]
    for row in document["results"]:
        lines.append(
            f"{row['drift_rate']:>7g}  "
            f"{row['warm_seconds_per_epoch']:>9.4f}  "
            f"{row['cold_seconds_per_epoch']:>9.4f}  "
            f"{row['speedup']:>7.1f}x  "
            f"{row['mean_cost_gap_percent']:>8.3f} / "
            f"{row['max_cost_gap_percent']:.3f}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--items", type=int, default=DEFAULT_ITEMS,
        help="catalogue size N (default: 10000)",
    )
    parser.add_argument(
        "--channels", type=int, default=DEFAULT_CHANNELS,
        help="channel count K (default: 8)",
    )
    parser.add_argument(
        "--epochs", type=int, default=DEFAULT_EPOCHS,
        help="drifted epochs timed per drift rate (default: 4)",
    )
    parser.add_argument(
        "--drift-rates", type=float, nargs="+",
        default=list(DEFAULT_DRIFT_RATES),
        help="profile mass moved per epoch (default: 0.001 0.01 0.05)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_incr.json",
        help="where to write the JSON document (default: repo root)",
    )
    options = parser.parse_args(argv)

    document = run_benchmarks(
        num_items=options.items,
        num_channels=options.channels,
        epochs=options.epochs,
        drift_rates=options.drift_rates,
        seed=options.seed,
    )
    options.output.write_text(json.dumps(document, indent=2) + "\n")
    print(_format_report(document))
    print(f"\nwrote {options.output}")
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark wrappers (keep `make bench` coverage)
# ----------------------------------------------------------------------
def test_warm_epoch_speedup_smoke(benchmark):
    """Small-N smoke of the BENCH_incr harness: warm beats cold."""
    from benchmarks.conftest import save_report

    document = benchmark.pedantic(
        lambda: run_benchmarks(num_items=2000, epochs=2, drift_rates=(0.01,)),
        rounds=1,
        iterations=1,
    )
    row = document["results"][0]
    assert row["speedup"] and row["speedup"] > 1.0
    assert row["max_cost_gap_percent"] <= 2.0 + 1e-6  # the guard, in %
    save_report("incremental_epochs", _format_report(document))


def test_insert_quality_vs_rebuild(benchmark):
    from benchmarks.conftest import save_report
    from repro.analysis.tables import format_table

    def run():
        rows = []
        allocator = DRPCDSAllocator()
        for seed in range(4):
            database = generate_database(
                WorkloadSpec(num_items=120, seed=seed)
            )
            base = allocator.allocate(database, 7).allocation
            new = DataItem("fresh", 0.05, 15.0)
            grown_db, incremental = insert_item(base, new)
            rebuilt = allocator.allocate(grown_db, 7)
            inc_cost = allocation_cost(incremental)
            rows.append(
                (
                    seed,
                    inc_cost,
                    rebuilt.cost,
                    (inc_cost - rebuilt.cost) / rebuilt.cost * 100,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        ["seed", "incremental cost", "rebuild cost", "gap (%)"],
        rows,
        title="Insert one item: warm-started edit vs full DRP-CDS rebuild",
        precision=4,
    )
    save_report("incremental_insert", report)
    for _, inc_cost, rebuilt_cost, _ in rows:
        assert inc_cost <= rebuilt_cost * 1.05


def test_insert_latency(benchmark, standard_workload):
    base = DRPCDSAllocator().allocate(standard_workload, 7).allocation
    new = DataItem("fresh", 0.03, 9.0)
    database, allocation = benchmark(insert_item, base, new)
    assert "fresh" in database
    assert allocation.num_channels == 7


def test_remove_latency(benchmark, standard_workload):
    base = DRPCDSAllocator().allocate(standard_workload, 7).allocation
    victim = standard_workload.items[17].item_id
    database, allocation = benchmark(remove_item, base, victim)
    assert victim not in database


def test_rebuild_latency_reference(benchmark, standard_workload):
    """The number the edits are measured against."""
    allocator = DRPCDSAllocator()
    outcome = benchmark(allocator.allocate, standard_workload, 7)
    assert outcome.allocation.num_channels == 7


if __name__ == "__main__":
    raise SystemExit(main())
