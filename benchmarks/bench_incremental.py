"""Extension bench: incremental maintenance vs full rebuild.

Times a single-item catalogue edit (insert + warm CDS polish) against a
full DRP-CDS re-run and compares the resulting quality.  The point of
incremental maintenance is the latency of the editing path — quality
must stay within a few percent of the rebuild.
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.analysis.tables import format_table
from repro.core.cost import allocation_cost
from repro.core.incremental import insert_item, remove_item
from repro.core.item import DataItem
from repro.core.scheduler import DRPCDSAllocator
from repro.workloads.generator import WorkloadSpec, generate_database


def test_insert_quality_vs_rebuild(benchmark):
    def run():
        rows = []
        allocator = DRPCDSAllocator()
        for seed in range(4):
            database = generate_database(
                WorkloadSpec(num_items=120, seed=seed)
            )
            base = allocator.allocate(database, 7).allocation
            new = DataItem("fresh", 0.05, 15.0)
            grown_db, incremental = insert_item(base, new)
            rebuilt = allocator.allocate(grown_db, 7)
            inc_cost = allocation_cost(incremental)
            rows.append(
                (
                    seed,
                    inc_cost,
                    rebuilt.cost,
                    (inc_cost - rebuilt.cost) / rebuilt.cost * 100,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        ["seed", "incremental cost", "rebuild cost", "gap (%)"],
        rows,
        title="Insert one item: warm-started edit vs full DRP-CDS rebuild",
        precision=4,
    )
    save_report("incremental_insert", report)
    for _, inc_cost, rebuilt_cost, _ in rows:
        assert inc_cost <= rebuilt_cost * 1.05


def test_insert_latency(benchmark, standard_workload):
    base = DRPCDSAllocator().allocate(standard_workload, 7).allocation
    new = DataItem("fresh", 0.03, 9.0)
    database, allocation = benchmark(insert_item, base, new)
    assert "fresh" in database
    assert allocation.num_channels == 7


def test_remove_latency(benchmark, standard_workload):
    base = DRPCDSAllocator().allocate(standard_workload, 7).allocation
    victim = standard_workload.items[17].item_id
    database, allocation = benchmark(remove_item, base, victim)
    assert victim not in database


def test_rebuild_latency_reference(benchmark, standard_workload):
    """The number the edits are measured against."""
    allocator = DRPCDSAllocator()
    outcome = benchmark(allocator.allocate, standard_workload, 7)
    assert outcome.allocation.num_channels == 7
