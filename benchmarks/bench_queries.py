"""Extension bench: multi-item query workloads.

How do the paper's allocators hold up when clients need *sets* of items
(the setting of the paper's references [9][10])?  Compares mean query
span across allocation strategies, and greedy vs fixed retrieval.
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.analysis.tables import format_table
from repro.baselines.flat import RoundRobinAllocator
from repro.core.allocation import ChannelAllocation
from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.core.scheduler import DRPCDSAllocator, make_allocator
from repro.simulation.queries import simulate_query_workload
from repro.workloads.queries import (
    generate_query_workload,
    item_frequencies_from_queries,
)


def run_comparison(database, num_channels=5):
    workload = generate_query_workload(
        database, 40, min_items=1, max_items=4, seed=5
    )
    freqs = item_frequencies_from_queries(
        workload, list(database.item_ids)
    )
    derived = BroadcastDatabase(
        DataItem(item.item_id, freqs[item.item_id], item.size)
        for item in database.items
    )
    query_aware = DRPCDSAllocator().allocate(derived, num_channels).allocation
    query_aware = ChannelAllocation(
        database,
        [
            [database[i.item_id] for i in group]
            for group in query_aware.channels
        ],
    )
    configurations = {
        "round-robin": RoundRobinAllocator()
        .allocate(database, num_channels)
        .allocation,
        "vfk": make_allocator("vfk").allocate(database, num_channels).allocation,
        "drp-cds (item profile)": DRPCDSAllocator()
        .allocate(database, num_channels)
        .allocation,
        "drp-cds (query-derived profile)": query_aware,
    }
    rows = []
    for label, allocation in configurations.items():
        span = simulate_query_workload(
            allocation, workload, num_requests=1200, seed=9
        ).mean
        rows.append((label, span))
    # Retrieval-strategy ablation on the best allocation.
    fixed = simulate_query_workload(
        query_aware, workload, num_requests=1200, seed=9, strategy="fixed"
    ).mean
    return rows, fixed


def test_query_workload_comparison(benchmark, standard_workload):
    rows, fixed_span = benchmark.pedantic(
        run_comparison, args=(standard_workload,), rounds=1, iterations=1
    )
    report = format_table(
        ["configuration", "mean query span (s)"],
        rows + [("query-derived profile, fixed-order client", fixed_span)],
        title="Multi-item queries (1-4 items) over a 120-item catalogue",
        precision=3,
    )
    save_report("query_workloads", report)

    spans = dict(rows)
    # Frequency-aware allocations beat the flat deal on query spans too.
    assert spans["drp-cds (query-derived profile)"] < spans["round-robin"]
    # The greedy client beats the fixed-order client.
    assert spans["drp-cds (query-derived profile)"] <= fixed_span + 1e-9


def test_query_retrieval_throughput(benchmark, small_workload):
    allocation = DRPCDSAllocator().allocate(small_workload, 5).allocation
    workload = generate_query_workload(
        small_workload, 20, min_items=2, max_items=4, seed=1
    )
    summary = benchmark.pedantic(
        simulate_query_workload,
        args=(allocation, workload),
        kwargs={"num_requests": 1000, "seed": 0},
        rounds=2,
        iterations=1,
    )
    assert summary.count == 1000
