"""Complexity claims of Section 3, measured.

* **Lemma 1**: DRP costs ``K·(O(K log K) + O(N))`` — for fixed K the
  runtime is linear in N.  We time DRP over a 16× range of N and check
  the growth stays near-linear (generous factor to absorb noise).
* **CDS**: each iteration evaluates ``O(K·N)`` candidate moves; the
  number of iterations to convergence grows slowly.  We record both.

Timing assertions are deliberately loose — they guard the asymptotic
*shape*, not microsecond values.
"""

from __future__ import annotations

import time

from benchmarks.conftest import save_report
from repro.analysis.tables import format_table
from repro.core.cds import cds_refine
from repro.core.drp import drp_allocate
from repro.workloads.generator import WorkloadSpec, generate_database

SIZES = (60, 120, 240, 480, 960)


def _median_time(function, repeats=5):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def test_drp_linear_in_n(benchmark):
    def measure():
        rows = []
        for n in SIZES:
            database = generate_database(WorkloadSpec(num_items=n, seed=1))
            elapsed = _median_time(lambda db=database: drp_allocate(db, 7))
            rows.append((n, elapsed * 1000))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report = format_table(
        ["N", "DRP time (ms)"],
        rows,
        title="Lemma 1: DRP runtime vs N at K=7 (expected ~linear)",
        precision=4,
    )
    save_report("complexity_drp", report)

    # 16x more items should cost well under 16^2 = 256x if growth is
    # ~linear; allow a factor 8 of slack over perfect linearity.
    smallest, largest = rows[0][1], rows[-1][1]
    scale = SIZES[-1] / SIZES[0]
    assert largest / smallest < scale * 8


def test_cds_iterations_and_move_evaluations(benchmark):
    def measure():
        rows = []
        for n in SIZES[:4]:
            database = generate_database(WorkloadSpec(num_items=n, seed=1))
            rough = drp_allocate(database, 7)
            start = time.perf_counter()
            refined = cds_refine(rough.allocation)
            elapsed = time.perf_counter() - start
            rows.append(
                (
                    n,
                    refined.iterations,
                    elapsed * 1000,
                    (rough.cost - refined.cost) / rough.cost * 100,
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report = format_table(
        ["N", "CDS moves", "CDS time (ms)", "improvement (%)"],
        rows,
        title="CDS convergence vs N at K=7 (each move scans O(K*N) pairs)",
        precision=3,
    )
    save_report("complexity_cds", report)

    for _, iterations, _, improvement in rows:
        assert iterations >= 0
        assert improvement >= -1e-9
    # Convergence stays modest: far fewer moves than items.
    for n, iterations, _, _ in rows:
        assert iterations < n


def test_drp_runtime_insensitive_to_k(benchmark):
    """K only contributes K heap ops + K split scans — tiny next to N."""
    database = generate_database(WorkloadSpec(num_items=480, seed=2))

    def measure():
        return {
            k: _median_time(lambda kk=k: drp_allocate(database, kk))
            for k in (4, 16, 48)
        }

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    # A 12x larger K may cost proportionally more splits (K-1 of them),
    # but each split is O(N); total stays within ~linear-in-K bounds.
    assert times[48] / times[4] < 48
