"""Extension bench: adaptive re-allocation under popularity drift.

Times one adaptation epoch (estimate + re-allocate) and quantifies the
waiting-time advantage of adapting versus a frozen program — the
operational payoff of DRP-CDS being cheap (paper §4.5): a server can
afford to regenerate the program whenever the profile moves.
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.analysis.tables import format_table
from repro.core.scheduler import DRPCDSAllocator
from repro.simulation.adaptive import RotatingDrift, run_adaptive_simulation
from repro.workloads.estimator import estimate_database
from repro.workloads.generator import WorkloadSpec, generate_database
from repro.workloads.trace import synthesize_trace


def test_adaptive_vs_static(benchmark):
    database = generate_database(
        WorkloadSpec(num_items=60, skewness=1.2, diversity=1.8, seed=13)
    )
    drift = RotatingDrift(
        [item.frequency for item in database.items], shift_per_epoch=12
    )
    common = dict(
        num_channels=6,
        epochs=5,
        requests_per_epoch=3000,
        drift=drift,
        seed=2,
    )

    def run_both():
        adaptive = run_adaptive_simulation(
            database, DRPCDSAllocator(), adapt=True, **common
        )
        static = run_adaptive_simulation(
            database, DRPCDSAllocator(), adapt=False, **common
        )
        return adaptive, static

    adaptive, static = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        (a.epoch, s.measured.mean, a.measured.mean)
        for a, s in zip(adaptive, static)
    ]
    report = format_table(
        ["epoch", "static wait (s)", "adaptive wait (s)"],
        rows,
        title="Adaptive re-allocation under rank-rotation drift",
        precision=3,
    )
    save_report("adaptive_vs_static", report)

    # Averaged over the drifted epochs, adapting must win.
    static_mean = sum(r.measured.mean for r in static[1:]) / (len(static) - 1)
    adaptive_mean = sum(r.measured.mean for r in adaptive[1:]) / (
        len(adaptive) - 1
    )
    assert adaptive_mean < static_mean


def test_adaptation_step_runtime(benchmark):
    """One full adaptation step: estimate from 4k requests + re-allocate."""
    database = generate_database(WorkloadSpec(num_items=120, seed=7))
    sizes = {item.item_id: item.size for item in database.items}
    trace = synthesize_trace(database, 4000, seed=1)
    allocator = DRPCDSAllocator()

    def adapt_once():
        estimated = estimate_database(trace, sizes)
        return allocator.allocate(estimated, 7)

    outcome = benchmark(adapt_once)
    assert outcome.allocation.num_channels == 7
