"""Reproducible perf harness for the sharded experiment fabric.

Times three things and writes ``BENCH_shards.json`` at the repository
root:

1. **Store append throughput** — records per second through
   :meth:`repro.experiments.store.ShardStore.append_cell` (the
   per-cell streaming cost a shard pays on top of the computation).
2. **Shard scaling** — one sweep executed through ``M`` concurrent
   ``repro shard run`` subprocesses for M in ``--shard-counts``,
   reporting cells/sec per layout and asserting every layout's merged
   rows are identical to the serial rows.  On a single usable CPU the
   layouts cannot beat M=1 — the section carries the
   ``limited_by_cpu_count`` flag so ``repro bench-check`` records the
   scaling in history without gating on it.
3. **Resume overhead** — a shard run to 90% completion, then resumed:
   the resume (skip-scan + the last 10% of cells) as a fraction of the
   cold run.  The fabric's idempotence claim, as a number.

Run standalone (CI smoke uses ``--replications 1``)::

    python benchmarks/bench_shards.py [--replications 2]
                                      [--shard-counts 1 2 4]
                                      [--output BENCH_shards.json]

or via ``make bench-shards``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import auto_workers
from repro.experiments.runner import run_experiment
from repro.experiments.shards import (
    compile_manifest,
    merge_shards,
    run_shard,
    save_manifest,
)
from repro.experiments.store import ShardStore

SCHEMA_VERSION = 1
DEFAULT_REPLICATIONS = 2
DEFAULT_SHARD_COUNTS = (1, 2, 4)
DEFAULT_STORE_RECORDS = 5_000

#: The timed sweep: figure-2-shaped, paper line-up minus GOPT (cells
#: must be small enough that shard orchestration overhead is visible).
BENCH_SWEEP_VALUES = (4.0, 6.0, 8.0, 10.0)
BENCH_ALGORITHMS = ("vfk", "drp", "drp-cds")


def _bench_config(replications: int) -> ExperimentConfig:
    return ExperimentConfig(
        name="bench-shards",
        description="shard fabric benchmark sweep",
        sweep_parameter="num_channels",
        sweep_values=BENCH_SWEEP_VALUES,
        algorithms=BENCH_ALGORITHMS,
        num_items=120,
        replications=replications,
    )


def _comparable(result):
    return [
        (
            row.sweep_value,
            row.algorithm,
            row.mean_cost,
            row.std_cost,
            row.mean_waiting_time,
            row.std_waiting_time,
            row.replications,
        )
        for row in result.rows
    ]


def bench_store(num_records: int) -> dict:
    """Append throughput of the chunked JSONL store, including resume."""
    payload = {
        "value_index": 3,
        "replication": 1,
        "algorithm": "drp-cds",
        "cost": 12.3456789,
        "waiting_time": 9.87654321,
        "elapsed_seconds": 0.00123,
        "error": None,
        "worker_pid": os.getpid(),
        "started_unix": 1.0,
        "finished_unix": 2.0,
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        store = ShardStore.open(tmp, 0, config_sha256="bench")
        start = time.perf_counter()
        for index in range(num_records):
            store.append_cell(f"[cell={index}]", payload)
        append_seconds = time.perf_counter() - start
        store.close()

        start = time.perf_counter()
        reopened = ShardStore.open(tmp, 0, config_sha256="bench")
        reopen_seconds = time.perf_counter() - start
        recovered = len(reopened.cells)
        reopened.close()
    assert recovered == num_records, "store lost records — bug"
    return {
        "records": num_records,
        "append_seconds": append_seconds,
        "appends_per_second": num_records / append_seconds,
        "reopen_seconds": reopen_seconds,
        "replay_per_second": num_records / reopen_seconds,
    }


def _run_shard_processes(
    manifest_path: Path, num_shards: int, results_dir: Path
) -> float:
    """Launch every shard as its own OS process; return the wall clock."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    start = time.perf_counter()
    procs = [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "shard",
                "run",
                str(manifest_path),
                "--shard",
                str(shard),
                "--results-dir",
                str(results_dir),
                "--quiet",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for shard in range(num_shards)
    ]
    for proc in procs:
        proc.wait()
    elapsed = time.perf_counter() - start
    assert all(proc.returncode == 0 for proc in procs), (
        "a shard subprocess failed — bug"
    )
    return elapsed


def bench_scaling(replications: int, shard_counts) -> dict:
    """Cells/sec for each shard layout, all merged against serial rows."""
    config = _bench_config(replications)
    cells = (
        len(config.sweep_values)
        * config.replications
        * len(config.algorithms)
    )
    start = time.perf_counter()
    serial = run_experiment(config)
    serial_seconds = time.perf_counter() - start
    reference = _comparable(serial)

    layouts = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-shards-") as tmp:
        tmp_path = Path(tmp)
        for num_shards in shard_counts:
            manifest = compile_manifest(config, num_shards=num_shards)
            manifest_path = tmp_path / f"manifest-{num_shards}.json"
            save_manifest(manifest, manifest_path)
            results_dir = tmp_path / f"results-{num_shards}"
            elapsed = _run_shard_processes(
                manifest_path, num_shards, results_dir
            )
            merged = merge_shards(manifest, results_dir=results_dir)
            identical = _comparable(merged) == reference
            assert identical, f"M={num_shards} rows diverged — bug"
            layouts.append(
                {
                    "shards": num_shards,
                    "wall_seconds": elapsed,
                    "cells_per_second": cells / elapsed,
                    "rows_identical": identical,
                }
            )
    return {
        "sweep_values": list(BENCH_SWEEP_VALUES),
        "algorithms": list(BENCH_ALGORITHMS),
        "replications": replications,
        "cells": cells,
        "serial_seconds": serial_seconds,
        "serial_cells_per_second": cells / serial_seconds,
        "layouts": layouts,
        # One usable CPU bounds every layout at ~serial throughput; the
        # flag keeps bench-check from gating on machine shape.
        "limited_by_cpu_count": auto_workers() < 2,
    }


def bench_resume(replications: int) -> dict:
    """Resuming a 90%-complete shard vs recomputing it cold.

    Cells here are heavier (N=400) than the scaling sweep's: resume
    cost is the fixed store open/scan plus the missing 10% of cells,
    so the overhead fraction is only meaningful once per-cell work
    dominates the fixed cost — as it does in any sweep worth sharding.
    """
    config = dataclasses.replace(_bench_config(replications), num_items=400)
    manifest = compile_manifest(config, num_shards=1)
    total = manifest.num_cells
    # At-least-90%-complete: ceiling, so coarse grids (24 cells) don't
    # silently test an 87.5%-complete shard instead.
    warm_cells = min(total - 1, max(1, -((total * 9) // -10)))
    with tempfile.TemporaryDirectory(prefix="repro-bench-resume-") as tmp:
        tmp_path = Path(tmp)
        start = time.perf_counter()
        run_shard(manifest, 0, results_dir=tmp_path / "cold")
        cold_seconds = time.perf_counter() - start

        partial = run_shard(
            manifest, 0, results_dir=tmp_path / "resume", max_cells=warm_cells
        )
        start = time.perf_counter()
        resumed = run_shard(manifest, 0, results_dir=tmp_path / "resume")
        resume_seconds = time.perf_counter() - start
    assert partial.computed == warm_cells
    assert resumed.already_complete == warm_cells
    assert resumed.remaining == 0
    return {
        "cells": total,
        "cells_precomputed": warm_cells,
        "cold_seconds": cold_seconds,
        "resume_seconds": resume_seconds,
        "resume_overhead_fraction": resume_seconds / cold_seconds,
    }


def run_benchmarks(
    replications: int = DEFAULT_REPLICATIONS,
    shard_counts=DEFAULT_SHARD_COUNTS,
    store_records: int = DEFAULT_STORE_RECORDS,
) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "benchmarks/bench_shards.py",
        "config": {
            "replications": replications,
            "shard_counts": list(shard_counts),
            "store_records": store_records,
            "cpu_count": os.cpu_count(),
            "usable_cpus": auto_workers(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "store": bench_store(store_records),
        "scaling": bench_scaling(replications, shard_counts),
        "resume": bench_resume(replications),
    }


def _format_report(document: dict) -> str:
    store = document["store"]
    scaling = document["scaling"]
    resume = document["resume"]
    lines = [
        f"store append        ({store['records']} records)",
        f"  append    {store['appends_per_second']:>10.0f} rec/s",
        f"  replay    {store['replay_per_second']:>10.0f} rec/s",
        f"shard scaling       ({scaling['cells']} cells, "
        f"{document['config']['usable_cpus']} usable CPU(s))"
        + (
            "   [limited by cpu count — environment note, not a "
            "regression]"
            if scaling.get("limited_by_cpu_count")
            else ""
        ),
        f"  serial    {scaling['serial_cells_per_second']:>10.1f} cells/s",
    ]
    for layout in scaling["layouts"]:
        lines.append(
            f"  M={layout['shards']}       "
            f"{layout['cells_per_second']:>10.1f} cells/s   "
            f"(rows identical: {layout['rows_identical']})"
        )
    lines.append(
        f"resume              ({resume['cells_precomputed']}/"
        f"{resume['cells']} cells precomputed)"
    )
    lines.append(
        f"  cold      {resume['cold_seconds']:>10.3f} s"
    )
    lines.append(
        f"  resume    {resume['resume_seconds']:>10.3f} s   "
        f"({resume['resume_overhead_fraction'] * 100:.1f}% of cold)"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--replications", type=int, default=DEFAULT_REPLICATIONS,
        help="replications per sweep value (default: 2)",
    )
    parser.add_argument(
        "--shard-counts", type=int, nargs="+",
        default=list(DEFAULT_SHARD_COUNTS),
        help="shard layouts to time (default: 1 2 4)",
    )
    parser.add_argument(
        "--store-records", type=int, default=DEFAULT_STORE_RECORDS,
        help="records for the store throughput section (default: 5000)",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_shards.json",
        help="where to write the JSON document (default: repo root)",
    )
    options = parser.parse_args(argv)

    document = run_benchmarks(
        replications=options.replications,
        shard_counts=options.shard_counts,
        store_records=options.store_records,
    )
    options.output.write_text(json.dumps(document, indent=2) + "\n")
    print(_format_report(document))
    print(f"\nwrote {options.output}")
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark smoke wrapper (keeps `make bench` coverage)
# ----------------------------------------------------------------------
def test_shard_fabric_smoke(benchmark):
    from benchmarks.conftest import save_report

    document = benchmark.pedantic(
        lambda: run_benchmarks(
            replications=1, shard_counts=(1, 2), store_records=500
        ),
        rounds=1,
        iterations=1,
    )
    assert all(
        layout["rows_identical"]
        for layout in document["scaling"]["layouts"]
    )
    assert document["resume"]["resume_overhead_fraction"] < 0.5
    save_report("shards", _format_report(document))


if __name__ == "__main__":
    raise SystemExit(main())
