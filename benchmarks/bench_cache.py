"""Extension bench: client caching policies over a DRP-CDS program.

Sweeps cache capacity and compares LRU / LFU / PIX effective waiting
times.  Measured shape over a *DRP-CDS-optimised* program:

* under tight capacity PIX wins — it spends the scarce budget on items
  that are expensive to refetch (long cycles), exactly its design;
* with a large cache LFU pulls ahead: PIX keeps declining to cache hot
  items because the allocator already parked them on short cycles, but
  once space is plentiful caching them anyway is free hits.

A good allocation thus *shrinks* PIX's classical advantage — a
complement to the replication finding (docs/extensions.md).
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.analysis.tables import format_table
from repro.core.scheduler import DRPCDSAllocator
from repro.simulation.cache import (
    LFUPolicy,
    LRUPolicy,
    PIXPolicy,
    simulate_with_cache,
)
from repro.workloads.generator import WorkloadSpec, generate_database

CAPACITIES = (0.0, 10.0, 30.0, 100.0, 300.0)
POLICIES = {"lru": LRUPolicy, "lfu": LFUPolicy, "pix": PIXPolicy}


def sweep():
    database = generate_database(
        WorkloadSpec(num_items=80, skewness=1.2, diversity=1.5, seed=6)
    )
    allocation = DRPCDSAllocator().allocate(database, 5).allocation
    rows = []
    for capacity in CAPACITIES:
        row = [capacity]
        for factory in POLICIES.values():
            report = simulate_with_cache(
                allocation,
                capacity=capacity,
                policy=factory(),
                num_requests=8000,
                seed=11,
            )
            row.append(report.effective.mean)
        # Hit rate column from the last policy run is representative of
        # capacity pressure; recompute with LRU for consistency.
        lru = simulate_with_cache(
            allocation,
            capacity=capacity,
            policy=LRUPolicy(),
            num_requests=8000,
            seed=11,
        )
        row.append(lru.hit_rate * 100)
        rows.append(tuple(row))
    return rows


def test_cache_policy_sweep(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = format_table(
        ["capacity", "lru W_eff", "lfu W_eff", "pix W_eff", "lru hit %"],
        rows,
        title="Client cache over a DRP-CDS program (N=80, K=5, θ=1.2)",
        precision=3,
    )
    save_report("cache_policies", report)

    # Caching monotonically improves effective waiting (per policy).
    for column in (1, 2, 3):
        series = [row[column] for row in rows]
        assert series[-1] < series[0]
    # Tight capacity (first two non-zero rows): PIX is the best policy.
    for row in rows[1:3]:
        assert row[3] <= min(row[1], row[2]) + 1e-9
    # Ample capacity: LFU overtakes PIX (see module docstring).
    last = rows[-1]
    assert last[2] < last[3]
