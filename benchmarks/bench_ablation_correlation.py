"""Ablation: popularity-size correlation.

The paper (and our default generator) draws item size independently of
popularity.  What if they are coupled — popular items huge (positive
correlation, e.g. viral videos) or popular items tiny (negative, e.g.
headlines)?  Sweeping the generator's correlation knob:

* **DRP-CDS is robust**: within ~1% of GOPT across the whole range.
* **VF^K degrades most under negative correlation** (hot = tiny).
  Counter-intuitive at first — with hot-small items the frequency order
  *equals* the benefit-ratio order — but VF^K also chooses its split
  points by item *count*, and anti-correlation makes group sizes (and
  thus cycle lengths) maximally unequal, so count-based splits are
  maximally wrong.
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.analysis.stats import aggregate
from repro.analysis.tables import format_table
from repro.core.scheduler import make_allocator
from repro.workloads.generator import WorkloadSpec, generate_database

CORRELATIONS = (-1.0, -0.5, 0.0, 0.5, 1.0)
SEEDS = range(3)


def sweep():
    rows = []
    for correlation in CORRELATIONS:
        vfk_gaps = []
        drpcds_gaps = []
        for seed in SEEDS:
            database = generate_database(
                WorkloadSpec(num_items=80, seed=seed, correlation=correlation)
            )
            gopt = make_allocator("gopt").allocate(database, 6).cost
            vfk = make_allocator("vfk").allocate(database, 6).cost
            drpcds = make_allocator("drp-cds").allocate(database, 6).cost
            vfk_gaps.append((vfk - gopt) / gopt * 100)
            drpcds_gaps.append((drpcds - gopt) / gopt * 100)
        rows.append(
            (
                correlation,
                aggregate(vfk_gaps).mean,
                aggregate(drpcds_gaps).mean,
            )
        )
    return rows


def test_correlation_ablation(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = format_table(
        ["popularity-size corr", "vfk gap (%)", "drp-cds gap (%)"],
        rows,
        title="Gap vs GOPT as popularity-size correlation varies (N=80, K=6)",
        precision=2,
    )
    save_report("ablation_correlation", report)

    gaps = {corr: (vfk, drpcds) for corr, vfk, drpcds in rows}
    # DRP-CDS robust across the whole range.
    assert all(drpcds < 3.0 for _, _, drpcds in rows)
    # VF^K is worst under strong negative correlation.
    assert gaps[-1.0][0] > gaps[1.0][0]
    assert gaps[-1.0][0] > gaps[0.0][0]
