"""Quickstart: allocate a synthetic workload and inspect the result.

Run with::

    python examples/quickstart.py

Walks the minimal end-to-end flow: synthesise a broadcast database from
the paper's workload model (Zipf popularity, diverse sizes), run the
paper's DRP-CDS scheduler, compare against the conventional VF^K
baseline, and validate the analytical waiting time with the
discrete-event simulator.
"""

from __future__ import annotations

from repro import (
    DRPCDSAllocator,
    WorkloadSpec,
    average_waiting_time,
    generate_database,
)
from repro.analysis.tables import format_table
from repro.baselines import VFKAllocator
from repro.simulation import run_broadcast_simulation


def main() -> None:
    # 1. Build a workload: 100 items, Zipf(0.9) popularity, sizes
    #    spanning three orders of magnitude (diversity 2.5).
    spec = WorkloadSpec(num_items=100, skewness=0.9, diversity=2.5, seed=7)
    database = generate_database(spec)
    print(
        f"database: {len(database)} items, total size "
        f"{database.total_size:.1f} units\n"
    )

    # 2. Allocate to 6 broadcast channels with the paper's scheme.
    num_channels = 6
    drpcds = DRPCDSAllocator().allocate(database, num_channels)
    vfk = VFKAllocator().allocate(database, num_channels)

    rows = []
    for outcome in (vfk, drpcds):
        rows.append(
            (
                outcome.algorithm,
                outcome.cost,
                average_waiting_time(outcome.allocation),
                outcome.elapsed_seconds * 1000,
            )
        )
    print(
        format_table(
            ["algorithm", "cost", "waiting time (s)", "exec (ms)"], rows
        )
    )

    # 3. Inspect the winning allocation: hot/small items share short
    #    channels, cold/large items long ones.
    print("\nDRP-CDS channel layout:")
    for index, stats in enumerate(drpcds.allocation.channel_stats):
        print(
            f"  channel {index}: {stats.count:3d} items, "
            f"F={stats.frequency:.3f}, Z={stats.size:9.1f}, "
            f"cycle={stats.size / 10.0:8.2f}s"
        )

    # 4. Validate the analytical model by simulation.
    report = run_broadcast_simulation(
        drpcds.allocation, num_requests=20000, seed=1
    )
    print(
        f"\nsimulated waiting time: {report.measured.mean:.3f}s "
        f"± {report.measured.ci_halfwidth:.3f} (95% CI)\n"
        f"analytical waiting time: {report.analytical_waiting_time:.3f}s "
        f"(error {report.relative_error * 100:.2f}%)"
    )


if __name__ == "__main__":
    main()
