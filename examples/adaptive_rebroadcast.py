"""Scenario: adaptive re-broadcasting under drifting client interests.

Run with::

    python examples/adaptive_rebroadcast.py

The paper's complexity result — DRP-CDS generates programs orders of
magnitude faster than a GA — is what makes *adaptive* operation
practical: the server can afford to re-run the allocator at every epoch
boundary.  This example closes the Figure 1 loop end to end:

  clients request (with drifting interests)
    -> server logs the trace
    -> estimates fresh frequencies (Laplace-smoothed counts)
    -> regenerates the broadcast program with DRP-CDS

and compares against a server that never re-allocates.
"""

from __future__ import annotations

from repro import DRPCDSAllocator, WorkloadSpec, generate_database
from repro.analysis.tables import format_table
from repro.simulation import RotatingDrift, run_adaptive_simulation
from repro.workloads import CountEstimator


def main() -> None:
    database = generate_database(
        WorkloadSpec(num_items=60, skewness=1.2, diversity=1.8, seed=13)
    )
    # Harsh drift: popularity ranks rotate by 12 items per epoch, so
    # after a few epochs yesterday's program is badly stale.
    drift = RotatingDrift(
        [item.frequency for item in database.items], shift_per_epoch=12
    )
    common = dict(
        num_channels=6,
        epochs=6,
        requests_per_epoch=4000,
        drift=drift,
        estimator=CountEstimator(smoothing=0.5),
        seed=2,
    )

    adaptive = run_adaptive_simulation(
        database, DRPCDSAllocator(), adapt=True, **common
    )
    static = run_adaptive_simulation(
        database, DRPCDSAllocator(), adapt=False, **common
    )

    rows = []
    for a, s in zip(adaptive, static):
        rows.append(
            (
                a.epoch,
                s.measured.mean,
                a.measured.mean,
                s.profile_error,
                a.profile_error,
            )
        )
    print(
        format_table(
            [
                "epoch",
                "static wait (s)",
                "adaptive wait (s)",
                "static profile err",
                "adaptive profile err",
            ],
            rows,
            title="Drifting interests: static vs adaptive broadcast program",
            precision=3,
        )
    )

    static_mean = sum(r.measured.mean for r in static[1:]) / (len(static) - 1)
    adaptive_mean = sum(r.measured.mean for r in adaptive[1:]) / (
        len(adaptive) - 1
    )
    print(
        f"\nafter drift sets in (epochs 1+): static {static_mean:.2f}s vs "
        f"adaptive {adaptive_mean:.2f}s "
        f"({(static_mean - adaptive_mean) / static_mean * 100:.1f}% saved)"
    )
    print(
        "profile error is the L1 distance between the profile the program\n"
        "was built from and the epoch's true request distribution."
    )


if __name__ == "__main__":
    main()
