"""Scenario: unequal channel capacities (extension beyond the paper).

Run with::

    python examples/heterogeneous_channels.py

The paper assumes every channel has the same bandwidth.  Suppose an
operator aggregates whatever spectrum it has: one wide channel and
several narrow ones.  With per-channel bandwidth the download term of
the waiting time is no longer allocation-independent, and it also
matters *which* group lands on *which* channel.  This example compares:

1. the paper's DRP-CDS dropped naively onto the unequal channels
   (groups assigned in DRP order),
2. DRP-CDS plus the optimal group-to-channel assignment
   (rearrangement inequality), and
3. the full bandwidth-aware pipeline (`HeteroDRPCDSAllocator`),

all evaluated with the generalised waiting-time model of
`repro.core.hetero` and cross-checked by discrete-event simulation.
"""

from __future__ import annotations

from repro import DRPCDSAllocator, WorkloadSpec, generate_database
from repro.analysis.tables import format_table
from repro.core.hetero import (
    HeteroDRPCDSAllocator,
    assign_groups_to_bandwidths,
    hetero_waiting_time,
)
from repro.simulation import run_broadcast_simulation

#: One fat pipe, two medium, three narrow — total 60 units/s over K=6.
BANDWIDTHS = [25.0, 10.0, 10.0, 5.0, 5.0, 5.0]


def main() -> None:
    database = generate_database(
        WorkloadSpec(num_items=90, skewness=0.9, diversity=2.0, seed=17)
    )
    num_channels = len(BANDWIDTHS)
    print(
        f"catalogue: {len(database)} items; channel bandwidths "
        f"{BANDWIDTHS} (units/s)\n"
    )

    # 1. Naive: the paper's pipeline, groups in DRP order.
    naive = DRPCDSAllocator().allocate(database, num_channels).allocation

    # 2. Same groups, optimally assigned to channels.
    groups = [list(g) for g in naive.channels]
    mapping = assign_groups_to_bandwidths(groups, BANDWIDTHS)
    assigned = naive.replace_channels(
        [groups[mapping[i]] for i in range(num_channels)]
    )

    # 3. Fully bandwidth-aware pipeline.
    aware = (
        HeteroDRPCDSAllocator(BANDWIDTHS)
        .allocate(database, num_channels)
        .allocation
    )

    rows = []
    for label, allocation in (
        ("paper pipeline, naive placement", naive),
        ("+ optimal group placement", assigned),
        ("bandwidth-aware pipeline", aware),
    ):
        analytical = hetero_waiting_time(allocation, BANDWIDTHS)
        simulated = run_broadcast_simulation(
            allocation,
            bandwidths=BANDWIDTHS,
            num_requests=30000,
            seed=4,
        ).measured.mean
        rows.append((label, analytical, simulated))
    print(
        format_table(
            ["configuration", "analytical W_b (s)", "simulated W_b (s)"],
            rows,
            precision=3,
        )
    )

    base, placed, full = (row[1] for row in rows)
    print(
        f"\noptimal placement alone saves "
        f"{(base - placed) / base * 100:.1f}%; the bandwidth-aware "
        f"pipeline saves {(base - full) / base * 100:.1f}% total."
    )
    print("\nbandwidth-aware channel layout:")
    for index, group in enumerate(aware.channels):
        stats = aware.channel_stats[index]
        print(
            f"  channel {index} ({BANDWIDTHS[index]:5.1f} u/s): "
            f"{stats.count:3d} items, F={stats.frequency:.3f}, "
            f"cycle={stats.size / BANDWIDTHS[index]:7.1f}s"
        )


if __name__ == "__main__":
    main()
