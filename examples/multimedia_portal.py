"""Scenario: a mobile multimedia portal — the paper's motivating setting.

Run with::

    python examples/multimedia_portal.py

The paper's introduction motivates diverse data broadcasting with
modern information services mixing text, images, audio and video.  This
example builds such a catalogue explicitly — four content classes with
realistic size scales and popularity — and shows why a size-oblivious
(conventional) allocator melts down while DRP-CDS keeps popular text
snappy without starving video.
"""

from __future__ import annotations

from repro import DRPCDSAllocator
from repro.analysis.tables import format_table
from repro.baselines import VFKAllocator
from repro.core.cost import average_waiting_time
from repro.simulation.server import BroadcastProgram
from repro.workloads.catalog import (
    MULTIMEDIA_CLASSES,
    build_catalogue,
    class_of,
)

#: The library's default mobile-portal mix (text/image/audio/video).
CONTENT_CLASSES = MULTIMEDIA_CLASSES


def per_class_waiting(program: BroadcastProgram) -> dict:
    """Frequency-weighted expected waiting time per content class."""
    totals: dict = {}
    for item in program.allocation.database:
        name = class_of(item.item_id)
        wait = program.expected_waiting_time(item.item_id)
        freq_sum, wait_sum = totals.get(name, (0.0, 0.0))
        totals[name] = (freq_sum + item.frequency,
                        wait_sum + item.frequency * wait)
    return {
        name: wait_sum / freq_sum
        for name, (freq_sum, wait_sum) in totals.items()
    }


def main() -> None:
    database = build_catalogue()
    num_channels = 8
    bandwidth = 100.0  # units/second — a faster pipe for multimedia

    print(
        f"portal catalogue: {len(database)} items, "
        f"{database.total_size:,.0f} size units total\n"
    )

    outcomes = {
        "vfk (size-oblivious)": VFKAllocator().allocate(
            database, num_channels
        ),
        "drp-cds (diverse-aware)": DRPCDSAllocator().allocate(
            database, num_channels
        ),
    }

    rows = []
    for name, outcome in outcomes.items():
        rows.append(
            (
                name,
                average_waiting_time(outcome.allocation, bandwidth=bandwidth),
            )
        )
    print(format_table(["allocator", "avg waiting time (s)"], rows))

    print("\nPer-class expected waiting time (seconds):")
    class_rows = []
    programs = {
        name: BroadcastProgram(outcome.allocation, bandwidth=bandwidth)
        for name, outcome in outcomes.items()
    }
    class_names = [spec.name for spec in CONTENT_CLASSES]
    for class_name in class_names:
        row = [class_name]
        for name in outcomes:
            row.append(per_class_waiting(programs[name])[class_name])
        class_rows.append(tuple(row))
    print(
        format_table(
            ["class"] + list(outcomes), class_rows, precision=2
        )
    )

    drpcds = outcomes["drp-cds (diverse-aware)"]
    print("\nDRP-CDS channel layout (hot/small -> cold/large):")
    for index, group in enumerate(drpcds.allocation.channels):
        classes = sorted({class_of(item.item_id) for item in group})
        stats = drpcds.allocation.channel_stats[index]
        print(
            f"  channel {index}: {stats.count:3d} items "
            f"({', '.join(classes)}), cycle "
            f"{stats.size / bandwidth:7.1f}s"
        )


if __name__ == "__main__":
    main()
