"""Scenario: capacity planning — how many channels does a service need?

Run with::

    python examples/capacity_planning.py

An operator has a fixed catalogue and a waiting-time target; channels
are the scarce resource (spectrum).  This example sweeps the channel
count, compares the achieved waiting time against the analytical lower
bound from repro.analysis.theory, and reports the smallest K meeting
the target — the kind of question the paper's Figure 2 answers
qualitatively, turned into a planning tool.
"""

from __future__ import annotations

from repro import DRPCDSAllocator, WorkloadSpec, generate_database
from repro.analysis.tables import format_table
from repro.analysis.theory import waiting_time_lower_bound
from repro.core.cost import average_waiting_time

TARGET_WAITING_TIME = 6.0  # seconds
BANDWIDTH = 10.0


def main() -> None:
    database = generate_database(
        WorkloadSpec(num_items=150, skewness=0.9, diversity=2.0, seed=11)
    )
    allocator = DRPCDSAllocator()

    print(
        f"catalogue: {len(database)} items, "
        f"{database.total_size:,.0f} units; target waiting time "
        f"{TARGET_WAITING_TIME}s at bandwidth {BANDWIDTH}\n"
    )

    rows = []
    chosen = None
    for num_channels in range(2, 17):
        outcome = allocator.allocate(database, num_channels)
        achieved = average_waiting_time(
            outcome.allocation, bandwidth=BANDWIDTH
        )
        bound = waiting_time_lower_bound(
            database, num_channels, bandwidth=BANDWIDTH
        )
        headroom = (achieved - bound) / bound * 100
        meets = achieved <= TARGET_WAITING_TIME
        rows.append(
            (
                num_channels,
                achieved,
                bound,
                f"{headroom:.1f}%",
                "yes" if meets else "no",
            )
        )
        if meets and chosen is None:
            chosen = num_channels
    print(
        format_table(
            [
                "K",
                "DRP-CDS waiting (s)",
                "lower bound (s)",
                "gap to bound",
                "meets target",
            ],
            rows,
            precision=3,
        )
    )

    if chosen is None:
        print(
            "\nno channel count up to 16 meets the target — "
            "raise bandwidth or trim the catalogue"
        )
    else:
        print(f"\nsmallest viable channel count: K = {chosen}")
        # Diminishing returns: quantify the marginal channel.
        before = average_waiting_time(
            allocator.allocate(database, chosen).allocation,
            bandwidth=BANDWIDTH,
        )
        after = average_waiting_time(
            allocator.allocate(database, chosen + 1).allocation,
            bandwidth=BANDWIDTH,
        )
        print(
            f"adding one more channel buys only "
            f"{before - after:.3f}s ({(before - after) / before * 100:.1f}%)"
        )


if __name__ == "__main__":
    main()
