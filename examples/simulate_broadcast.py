"""Scenario: validate and stress the broadcast program in simulation.

Run with::

    python examples/simulate_broadcast.py

Exercises the discrete-event substrate beyond the analytical model's
assumptions:

1. validates Eq. (2) under the matched Poisson workload,
2. measures tail behaviour (max waits) the expectation hides,
3. studies *profile mismatch* — what happens when the clients' actual
   interests drift from the access profile the program was built for.
"""

from __future__ import annotations

import numpy as np

from repro import DRPCDSAllocator, WorkloadSpec, generate_database
from repro.analysis.tables import format_table
from repro.simulation import run_broadcast_simulation


def main() -> None:
    database = generate_database(
        WorkloadSpec(num_items=80, skewness=1.0, diversity=2.0, seed=3)
    )
    allocation = DRPCDSAllocator().allocate(database, 6).allocation

    # 1. Matched workload: measurement vs model.
    report = run_broadcast_simulation(
        allocation, num_requests=40000, seed=0
    )
    print("matched workload (requests follow the optimised profile):")
    print(
        f"  measured  {report.measured.mean:.3f}s "
        f"± {report.measured.ci_halfwidth:.3f}\n"
        f"  analytical {report.analytical_waiting_time:.3f}s "
        f"(error {report.relative_error * 100:.2f}%)"
    )

    # 2. Tails: the mean hides how long unlucky clients wait.
    print(
        f"  worst observed wait: {report.measured.maximum:.1f}s "
        f"({report.measured.maximum / report.measured.mean:.1f}x the mean)"
    )
    hottest = database.sorted_by_frequency()[0]
    coldest = database.sorted_by_frequency()[-1]
    for label, item in (("hottest", hottest), ("coldest", coldest)):
        stats = report.per_item.get(item.item_id)
        if stats:
            print(
                f"  {label} item {item.item_id}: mean {stats.mean:.2f}s "
                f"over {stats.count} requests"
            )

    # 3. Profile mismatch: blend the true profile with uniform noise.
    print("\nprofile mismatch (clients drift away from the profile):")
    frequencies = np.array([item.frequency for item in database.items])
    uniform = np.full(len(database), 1.0 / len(database))
    rows = []
    for drift in (0.0, 0.25, 0.5, 1.0):
        blended = (1 - drift) * frequencies + drift * uniform
        drifted = run_broadcast_simulation(
            allocation,
            num_requests=40000,
            seed=0,
            request_probabilities=blended.tolist(),
        )
        rows.append(
            (
                f"{drift:.0%}",
                drifted.measured.mean,
                (drifted.measured.mean - report.analytical_waiting_time)
                / report.analytical_waiting_time
                * 100,
            )
        )
    print(
        format_table(
            ["drift toward uniform", "measured wait (s)", "vs plan (%)"],
            rows,
            precision=2,
        )
    )
    print(
        "\nthe program degrades gracefully: even a fully uniform request\n"
        "mix only raises waits by the amount shown in the last row —\n"
        "re-run the allocator on fresh profile estimates to recover."
    )


if __name__ == "__main__":
    main()
