"""Reproduce the paper's worked example (Tables 2-4) step by step.

Run with::

    python examples/reproduce_paper_example.py

Prints the Table 2 profile, every DRP iteration of Table 3, every CDS
move of Table 4, and checks the golden costs (135.60 → 24.09 → 22.29).
Equivalent to ``python -m repro example`` — kept as a library-level
script so the walk-through is copy-pasteable into user code.
"""

from __future__ import annotations

from repro import cds_refine, drp_allocate, paper_database
from repro.analysis.tables import format_float, format_table
from repro.workloads import (
    PAPER_CDS_COST,
    PAPER_DRP_COST,
    PAPER_NUM_CHANNELS,
)


def main() -> None:
    database = paper_database()

    print("Table 2 profile, sorted by benefit ratio f/z:")
    print(
        format_table(
            ["item", "frequency", "size", "br"],
            [
                (i.item_id, i.frequency, i.size, i.benefit_ratio)
                for i in database.sorted_by_benefit_ratio()
            ],
        )
    )

    # The worked example follows the max-reduction policy (the paper's
    # listing says max-cost; see repro.core.drp for the discrepancy).
    result = drp_allocate(
        database,
        PAPER_NUM_CHANNELS,
        split_policy="max-reduction",
        trace=True,
    )
    print("\nAlgorithm DRP (Table 3):")
    for snap in result.snapshots:
        line = " | ".join(
            f"{{{','.join(group)}}}={format_float(cost, precision=2)}"
            for group, cost in zip(snap.groups, snap.costs)
        )
        print(f"  iter {snap.iteration}: {line}")
    print(
        f"  DRP cost {format_float(result.cost, precision=2)} "
        f"(paper: {PAPER_DRP_COST})"
    )

    refined = cds_refine(result.allocation)
    print("\nMechanism CDS (Table 4):")
    for move in refined.moves:
        print(
            f"  move {move.item_id} ch{move.origin + 1}->ch"
            f"{move.destination + 1}: delta "
            f"{format_float(move.delta, precision=2)}, cost "
            f"{format_float(move.cost_after, precision=2)}"
        )
    print(
        f"  local optimum {format_float(refined.cost, precision=2)} "
        f"(paper: {PAPER_CDS_COST})"
    )

    print("\nFinal broadcast program:")
    for index, group in enumerate(refined.allocation.as_id_lists()):
        print(f"  channel {index + 1}: {{{', '.join(group)}}}")

    assert abs(result.cost - PAPER_DRP_COST) < 0.02
    assert abs(refined.cost - PAPER_CDS_COST) < 0.02
    print("\ngolden values check: OK")


if __name__ == "__main__":
    main()
