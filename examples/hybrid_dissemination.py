"""Scenario: hybrid dissemination — push the head, pull the tail.

Run with::

    python examples/hybrid_dissemination.py

A classic architecture combines both dissemination modes: broadcast the
popular head of the catalogue as a periodic push program (scales to any
audience) and serve the long cold tail on-demand (no one should wait
half a cycle for an item requested twice a day).  This example sizes
the split with the library's own tools:

1. sort the catalogue by access frequency;
2. for each split point, build a DRP-CDS program for the head over
   K−1 channels and give the tail one on-demand channel (RxW);
3. measure the blended mean waiting time and pick the best split.

All pieces — the allocator, the analytical model, the on-demand
simulator — come from the public API.
"""

from __future__ import annotations

from repro import BroadcastDatabase, DRPCDSAllocator, WorkloadSpec, generate_database
from repro.analysis.tables import format_table
from repro.core.cost import average_waiting_time
from repro.simulation.ondemand import SizeAwareRxWPolicy, simulate_on_demand

TOTAL_CHANNELS = 6
BANDWIDTH = 10.0
REQUEST_RATE = 4.0  # aggregate requests per second


def main() -> None:
    database = generate_database(
        WorkloadSpec(num_items=100, skewness=1.1, diversity=1.8, seed=23)
    )
    by_popularity = database.sorted_by_frequency()

    # Pure-push reference: all items, all channels.
    pure_push = average_waiting_time(
        DRPCDSAllocator().allocate(database, TOTAL_CHANNELS).allocation,
        bandwidth=BANDWIDTH,
    )

    rows = []
    best = ("pure push", pure_push)
    for head_count in (60, 75, 90):
        head_items = by_popularity[:head_count]
        tail_items = by_popularity[head_count:]
        head_mass = sum(item.frequency for item in head_items)
        tail_mass = 1.0 - head_mass

        # Push program for the head over K-1 channels (frequencies
        # renormalised — the program only competes for head requests).
        head_db = BroadcastDatabase(head_items, require_normalized=False)
        head_db = head_db.normalized()
        push_wait = average_waiting_time(
            DRPCDSAllocator().allocate(head_db, TOTAL_CHANNELS - 1).allocation,
            bandwidth=BANDWIDTH,
        )

        # On-demand channel for the tail; tail requests arrive at the
        # tail's share of the aggregate rate.
        tail_db = BroadcastDatabase(
            tail_items, require_normalized=False
        ).normalized()
        pull = simulate_on_demand(
            tail_db,
            policy=SizeAwareRxWPolicy(),
            num_channels=1,
            bandwidth=BANDWIDTH,
            num_requests=4000,
            arrival_rate=REQUEST_RATE * tail_mass,
            seed=1,
        )
        blended = head_mass * push_wait + tail_mass * pull.waiting.mean
        label = f"push {head_count} hot / pull {len(tail_items)} cold"
        rows.append(
            (label, push_wait, pull.waiting.mean, blended)
        )
        if blended < best[1]:
            best = (label, blended)

    print(
        format_table(
            [
                "configuration",
                "head push wait (s)",
                "tail pull wait (s)",
                "blended wait (s)",
            ],
            rows,
            title=(
                f"Hybrid dissemination, {TOTAL_CHANNELS} channels total, "
                f"aggregate rate {REQUEST_RATE}/s"
            ),
            precision=3,
        )
    )
    print(f"\npure push (all {len(database)} items): {pure_push:.3f}s")
    print(f"best configuration: {best[0]} at {best[1]:.3f}s")
    print(
        "\nmoving the cold tail off the cycle shortens the push program\n"
        "for everyone, while the trickle of tail requests is served\n"
        "almost immediately by the dedicated on-demand channel."
    )


if __name__ == "__main__":
    main()
