"""Scenario: battery life — (1, m) indexing on a DRP-CDS program.

Run with::

    python examples/energy_aware_indexing.py

The paper optimises waiting time; mobile devices also care about
*tuning time* (active-listening seconds ≈ battery drain).  This example
takes the hottest channel of a DRP-CDS program and sweeps the index
replication factor m, showing the classic trade-off:

* tuning time falls monotonically with m (clients doze more),
* waiting time is U-shaped with its minimum near
  m* = sqrt(data size / index size).

Extension beyond the paper (DESIGN.md §6); model follows Imielinski et
al., the paper's reference [11].
"""

from __future__ import annotations

from repro import DRPCDSAllocator, WorkloadSpec, generate_database
from repro.analysis.tables import format_table
from repro.simulation.indexing import IndexedChannel, optimal_index_replication

BANDWIDTH = 10.0
INDEX_ENTRY_SIZE = 0.25  # directory units contributed per item


def main() -> None:
    database = generate_database(
        WorkloadSpec(num_items=120, skewness=1.0, diversity=1.5, seed=5)
    )
    allocation = DRPCDSAllocator().allocate(database, 6).allocation

    # Pick the busiest channel (highest aggregate frequency).
    hot = max(
        range(allocation.num_channels),
        key=lambda i: allocation.channel_stats[i].frequency,
    )
    items = allocation.channel_items(hot)
    stats = allocation.channel_stats[hot]
    print(
        f"hot channel: {stats.count} items, F={stats.frequency:.3f}, "
        f"data={stats.size:.1f} units\n"
    )

    data_size = stats.size
    index_size = len(items) * INDEX_ENTRY_SIZE
    rule = optimal_index_replication(data_size, index_size)

    rows = []
    candidates = {1, 2, 4, rule, 8, 16, len(items) // 2, len(items)}
    for m in sorted(m for m in candidates if 1 <= m <= len(items)):
        channel = IndexedChannel(
            hot,
            items,
            BANDWIDTH,
            replication=m,
            index_entry_size=INDEX_ENTRY_SIZE,
        )
        # Frequency-weighted expectations over the channel's items.
        weight = sum(item.frequency for item in items)
        wait = sum(
            item.frequency
            * channel.expected_timing(item.item_id).waiting_time
            for item in items
        ) / weight
        tune = sum(
            item.frequency
            * channel.expected_timing(item.item_id).tuning_time
            for item in items
        ) / weight
        rows.append(
            (
                f"m={m}" + (" (= m*)" if m == rule else ""),
                wait,
                tune,
                (1 - tune / wait) * 100,
                channel.index_overhead * 100,
            )
        )
    print(
        format_table(
            [
                "replication",
                "E[wait] (s)",
                "E[tuning] (s)",
                "dozing (%)",
                "index overhead (%)",
            ],
            rows,
            title=(
                "Waiting vs tuning trade-off "
                f"(sqrt rule suggests m* = {rule})"
            ),
            precision=2,
        )
    )
    print(
        "\ntuning time only falls as m grows, but past m* the longer\n"
        "cycle makes everyone wait more — pick m* for latency, or a\n"
        "larger m if battery matters more than freshness."
    )


if __name__ == "__main__":
    main()
