"""Sketch-based streaming frequency estimation: O(width × depth) state.

The estimators in :mod:`repro.workloads.estimator` walk a complete
:class:`~repro.workloads.trace.RequestTrace` — O(requests) memory, fine
for an offline epoch but not for a broadcaster tracking millions of
users.  This module provides the streaming path the live service
(:mod:`repro.service`) ingests through:

* :class:`CountMinSketch` — the Cormode–Muthukrishnan count-min sketch
  with an optional exponential decay (half-life in stream time), an
  optional *conservative update* rule that tightens over-estimates, and
  an optional *exact-counter oracle* mode that additionally keeps the
  true per-item decayed counts (O(items) state — for tests, benchmarks
  and error accounting, never for production scale);
* :class:`SketchEstimator` — the ``estimate(trace, catalogue)`` adapter
  making a sketch a drop-in for :class:`CountEstimator` /
  :class:`DecayEstimator` in
  :func:`repro.workloads.estimator.estimate_database`.

Guarantees (tested property-style in ``tests/test_sketch.py``):

* a point estimate **never under-estimates** the true (decayed) count —
  hash collisions only ever add mass, and the conservative update rule
  preserves the invariant;
* with width ``w`` and depth ``d``, the over-estimate of any single
  item exceeds ``(e / w) · total`` with probability at most ``e^-d``
  over the hash choice (the classical count-min bound, with ``total``
  the decayed stream mass);
* on a collision-free stream the decayed estimate matches
  :class:`~repro.workloads.estimator.DecayEstimator` up to floating
  point (same ``0.5 ** (Δt / half_life)`` weighting, same smoothing
  and normalisation in :meth:`CountMinSketch.estimate_profile`).

Decay is implemented with the standard *inflation* trick so an update
stays O(depth): instead of decaying every counter at every tick, an
arrival at stream time ``t`` adds ``2 ** ((t - origin) / half_life)``
(its weight *inflated* to the sketch's origin scale) and a query at
time ``T`` deflates by ``2 ** -((T - origin) / half_life)``.  When the
inflation exponent grows past a safety bound the counters are rescaled
once (O(width × depth), amortised over ``half_life · bound`` stream
seconds) and the origin advances.

Extension beyond the paper (DESIGN.md §6); see docs/serving.md for
sizing guidance.
"""

from __future__ import annotations

import math
import zlib
from typing import Any, Dict, List, Optional, Sequence

from repro.exceptions import SimulationError
from repro.workloads.trace import RequestTrace

__all__ = ["CountMinSketch", "SketchEstimator", "sketch_error_bound"]

#: Serialization schema identifier for :meth:`CountMinSketch.to_dict`.
SKETCH_SCHEMA = "repro.sketch/v1"

#: Rescale the counter matrix once the inflation exponent exceeds this
#: (2**512 is far inside float64 range, max exponent 1024, so a single
#: inflated increment can never overflow before the rescale triggers).
_RESCALE_EXPONENT = 512.0


def sketch_error_bound(width: int, total: float) -> float:
    """The classical count-min point-error bound ``(e / width) · total``.

    Any single item's over-estimate exceeds this with probability at
    most ``e^-depth`` (per query, over the random hash choice).
    """
    return math.e / width * total


class CountMinSketch:
    """A count-min sketch with exponential decay in stream time.

    Parameters
    ----------
    width:
        Counters per hash row.  The point-error bound scales as
        ``e / width`` of the total stream mass.
    depth:
        Number of independent hash rows; the error-bound failure
        probability decays as ``e^-depth``.
    half_life:
        Optional decay half-life in stream-time units (the timestamps
        fed to :meth:`add`).  ``None`` disables decay — the sketch
        counts plain occurrences and timestamps are ignored.
    conservative:
        Use the conservative-update rule: an arrival raises each of its
        ``depth`` counters only up to ``current estimate + weight``
        instead of adding to all of them.  Point estimates shrink
        (strictly fewer collisions are double-counted) while the
        never-under-estimate invariant is preserved.  Conservative
        sketches cannot be merged (the rule is not additive).
    seed:
        Seeds the per-row hash functions; two sketches merge only when
        their seeds (and shapes) match.
    exact:
        Oracle mode: additionally maintain the exact decayed count per
        distinct item id in a dict (O(items) state).  Point estimates
        then come from the exact counters — the sketch still updates,
        so :meth:`sketch_estimate` reports what the sketch alone would
        say and :meth:`max_overestimate` the realized sketch error.
    """

    def __init__(
        self,
        width: int = 1024,
        depth: int = 4,
        *,
        half_life: Optional[float] = None,
        conservative: bool = False,
        seed: int = 0,
        exact: bool = False,
    ) -> None:
        if width < 1:
            raise SimulationError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise SimulationError(f"depth must be >= 1, got {depth}")
        if half_life is not None and not (
            half_life > 0 and math.isfinite(half_life)
        ):
            raise SimulationError(
                f"half_life must be positive and finite, got {half_life}"
            )
        self.width = int(width)
        self.depth = int(depth)
        self.half_life = None if half_life is None else float(half_life)
        self.conservative = bool(conservative)
        self.seed = int(seed)
        self.exact = bool(exact)
        self._rows: List[List[float]] = [
            [0.0] * self.width for _ in range(self.depth)
        ]
        # One independent crc32 stream per row, derived from the seed.
        self._row_seeds = [
            zlib.crc32(f"repro-sketch:{self.seed}:{row}".encode())
            for row in range(self.depth)
        ]
        self._origin = 0.0  # stream time the counters are scaled to
        self._last_timestamp: Optional[float] = None
        self._total = 0.0  # decayed stream mass, origin scale
        self._updates = 0
        self._rescales = 0
        self._exact_counts: Optional[Dict[str, float]] = {} if exact else None

    # -- properties ------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """Relative point-error factor ``e / width`` of the CM bound."""
        return math.e / self.width

    @property
    def delta(self) -> float:
        """Per-query bound failure probability ``e^-depth``."""
        return math.exp(-self.depth)

    @property
    def updates(self) -> int:
        """Number of :meth:`add` calls absorbed."""
        return self._updates

    @property
    def rescales(self) -> int:
        """Times the counter matrix was rescaled to contain inflation."""
        return self._rescales

    @property
    def last_timestamp(self) -> Optional[float]:
        """Stream time of the newest arrival (``None`` when empty)."""
        return self._last_timestamp

    @property
    def state_size(self) -> int:
        """Number of held counters — ``width × depth``, never O(items)
        (plus the exact dict when oracle mode is on)."""
        cells = self.width * self.depth
        if self._exact_counts is not None:
            cells += len(self._exact_counts)
        return cells

    # -- decay bookkeeping ----------------------------------------------
    def _inflation(self, timestamp: float) -> float:
        """Weight multiplier bringing ``timestamp`` to the origin scale."""
        if self.half_life is None:
            return 1.0
        return 2.0 ** ((timestamp - self._origin) / self.half_life)

    def _maybe_rescale(self, timestamp: float) -> None:
        """Advance the origin when inflation threatens float range."""
        if self.half_life is None:
            return
        exponent = (timestamp - self._origin) / self.half_life
        if exponent <= _RESCALE_EXPONENT:
            return
        scale = 2.0 ** (-exponent)
        for row in self._rows:
            for index, value in enumerate(row):
                if value:
                    row[index] = value * scale
        self._total *= scale
        if self._exact_counts is not None:
            for key in self._exact_counts:
                self._exact_counts[key] *= scale
        self._origin = timestamp
        self._rescales += 1

    def _buckets(self, item_id: str) -> List[int]:
        encoded = item_id.encode("utf-8")
        return [
            zlib.crc32(encoded, row_seed) % self.width
            for row_seed in self._row_seeds
        ]

    # -- updates ---------------------------------------------------------
    def add(
        self,
        item_id: str,
        weight: float = 1.0,
        *,
        timestamp: Optional[float] = None,
    ) -> None:
        """Absorb one arrival of ``item_id`` at stream time ``timestamp``.

        Timestamps must be non-decreasing (the order a server observes
        requests — the same contract as
        :class:`~repro.workloads.trace.RequestTrace`).  With decay
        disabled the timestamp is optional and ignored.
        """
        if not (isinstance(item_id, str) and item_id):
            raise SimulationError(
                f"item_id must be a non-empty string, got {item_id!r}"
            )
        if not (weight > 0 and math.isfinite(weight)):
            raise SimulationError(
                f"weight must be positive and finite, got {weight!r}"
            )
        if timestamp is None:
            timestamp = (
                self._last_timestamp if self._last_timestamp is not None else 0.0
            )
        if not math.isfinite(timestamp):
            raise SimulationError(f"timestamp must be finite, got {timestamp!r}")
        if (
            self._last_timestamp is not None
            and timestamp < self._last_timestamp
        ):
            raise SimulationError(
                f"out-of-order arrival at t={timestamp} "
                f"(last was t={self._last_timestamp})"
            )
        self._last_timestamp = timestamp
        self._maybe_rescale(timestamp)
        inflated = weight * self._inflation(timestamp)
        buckets = self._buckets(item_id)
        rows = self._rows
        if self.conservative:
            # Raise each counter only to (current estimate + weight):
            # the smallest update that keeps every row an upper bound.
            estimate = min(
                rows[row][bucket] for row, bucket in enumerate(buckets)
            )
            target = estimate + inflated
            for row, bucket in enumerate(buckets):
                if rows[row][bucket] < target:
                    rows[row][bucket] = target
        else:
            for row, bucket in enumerate(buckets):
                rows[row][bucket] += inflated
        self._total += inflated
        self._updates += 1
        if self._exact_counts is not None:
            self._exact_counts[item_id] = (
                self._exact_counts.get(item_id, 0.0) + inflated
            )

    def extend(self, trace: RequestTrace) -> None:
        """Absorb a whole :class:`RequestTrace` (replay convenience)."""
        for record in trace:
            self.add(record.item_id, timestamp=record.timestamp)

    # -- queries ---------------------------------------------------------
    def _deflation(self, timestamp: Optional[float]) -> float:
        if self.half_life is None:
            return 1.0
        if timestamp is None:
            timestamp = (
                self._last_timestamp if self._last_timestamp is not None else 0.0
            )
        return 2.0 ** (-(timestamp - self._origin) / self.half_life)

    def sketch_estimate(
        self, item_id: str, *, timestamp: Optional[float] = None
    ) -> float:
        """The sketch's decayed count for ``item_id`` at ``timestamp``.

        The minimum over the item's ``depth`` counters — an upper bound
        on the true decayed count, regardless of oracle mode.  The
        reference time defaults to the newest arrival (so the newest
        request has weight 1, matching :class:`DecayEstimator`).
        """
        rows = self._rows
        raw = min(
            rows[row][bucket]
            for row, bucket in enumerate(self._buckets(item_id))
        )
        return raw * self._deflation(timestamp)

    def estimate(
        self, item_id: str, *, timestamp: Optional[float] = None
    ) -> float:
        """Decayed count for ``item_id`` — exact in oracle mode."""
        if self._exact_counts is not None:
            return self._exact_counts.get(item_id, 0.0) * self._deflation(
                timestamp
            )
        return self.sketch_estimate(item_id, timestamp=timestamp)

    def total(self, *, timestamp: Optional[float] = None) -> float:
        """Total decayed stream mass at ``timestamp``."""
        return self._total * self._deflation(timestamp)

    def error_bound(self, *, timestamp: Optional[float] = None) -> float:
        """``(e / width) · total`` at ``timestamp`` — the CM point bound."""
        return sketch_error_bound(self.width, self.total(timestamp=timestamp))

    def max_overestimate(self, *, timestamp: Optional[float] = None) -> float:
        """Largest realized sketch-vs-exact gap (oracle mode only)."""
        if self._exact_counts is None:
            raise SimulationError(
                "max_overestimate requires exact oracle mode "
                "(CountMinSketch(..., exact=True))"
            )
        worst = 0.0
        for item_id, true_count in self._exact_counts.items():
            gap = self.sketch_estimate(
                item_id, timestamp=timestamp
            ) - true_count * self._deflation(timestamp)
            if gap > worst:
                worst = gap
        return worst

    def estimate_profile(
        self,
        catalogue: Sequence[str],
        *,
        smoothing: float = 1.0,
        timestamp: Optional[float] = None,
    ) -> Dict[str, float]:
        """Smoothed, normalised frequency per catalogue item id.

        Mirrors the :class:`CountEstimator` / :class:`DecayEstimator`
        contract: each item gets ``(count + smoothing) / (Σ counts +
        smoothing · |catalogue|)``, summing to 1 over the catalogue.
        With ``smoothing = 0`` an item the stream never touched (and
        that no collision inflated) gets frequency 0 — which the
        allocation model rejects; see the smoothing notes in
        :mod:`repro.workloads.estimator`.
        """
        if not catalogue:
            raise SimulationError("catalogue cannot be empty")
        if len(set(catalogue)) != len(catalogue):
            raise SimulationError("catalogue contains duplicate item ids")
        if smoothing < 0:
            raise SimulationError(
                f"smoothing must be >= 0, got {smoothing}"
            )
        counts = {
            item_id: self.estimate(item_id, timestamp=timestamp)
            for item_id in catalogue
        }
        total = math.fsum(counts.values()) + smoothing * len(catalogue)
        if total <= 0:
            raise SimulationError(
                "cannot estimate from an empty sketch with zero smoothing"
            )
        return {
            item_id: (count + smoothing) / total
            for item_id, count in counts.items()
        }

    # -- merge / serialization ------------------------------------------
    def merge(self, other: "CountMinSketch") -> None:
        """Fold ``other``'s counters into this sketch (distributed shards).

        Requires identical shape, seed and half-life; counter matrices
        are brought to a common origin scale and added cell-wise, so
        the merged sketch estimates the concatenated stream (and still
        never under-estimates).  Conservative sketches refuse to merge:
        the conservative update is not additive, so cell-wise addition
        would no longer describe any single-stream sketch.
        """
        if not isinstance(other, CountMinSketch):
            raise SimulationError(
                f"can only merge CountMinSketch, got {type(other).__name__}"
            )
        if (
            self.width != other.width
            or self.depth != other.depth
            or self.seed != other.seed
            or self.half_life != other.half_life
        ):
            raise SimulationError(
                "sketch shapes differ: merge requires identical "
                "width/depth/seed/half_life"
            )
        if self.conservative or other.conservative:
            raise SimulationError(
                "conservative sketches cannot be merged (the update rule "
                "is not additive)"
            )
        # Bring both to the later origin so deflation factors agree.
        if other._last_timestamp is not None:
            if (
                self._last_timestamp is None
                or other._last_timestamp > self._last_timestamp
            ):
                self._last_timestamp = other._last_timestamp
        if self.half_life is None:
            scale = 1.0
        else:
            if other._origin > self._origin:
                # Rescale self onto other's (later) origin first.
                shift = 2.0 ** (
                    -(other._origin - self._origin) / self.half_life
                )
                for row in self._rows:
                    for index, value in enumerate(row):
                        if value:
                            row[index] = value * shift
                self._total *= shift
                if self._exact_counts is not None:
                    for key in self._exact_counts:
                        self._exact_counts[key] *= shift
                self._origin = other._origin
            scale = 2.0 ** (
                -(self._origin - other._origin) / self.half_life
            )
        for mine, theirs in zip(self._rows, other._rows):
            for index, value in enumerate(theirs):
                if value:
                    mine[index] += value * scale
        self._total += other._total * scale
        self._updates += other._updates
        if self._exact_counts is not None and other._exact_counts is not None:
            for key, value in other._exact_counts.items():
                self._exact_counts[key] = (
                    self._exact_counts.get(key, 0.0) + value * scale
                )
        elif self._exact_counts is not None:
            # The other side lost the exact view; ours is now stale too.
            self._exact_counts = None
            self.exact = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (round-trips through :meth:`from_dict`)."""
        return {
            "schema": SKETCH_SCHEMA,
            "width": self.width,
            "depth": self.depth,
            "half_life": self.half_life,
            "conservative": self.conservative,
            "seed": self.seed,
            "exact": self.exact,
            "rows": [list(row) for row in self._rows],
            "origin": self._origin,
            "last_timestamp": self._last_timestamp,
            "total": self._total,
            "updates": self._updates,
            "rescales": self._rescales,
            "exact_counts": (
                dict(self._exact_counts)
                if self._exact_counts is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CountMinSketch":
        if payload.get("schema") != SKETCH_SCHEMA:
            raise SimulationError(
                f"unknown sketch schema {payload.get('schema')!r} "
                f"(expected {SKETCH_SCHEMA!r})"
            )
        sketch = cls(
            payload["width"],
            payload["depth"],
            half_life=payload["half_life"],
            conservative=payload["conservative"],
            seed=payload["seed"],
            exact=payload["exact"],
        )
        rows = payload["rows"]
        if len(rows) != sketch.depth or any(
            len(row) != sketch.width for row in rows
        ):
            raise SimulationError("sketch rows do not match width/depth")
        sketch._rows = [[float(v) for v in row] for row in rows]
        sketch._origin = float(payload["origin"])
        sketch._last_timestamp = (
            None
            if payload["last_timestamp"] is None
            else float(payload["last_timestamp"])
        )
        sketch._total = float(payload["total"])
        sketch._updates = int(payload["updates"])
        sketch._rescales = int(payload["rescales"])
        exact_counts = payload.get("exact_counts")
        sketch._exact_counts = (
            None
            if exact_counts is None
            else {str(k): float(v) for k, v in exact_counts.items()}
        )
        if sketch._exact_counts is None:
            sketch.exact = False
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        decay = (
            f", half_life={self.half_life:g}" if self.half_life else ""
        )
        return (
            f"CountMinSketch({self.width}x{self.depth}{decay}, "
            f"updates={self._updates})"
        )


class SketchEstimator:
    """``estimate(trace, catalogue)`` adapter over a fresh count-min sketch.

    A drop-in for :class:`~repro.workloads.estimator.CountEstimator` /
    :class:`~repro.workloads.estimator.DecayEstimator` in
    :func:`~repro.workloads.estimator.estimate_database`: each call
    feeds the trace into a new sketch (so repeated calls are
    independent, like the other estimators) and returns the smoothed,
    normalised profile.  ``half_life=None`` approximates plain counts;
    a finite half-life approximates the decay estimator — both within
    the count-min over-estimate bound.
    """

    def __init__(
        self,
        width: int = 1024,
        depth: int = 4,
        *,
        half_life: Optional[float] = None,
        conservative: bool = False,
        seed: int = 0,
        smoothing: float = 1.0,
    ) -> None:
        if smoothing < 0:
            raise SimulationError(
                f"smoothing must be >= 0, got {smoothing}"
            )
        self._width = width
        self._depth = depth
        self._half_life = half_life
        self._conservative = conservative
        self._seed = seed
        self._smoothing = smoothing

    def make_sketch(self, *, exact: bool = False) -> CountMinSketch:
        """A fresh sketch with this estimator's parameters."""
        return CountMinSketch(
            self._width,
            self._depth,
            half_life=self._half_life,
            conservative=self._conservative,
            seed=self._seed,
            exact=exact,
        )

    def estimate(
        self, trace: RequestTrace, catalogue: Sequence[str]
    ) -> Dict[str, float]:
        """Frequency per catalogue item id (sums to 1)."""
        sketch = self.make_sketch()
        sketch.extend(trace)
        return sketch.estimate_profile(catalogue, smoothing=self._smoothing)
