"""Multi-item query workloads (extension).

The paper models independent single-item requests.  Its companion
literature (Huang & Chen — the paper's references [9][10]) studies
*queries* that need several items; a client is done only when it has
retrieved all of them.  This module supplies the workload side:

* :class:`Query` — an unordered item set with a request frequency;
* :class:`QueryWorkload` — a validated collection of queries;
* :func:`generate_query_workload` — synthetic workloads with Zipf query
  popularity and size-weighted item membership;
* :func:`item_frequencies_from_queries` — the standard reduction from
  query frequencies to per-item access frequencies (an item's frequency
  is the probability a random query contains it), which lets any
  single-item allocator (DRP-CDS included) serve query workloads.

The retrieval protocol and its measurement live in
:mod:`repro.simulation.queries`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.database import BroadcastDatabase
from repro.exceptions import InvalidDatabaseError
from repro.workloads.zipf import zipf_frequencies

__all__ = [
    "Query",
    "QueryWorkload",
    "generate_query_workload",
    "item_frequencies_from_queries",
]


@dataclass(frozen=True)
class Query:
    """An unordered multi-item request pattern.

    Attributes
    ----------
    query_id:
        Stable identifier within a workload.
    item_ids:
        The items the query needs; non-empty, no duplicates.
    frequency:
        How often this query is issued (workload frequencies sum to 1).
    """

    query_id: str
    item_ids: Tuple[str, ...]
    frequency: float

    def __post_init__(self) -> None:
        if not self.query_id:
            raise InvalidDatabaseError("query_id cannot be empty")
        if not self.item_ids:
            raise InvalidDatabaseError(
                f"query {self.query_id!r} needs at least one item"
            )
        if len(set(self.item_ids)) != len(self.item_ids):
            raise InvalidDatabaseError(
                f"query {self.query_id!r} lists an item twice"
            )
        if not (self.frequency > 0 and math.isfinite(self.frequency)):
            raise InvalidDatabaseError(
                f"query {self.query_id!r} frequency must be positive, "
                f"got {self.frequency!r}"
            )

    @property
    def size(self) -> int:
        return len(self.item_ids)


class QueryWorkload:
    """A validated, normalised collection of queries."""

    def __init__(self, queries: Iterable[Query]) -> None:
        query_list = list(queries)
        if not query_list:
            raise InvalidDatabaseError("a query workload cannot be empty")
        seen = set()
        for query in query_list:
            if query.query_id in seen:
                raise InvalidDatabaseError(
                    f"duplicate query_id {query.query_id!r}"
                )
            seen.add(query.query_id)
        total = math.fsum(query.frequency for query in query_list)
        if abs(total - 1.0) > 1e-6:
            raise InvalidDatabaseError(
                f"query frequencies must sum to 1, got {total:.6f}"
            )
        self._queries: Tuple[Query, ...] = tuple(query_list)

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries)

    def __getitem__(self, index: int) -> Query:
        return self._queries[index]

    @property
    def queries(self) -> Tuple[Query, ...]:
        return self._queries

    @property
    def mean_query_size(self) -> float:
        """Frequency-weighted expected number of items per query."""
        return math.fsum(q.frequency * q.size for q in self._queries)

    def referenced_item_ids(self) -> List[str]:
        """Distinct item ids any query touches, in first-seen order."""
        seen: Dict[str, None] = {}
        for query in self._queries:
            for item_id in query.item_ids:
                seen.setdefault(item_id, None)
        return list(seen)

    def sample(self, rng: np.random.Generator) -> Query:
        """Draw one query according to the workload frequencies."""
        weights = np.array([q.frequency for q in self._queries])
        index = rng.choice(len(self._queries), p=weights / weights.sum())
        return self._queries[int(index)]


def generate_query_workload(
    database: BroadcastDatabase,
    num_queries: int,
    *,
    min_items: int = 1,
    max_items: int = 4,
    skewness: float = 0.8,
    seed: int = 0,
    bias_to_popular: bool = True,
) -> QueryWorkload:
    """Synthesise a query workload over a database's catalogue.

    Query popularity follows Zipf(``skewness``); each query contains a
    uniform-random number of items in ``[min_items, max_items]``, drawn
    without replacement — weighted by item popularity when
    ``bias_to_popular`` (hot items co-occur in queries, the realistic
    case) or uniformly otherwise.
    """
    if num_queries < 1:
        raise InvalidDatabaseError(
            f"num_queries must be >= 1, got {num_queries}"
        )
    if not 1 <= min_items <= max_items <= len(database):
        raise InvalidDatabaseError(
            f"need 1 <= min_items <= max_items <= {len(database)}, got "
            f"[{min_items}, {max_items}]"
        )
    rng = np.random.default_rng(seed)
    frequencies = zipf_frequencies(num_queries, skewness)
    ids = list(database.item_ids)
    if bias_to_popular:
        weights = np.array([item.frequency for item in database.items])
        weights = weights / weights.sum()
    else:
        weights = np.full(len(ids), 1.0 / len(ids))
    queries: List[Query] = []
    for index in range(num_queries):
        size = int(rng.integers(min_items, max_items + 1))
        members = rng.choice(
            len(ids), size=size, replace=False, p=weights
        )
        queries.append(
            Query(
                query_id=f"q{index + 1}",
                item_ids=tuple(ids[int(i)] for i in members),
                frequency=float(frequencies[index]),
            )
        )
    return QueryWorkload(queries)


def item_frequencies_from_queries(
    workload: QueryWorkload,
    catalogue: Sequence[str],
    *,
    smoothing: float = 1e-6,
) -> Dict[str, float]:
    """Reduce query frequencies to per-item access frequencies.

    The access frequency of item ``x`` is proportional to the total
    frequency of queries containing ``x`` — the signal a single-item
    allocator can consume.  Items no query touches receive ``smoothing``
    mass so the resulting profile stays strictly positive (the model
    requires ``f > 0``).
    """
    if not catalogue:
        raise InvalidDatabaseError("catalogue cannot be empty")
    if len(set(catalogue)) != len(catalogue):
        raise InvalidDatabaseError("catalogue contains duplicates")
    known = set(catalogue)
    mass: Dict[str, float] = {item_id: smoothing for item_id in catalogue}
    for query in workload:
        for item_id in query.item_ids:
            if item_id not in known:
                raise InvalidDatabaseError(
                    f"query {query.query_id!r} references unknown item "
                    f"{item_id!r}"
                )
            mass[item_id] += query.frequency
    total = math.fsum(mass.values())
    return {item_id: value / total for item_id, value in mass.items()}
