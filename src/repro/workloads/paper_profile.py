"""The paper's worked-example database (Table 2).

Fifteen items broadcast over five channels.  The paper walks this exact
profile through Algorithm DRP (Table 3) and mechanism CDS (Table 4);
the test suite asserts our implementations reproduce every intermediate
cost the paper prints:

* ``cost(D) = 135.60`` (initial single group),
* first split ``{d9..d12} / {d10..d11}`` with costs ``29.04 / 28.62``,
* DRP result cost ``24.09`` over 5 groups,
* first CDS move ``d10: group 4 → group 2`` with ``Δc = 0.95``,
* second CDS move ``d12: group 3 → group 2`` with ``Δc = 0.45``,
* CDS local optimum with cost ``22.29``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.database import BroadcastDatabase

__all__ = [
    "PAPER_PROFILE",
    "PAPER_NUM_CHANNELS",
    "paper_database",
    "PAPER_INITIAL_COST",
    "PAPER_DRP_COST",
    "PAPER_CDS_COST",
    "PAPER_DRP_GROUPS",
    "PAPER_CDS_GROUPS",
]

#: Table 2 of the paper: ``item_id -> (access frequency, size)``.
PAPER_PROFILE: Dict[str, Tuple[float, float]] = {
    "d1": (0.2374, 21.18),
    "d2": (0.1363, 4.77),
    "d3": (0.0986, 3.59),
    "d4": (0.0783, 15.34),
    "d5": (0.0655, 2.91),
    "d6": (0.0566, 2.49),
    "d7": (0.0500, 17.51),
    "d8": (0.0450, 10.86),
    "d9": (0.0409, 1.02),
    "d10": (0.0376, 6.41),
    "d11": (0.0349, 30.62),
    "d12": (0.0325, 4.09),
    "d13": (0.0305, 5.33),
    "d14": (0.0287, 7.74),
    "d15": (0.0272, 1.74),
}

#: The example allocates the 15 items to 5 channels.
PAPER_NUM_CHANNELS = 5

#: cost(D) in Table 3(a).
PAPER_INITIAL_COST = 135.60

#: Total cost of the DRP grouping in Table 3(d) / Table 4(a).
PAPER_DRP_COST = 24.09

#: Total cost of the CDS local optimum in Table 4(d).
PAPER_CDS_COST = 22.29

#: The DRP grouping of Table 3(d), in benefit-ratio order.
PAPER_DRP_GROUPS = (
    ("d9", "d2", "d3"),
    ("d6", "d5", "d15"),
    ("d1", "d12"),
    ("d10", "d13", "d4", "d8"),
    ("d14", "d7", "d11"),
)

#: The CDS local optimum of Table 4(d).
PAPER_CDS_GROUPS = (
    ("d9", "d2", "d3", "d6"),
    ("d5", "d15", "d10", "d12", "d14"),
    ("d1",),
    ("d13", "d4", "d8"),
    ("d7", "d11"),
)


def paper_database() -> BroadcastDatabase:
    """Build the Table 2 database.

    The printed frequencies sum to 1 only within rounding (each entry has
    four decimals); the database accepts them under its documented
    tolerance.
    """
    return BroadcastDatabase.from_pairs(PAPER_PROFILE)
