"""Request traces — the raw material of access-profile collection.

The paper's architecture (its Figure 1) has the server *collect the
access patterns of mobile users* and generate the broadcast program
from them.  The paper itself starts from given frequencies; this module
supplies the collection substrate so the loop can be closed: record the
requests clients actually issue, then estimate frequencies from the
trace (:mod:`repro.workloads.estimator`).

This is an extension beyond the paper, flagged as such in DESIGN.md.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Counter as CounterType
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union
from collections import Counter

import numpy as np

from repro.core.database import BroadcastDatabase
from repro.exceptions import SimulationError

__all__ = [
    "TraceRecord",
    "RequestTrace",
    "synthesize_trace",
    "save_trace_jsonl",
    "load_trace_jsonl",
    "iter_trace_jsonl",
]


@dataclass(frozen=True)
class TraceRecord:
    """One observed request: who asked for what, when (uplink log)."""

    timestamp: float
    item_id: str

    def __post_init__(self) -> None:
        if not isinstance(self.item_id, str) or not self.item_id:
            raise SimulationError(
                f"item_id must be a non-empty string, got {self.item_id!r}"
            )
        if not np.isfinite(self.timestamp) or self.timestamp < 0:
            raise SimulationError(
                f"timestamp must be finite and >= 0, got {self.timestamp!r}"
            )


class RequestTrace:
    """An append-only, time-ordered log of requests.

    Records must be appended in non-decreasing timestamp order (the
    order a server observes them).  Windowed views and per-item counts
    are the operations estimators need.
    """

    def __init__(self, records: Optional[Iterable[TraceRecord]] = None) -> None:
        self._records: List[TraceRecord] = []
        self._timestamps: List[float] = []
        if records is not None:
            for record in records:
                self.append(record)

    def append(self, record: TraceRecord) -> None:
        """Append one record; timestamps must not go backwards."""
        if self._timestamps and record.timestamp < self._timestamps[-1]:
            raise SimulationError(
                f"out-of-order record at t={record.timestamp} "
                f"(last was t={self._timestamps[-1]})"
            )
        self._records.append(record)
        self._timestamps.append(record.timestamp)

    def record(self, timestamp: float, item_id: str) -> None:
        """Convenience: append a ``(timestamp, item_id)`` pair."""
        self.append(TraceRecord(timestamp=timestamp, item_id=item_id))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    @property
    def span(self) -> float:
        """Time between the first and last record (0 for < 2 records)."""
        if len(self._records) < 2:
            return 0.0
        return self._timestamps[-1] - self._timestamps[0]

    def window(self, start: float, stop: float) -> "RequestTrace":
        """Records with ``start <= timestamp < stop`` as a new trace."""
        if stop < start:
            raise SimulationError(
                f"window stop {stop} precedes start {start}"
            )
        low = bisect.bisect_left(self._timestamps, start)
        high = bisect.bisect_left(self._timestamps, stop)
        view = RequestTrace()
        for record in self._records[low:high]:
            view.append(record)
        return view

    def counts(self) -> CounterType[str]:
        """Requests per item id."""
        return Counter(record.item_id for record in self._records)

    def item_ids(self) -> List[str]:
        """Distinct item ids in first-seen order."""
        seen: Dict[str, None] = {}
        for record in self._records:
            seen.setdefault(record.item_id, None)
        return list(seen)


def synthesize_trace(
    database: BroadcastDatabase,
    num_requests: int,
    *,
    arrival_rate: float = 1.0,
    seed: int = 0,
    probabilities: Optional[Sequence[float]] = None,
) -> RequestTrace:
    """Generate a Poisson trace from a database's access profile.

    The synthetic stand-in for a production uplink log (see the
    substitution notes in DESIGN.md).  ``probabilities`` overrides the
    per-item request distribution, e.g. to emulate drifted interest.
    """
    if num_requests < 0:
        raise SimulationError(
            f"num_requests must be >= 0, got {num_requests}"
        )
    if arrival_rate <= 0:
        raise SimulationError(
            f"arrival_rate must be positive, got {arrival_rate}"
        )
    rng = np.random.default_rng(seed)
    if probabilities is None:
        weights = np.array(
            [item.frequency for item in database.items], dtype=np.float64
        )
    else:
        weights = np.asarray(probabilities, dtype=np.float64)
        if len(weights) != len(database):
            raise SimulationError(
                f"got {len(weights)} probabilities for {len(database)} items"
            )
        if np.any(weights < 0) or weights.sum() <= 0:
            raise SimulationError(
                "probabilities must be non-negative with positive sum"
            )
    weights = weights / weights.sum()
    ids = list(database.item_ids)
    gaps = rng.exponential(1.0 / arrival_rate, size=num_requests)
    picks = rng.choice(len(ids), size=num_requests, p=weights)
    trace = RequestTrace()
    clock = 0.0
    for gap, pick in zip(gaps, picks):
        clock += float(gap)
        trace.record(clock, ids[int(pick)])
    return trace


def save_trace_jsonl(
    trace: RequestTrace, path: Union[str, Path]
) -> Path:
    """Write a trace as JSON Lines — one ``{"t": ..., "id": ...}`` per row.

    The replay format consumed by ``repro serve --replay`` (and
    :func:`iter_trace_jsonl`); compact keys keep million-request logs
    manageable.
    """
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        for record in trace:
            handle.write(
                json.dumps(
                    {"t": record.timestamp, "id": record.item_id},
                    separators=(",", ":"),
                )
            )
            handle.write("\n")
    return target


def iter_trace_jsonl(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream records from a JSONL trace file, one at a time.

    O(1) memory — the live service ingests replays through this without
    materialising the whole log.  Rows must carry ``t`` (timestamp) and
    ``id`` (item id); blank lines are skipped; out-of-order timestamps
    are rejected (the file claims to be a server-observed log).
    """
    source = Path(path)
    last: Optional[float] = None
    with source.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SimulationError(
                    f"{source}:{line_no}: invalid JSON: {exc}"
                ) from exc
            if not isinstance(row, dict) or "t" not in row or "id" not in row:
                raise SimulationError(
                    f"{source}:{line_no}: expected object with 't' and 'id' "
                    f"keys, got {row!r}"
                )
            record = TraceRecord(
                timestamp=float(row["t"]), item_id=str(row["id"])
            )
            if last is not None and record.timestamp < last:
                raise SimulationError(
                    f"{source}:{line_no}: out-of-order record at "
                    f"t={record.timestamp} (last was t={last})"
                )
            last = record.timestamp
            yield record


def load_trace_jsonl(path: Union[str, Path]) -> RequestTrace:
    """Read a whole JSONL trace file into a :class:`RequestTrace`."""
    return RequestTrace(iter_trace_jsonl(path))
