"""Zipf access-frequency generation (paper, Section 4.1).

The paper draws item popularity from the Zipf distribution

.. math::

    f_i = \\frac{(1/i)^{\\theta}}{\\sum_{j=1}^{N} (1/j)^{\\theta}},
    \\qquad 1 \\le i \\le N,

where the *skewness parameter* ``θ`` controls locality: ``θ = 0`` is a
uniform popularity profile, larger ``θ`` concentrates requests on a few
hot items.  Table 5 varies ``θ`` over ``0.4 – 1.6``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import InvalidDatabaseError

__all__ = ["zipf_frequencies", "zipf_skewness_of", "DEFAULT_SKEWNESS"]

#: Mid-range skewness used when an experiment fixes θ while sweeping
#: another parameter (Table 5 gives the range 0.4–1.6).
DEFAULT_SKEWNESS = 0.8


def zipf_frequencies(num_items: int, skewness: float) -> np.ndarray:
    """Normalised Zipf frequencies for ranks ``1 .. num_items``.

    Parameters
    ----------
    num_items:
        Number of items ``N``; must be positive.
    skewness:
        The exponent ``θ``; must be non-negative and finite.  ``θ = 0``
        yields the uniform distribution.

    Returns
    -------
    numpy.ndarray
        Array of length ``num_items`` summing to 1 (up to float error),
        in rank order — entry 0 is the most popular item.
    """
    if num_items < 1:
        raise InvalidDatabaseError(f"num_items must be >= 1, got {num_items}")
    if not np.isfinite(skewness) or skewness < 0:
        raise InvalidDatabaseError(
            f"skewness must be finite and >= 0, got {skewness!r}"
        )
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks ** (-float(skewness))
    return weights / weights.sum()


def zipf_skewness_of(frequencies: List[float]) -> Optional[float]:
    """Least-squares estimate of θ from an observed frequency profile.

    Fits ``log f_i = -θ log i + c`` over the rank-ordered frequencies.
    Returns ``None`` for degenerate inputs (fewer than two items).  Used
    in tests and examples to sanity-check generated workloads.
    """
    if len(frequencies) < 2:
        return None
    ordered = np.sort(np.asarray(frequencies, dtype=np.float64))[::-1]
    if np.any(ordered <= 0):
        raise InvalidDatabaseError("frequencies must be positive")
    ranks = np.arange(1, len(ordered) + 1, dtype=np.float64)
    slope, _intercept = np.polyfit(np.log(ranks), np.log(ordered), deg=1)
    return float(-slope)
