"""Item-size generation for the diverse broadcasting environment.

The paper's evaluation (Section 4.1) draws each item size as
``10^φ`` units with ``φ ~ Uniform[0, Φ]``; the *diversity parameter*
``Φ`` sets the exponent range.  ``Φ = 0`` degenerates to the
conventional environment (every item has size 1), ``Φ = 3`` spreads
sizes over ``[1, 1000]`` units.

Two extra distributions (fixed, lognormal) are provided for examples and
ablations; they are not used by the paper-reproduction experiments.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidDatabaseError

__all__ = [
    "diverse_sizes",
    "fixed_sizes",
    "lognormal_sizes",
    "DEFAULT_DIVERSITY",
]

#: Mid-range diversity used when an experiment fixes Φ while sweeping
#: another parameter (Table 5 gives the range 0–3).
DEFAULT_DIVERSITY = 1.5


def _check_count(num_items: int) -> None:
    if num_items < 1:
        raise InvalidDatabaseError(f"num_items must be >= 1, got {num_items}")


def diverse_sizes(
    num_items: int,
    diversity: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Paper-model sizes: ``10^φ`` with ``φ ~ U[0, diversity]``.

    Parameters
    ----------
    num_items:
        Number of sizes to draw.
    diversity:
        The parameter ``Φ >= 0``.  ``Φ = 0`` returns all-ones.
    rng:
        NumPy random generator — callers control seeding for
        reproducibility.
    """
    _check_count(num_items)
    if not np.isfinite(diversity) or diversity < 0:
        raise InvalidDatabaseError(
            f"diversity must be finite and >= 0, got {diversity!r}"
        )
    exponents = rng.uniform(0.0, float(diversity), size=num_items)
    return np.power(10.0, exponents)


def fixed_sizes(num_items: int, size: float = 1.0) -> np.ndarray:
    """Conventional-environment sizes: every item is ``size`` units."""
    _check_count(num_items)
    if not np.isfinite(size) or size <= 0:
        raise InvalidDatabaseError(f"size must be finite and > 0, got {size!r}")
    return np.full(num_items, float(size))


def lognormal_sizes(
    num_items: int,
    rng: np.random.Generator,
    *,
    median: float = 10.0,
    sigma: float = 1.0,
) -> np.ndarray:
    """Lognormal sizes — a heavier-tailed alternative for ablations.

    ``median`` is the distribution median (``exp(μ)``); ``sigma`` the
    log-space standard deviation.
    """
    _check_count(num_items)
    if median <= 0 or sigma < 0:
        raise InvalidDatabaseError(
            f"median must be > 0 and sigma >= 0, got {median!r}, {sigma!r}"
        )
    return rng.lognormal(mean=np.log(median), sigma=sigma, size=num_items)
