"""Synthetic workload generation for the simulation study (paper §4.1)."""

from repro.workloads.catalog import (
    ContentClass,
    MULTIMEDIA_CLASSES,
    build_catalogue,
    class_of,
    per_class_summary,
)
from repro.workloads.estimator import (
    CountEstimator,
    DecayEstimator,
    estimate_database,
    profile_l1_error,
)
from repro.workloads.generator import WorkloadSpec, generate_database
from repro.workloads.queries import (
    Query,
    QueryWorkload,
    generate_query_workload,
    item_frequencies_from_queries,
)
from repro.workloads.sketch import (
    CountMinSketch,
    SketchEstimator,
    sketch_error_bound,
)
from repro.workloads.trace import (
    RequestTrace,
    TraceRecord,
    iter_trace_jsonl,
    load_trace_jsonl,
    save_trace_jsonl,
    synthesize_trace,
)
from repro.workloads.paper_profile import (
    PAPER_CDS_COST,
    PAPER_CDS_GROUPS,
    PAPER_DRP_COST,
    PAPER_DRP_GROUPS,
    PAPER_INITIAL_COST,
    PAPER_NUM_CHANNELS,
    PAPER_PROFILE,
    paper_database,
)
from repro.workloads.sizes import (
    DEFAULT_DIVERSITY,
    diverse_sizes,
    fixed_sizes,
    lognormal_sizes,
)
from repro.workloads.zipf import (
    DEFAULT_SKEWNESS,
    zipf_frequencies,
    zipf_skewness_of,
)

__all__ = [
    "WorkloadSpec",
    "generate_database",
    "RequestTrace",
    "TraceRecord",
    "synthesize_trace",
    "save_trace_jsonl",
    "load_trace_jsonl",
    "iter_trace_jsonl",
    "CountEstimator",
    "DecayEstimator",
    "CountMinSketch",
    "SketchEstimator",
    "sketch_error_bound",
    "estimate_database",
    "profile_l1_error",
    "Query",
    "QueryWorkload",
    "generate_query_workload",
    "item_frequencies_from_queries",
    "ContentClass",
    "MULTIMEDIA_CLASSES",
    "build_catalogue",
    "class_of",
    "per_class_summary",
    "zipf_frequencies",
    "zipf_skewness_of",
    "DEFAULT_SKEWNESS",
    "diverse_sizes",
    "fixed_sizes",
    "lognormal_sizes",
    "DEFAULT_DIVERSITY",
    "paper_database",
    "PAPER_PROFILE",
    "PAPER_NUM_CHANNELS",
    "PAPER_INITIAL_COST",
    "PAPER_DRP_COST",
    "PAPER_CDS_COST",
    "PAPER_DRP_GROUPS",
    "PAPER_CDS_GROUPS",
]
