"""Content-class catalogues — realistic mixed-media workloads.

The paper motivates diverse broadcasting with modern information
services mixing text, images, audio and video.  This module makes that
catalogue shape a first-class workload: a list of
:class:`ContentClass` specs (count, size range, share of requests,
within-class skew) materialises into a labelled
:class:`~repro.core.database.BroadcastDatabase`.

Used by ``examples/multimedia_portal.py``; the default
:data:`MULTIMEDIA_CLASSES` mirror plausible 2005-era media sizes in
abstract units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.exceptions import InvalidDatabaseError

__all__ = ["ContentClass", "MULTIMEDIA_CLASSES", "build_catalogue", "class_of"]


@dataclass(frozen=True)
class ContentClass:
    """One media class in a mixed catalogue.

    Attributes
    ----------
    name:
        Class label; becomes the item-id prefix and the item label.
    count:
        Number of items in the class.
    size_range:
        ``(low, high)`` uniform size range in size units.
    share:
        Fraction of all requests this class receives (class shares must
        sum to 1).
    skew:
        Zipf exponent of popularity *within* the class.
    """

    name: str
    count: int
    size_range: Tuple[float, float]
    share: float
    skew: float = 0.9

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidDatabaseError("class name cannot be empty")
        if self.count < 1:
            raise InvalidDatabaseError(
                f"class {self.name!r} needs count >= 1, got {self.count}"
            )
        low, high = self.size_range
        if not 0 < low <= high:
            raise InvalidDatabaseError(
                f"class {self.name!r} needs 0 < low <= high, got "
                f"{self.size_range}"
            )
        if not 0 < self.share <= 1:
            raise InvalidDatabaseError(
                f"class {self.name!r} share must be in (0, 1], got "
                f"{self.share}"
            )
        if self.skew < 0:
            raise InvalidDatabaseError(
                f"class {self.name!r} skew must be >= 0, got {self.skew}"
            )


#: A plausible mobile-portal mix: popular tiny text, mid-size images,
#: heavier audio, huge video — 100 items, shares summing to 1.
MULTIMEDIA_CLASSES: Tuple[ContentClass, ...] = (
    ContentClass("text", 40, (0.5, 2.0), 0.45),
    ContentClass("image", 25, (20.0, 80.0), 0.30),
    ContentClass("audio", 20, (150.0, 400.0), 0.15),
    ContentClass("video", 15, (800.0, 3000.0), 0.10),
)


def build_catalogue(
    classes: Sequence[ContentClass] = MULTIMEDIA_CLASSES,
    *,
    seed: int = 0,
) -> BroadcastDatabase:
    """Materialise a labelled database from content-class specs.

    Within each class, popularity follows Zipf(``skew``) scaled to the
    class share, and sizes are uniform over the class range.  Item ids
    are ``{class}-{rank}`` with rank 1 the most popular of its class.
    """
    class_list = list(classes)
    if not class_list:
        raise InvalidDatabaseError("need at least one content class")
    names = [spec.name for spec in class_list]
    if len(set(names)) != len(names):
        raise InvalidDatabaseError("content class names must be unique")
    total_share = sum(spec.share for spec in class_list)
    if abs(total_share - 1.0) > 1e-6:
        raise InvalidDatabaseError(
            f"class shares must sum to 1, got {total_share:.6f}"
        )
    rng = np.random.default_rng(seed)
    items: List[DataItem] = []
    for spec in class_list:
        ranks = np.arange(1, spec.count + 1, dtype=np.float64)
        weights = ranks ** (-spec.skew)
        frequencies = spec.share * weights / weights.sum()
        low, high = spec.size_range
        sizes = rng.uniform(low, high, size=spec.count)
        for index, (freq, size) in enumerate(zip(frequencies, sizes)):
            items.append(
                DataItem(
                    f"{spec.name}-{index + 1}",
                    frequency=float(freq),
                    size=float(size),
                    label=spec.name,
                )
            )
    return BroadcastDatabase(items)


def class_of(item_id: str) -> str:
    """The content class an item id belongs to (``"image-7" -> "image"``)."""
    name, separator, rank = item_id.rpartition("-")
    if not separator or not name or not rank:
        raise InvalidDatabaseError(
            f"{item_id!r} is not a class-formatted item id"
        )
    return name


def per_class_summary(
    database: BroadcastDatabase,
) -> Dict[str, Tuple[int, float, float]]:
    """Per-class ``(count, total frequency, total size)`` of a catalogue."""
    summary: Dict[str, Tuple[int, float, float]] = {}
    for item in database:
        name = item.label or class_of(item.item_id)
        count, freq, size = summary.get(name, (0, 0.0, 0.0))
        summary[name] = (count + 1, freq + item.frequency, size + item.size)
    return summary
