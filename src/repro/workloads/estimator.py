"""Access-frequency estimation from request traces.

Closes the loop of the paper's Figure 1: the broadcast program is
generated from access frequencies, and these estimators produce the
frequencies from what the server actually observes.

Two estimators are provided:

* :class:`CountEstimator` — maximum-likelihood relative counts with
  additive (Laplace) smoothing.  Smoothing matters: the analytical model
  requires every catalogued item to have a positive frequency, and a
  finite trace may simply miss cold items.
* :class:`DecayEstimator` — exponentially time-decayed counts.  Under
  drifting popularity, recent requests carry more signal; the half-life
  controls the memory.

Both return frequencies aligned with a catalogue (an iterable of item
ids) and normalised to 1, ready for
:func:`estimate_database` to splice onto known item sizes.

**The zero-frequency edge case.**  An item the stream never requested
is still in the catalogue, and with ``smoothing = 0`` its estimated
frequency is exactly 0.  The analytical model rejects that at two
depths: :class:`~repro.core.item.DataItem` refuses ``frequency <= 0``
on construction (``InvalidItemError``), and even if a zero slipped
through, Eq. (1)'s frequency-weighted average over a zero-frequency
channel is undefined (``InvalidAllocationError`` in
:mod:`repro.core.cost`).  :func:`estimate_database` therefore checks
the estimate up front and raises a :class:`SimulationError` naming the
unobserved items and the fix — the smoothing floor: any ``smoothing >
0`` gives every catalogued item a positive pseudo-count, at the price
of biasing hot items slightly down.  The streaming path
(:meth:`repro.workloads.sketch.CountMinSketch.estimate_profile`) makes
the same trade with the same parameter.  Behaviour is pinned by
``tests/test_estimator.py::TestZeroFrequencyEdgeCases``.

This module is an extension beyond the paper (DESIGN.md §6).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence

from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.exceptions import SimulationError
from repro.workloads.trace import RequestTrace

__all__ = [
    "CountEstimator",
    "DecayEstimator",
    "estimate_database",
    "profile_l1_error",
]


class CountEstimator:
    """Smoothed maximum-likelihood frequency estimation.

    Parameters
    ----------
    smoothing:
        The additive pseudo-count per catalogue item (Laplace α).  With
        ``α = 0`` an unseen item would get frequency 0, which the model
        rejects; the default of 1 is the classical rule-of-succession
        choice.
    """

    def __init__(self, *, smoothing: float = 1.0) -> None:
        if smoothing < 0:
            raise SimulationError(
                f"smoothing must be >= 0, got {smoothing}"
            )
        self._smoothing = smoothing

    def estimate(
        self, trace: RequestTrace, catalogue: Sequence[str]
    ) -> Dict[str, float]:
        """Frequency per catalogue item id (sums to 1)."""
        _check_catalogue(catalogue)
        counts = trace.counts()
        unknown = set(counts) - set(catalogue)
        if unknown:
            raise SimulationError(
                f"trace references items outside the catalogue: "
                f"{sorted(unknown)[:5]}"
            )
        alpha = self._smoothing
        total = len(trace) + alpha * len(catalogue)
        if total <= 0:
            raise SimulationError(
                "cannot estimate from an empty trace with zero smoothing"
            )
        return {
            item_id: (counts.get(item_id, 0) + alpha) / total
            for item_id in catalogue
        }


class DecayEstimator:
    """Exponentially decayed counts for drifting popularity.

    A request at time ``t`` observed at reference time ``T`` contributes
    weight ``0.5 ** ((T - t) / half_life)``.  The reference time is the
    trace's last timestamp, so the newest request always has weight 1.

    Parameters
    ----------
    half_life:
        Time for a request's weight to halve (same unit as trace
        timestamps).  Must be positive.
    smoothing:
        Additive pseudo-weight per catalogue item, as in
        :class:`CountEstimator`.
    """

    def __init__(self, half_life: float, *, smoothing: float = 1.0) -> None:
        if not (half_life > 0 and math.isfinite(half_life)):
            raise SimulationError(
                f"half_life must be positive and finite, got {half_life}"
            )
        if smoothing < 0:
            raise SimulationError(
                f"smoothing must be >= 0, got {smoothing}"
            )
        self._half_life = half_life
        self._smoothing = smoothing

    def estimate(
        self, trace: RequestTrace, catalogue: Sequence[str]
    ) -> Dict[str, float]:
        """Decay-weighted frequency per catalogue item id (sums to 1)."""
        _check_catalogue(catalogue)
        weights: Dict[str, float] = {item_id: 0.0 for item_id in catalogue}
        if len(trace):
            reference = trace[len(trace) - 1].timestamp
            rate = math.log(2.0) / self._half_life
            for record in trace:
                if record.item_id not in weights:
                    raise SimulationError(
                        f"trace references item {record.item_id!r} outside "
                        "the catalogue"
                    )
                weights[record.item_id] += math.exp(
                    -rate * (reference - record.timestamp)
                )
        alpha = self._smoothing
        total = math.fsum(weights.values()) + alpha * len(catalogue)
        if total <= 0:
            raise SimulationError(
                "cannot estimate from an empty trace with zero smoothing"
            )
        return {
            item_id: (weight + alpha) / total
            for item_id, weight in weights.items()
        }


def estimate_database(
    trace: RequestTrace,
    sizes: Mapping[str, float],
    *,
    estimator: "CountEstimator | DecayEstimator | None" = None,
) -> BroadcastDatabase:
    """Build a broadcast database from a trace and known item sizes.

    ``sizes`` is the catalogue: every item the server can broadcast,
    with its size.  Frequencies come from the estimator (default: a
    :class:`CountEstimator` with Laplace smoothing).
    """
    if not sizes:
        raise SimulationError("the catalogue of sizes cannot be empty")
    if estimator is None:
        estimator = CountEstimator()
    catalogue = list(sizes)
    frequencies = estimator.estimate(trace, catalogue)
    unobserved = [
        item_id for item_id in catalogue if frequencies[item_id] <= 0.0
    ]
    if unobserved:
        # Surface the modelling problem here, with a fix, rather than
        # letting DataItem's InvalidItemError (or, later, the cost
        # model's InvalidAllocationError for a zero-frequency channel)
        # fire deep inside the allocation path.
        raise SimulationError(
            f"{len(unobserved)} catalogue item(s) were never observed in "
            f"the trace and got frequency 0 (first: {unobserved[:3]}); the "
            "analytical model requires every item to have positive "
            "frequency — use an estimator with smoothing > 0"
        )
    items: List[DataItem] = [
        DataItem(item_id, frequency=frequencies[item_id], size=sizes[item_id])
        for item_id in catalogue
    ]
    return BroadcastDatabase(items)


def profile_l1_error(
    estimated: Mapping[str, float], truth: Mapping[str, float]
) -> float:
    """Total variation-style L1 distance between two frequency profiles.

    Both mappings must cover the same item ids.  Range [0, 2]; 0 means a
    perfect estimate.
    """
    if set(estimated) != set(truth):
        missing = sorted(set(truth) - set(estimated))
        extra = sorted(set(estimated) - set(truth))
        raise SimulationError(
            "estimated and true profiles cover different items "
            f"(missing from estimate: {missing[:5]}, "
            f"not in truth: {extra[:5]})"
        )
    return math.fsum(
        abs(estimated[item_id] - truth[item_id]) for item_id in truth
    )


def _check_catalogue(catalogue: Sequence[str]) -> None:
    if not catalogue:
        raise SimulationError("catalogue cannot be empty")
    if len(set(catalogue)) != len(catalogue):
        raise SimulationError("catalogue contains duplicate item ids")
