"""Workload synthesis: turn simulation parameters into a database.

:class:`WorkloadSpec` captures one row of the paper's Table 5 — item
count, skewness θ, diversity Φ — plus a seed, and materialises a
:class:`~repro.core.database.BroadcastDatabase` whose access frequencies
follow Zipf(θ) and whose sizes follow the ``10^U[0,Φ]`` diversity model.

Frequencies are assigned to items *independently* of sizes: the paper
treats popularity rank and size as uncorrelated (a popular item may be
large or small), which is what makes the benefit ratio informative.  An
optional ``correlation`` knob lets ablations couple the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.core.database import BroadcastDatabase
from repro.exceptions import InvalidDatabaseError
from repro.workloads.sizes import DEFAULT_DIVERSITY, diverse_sizes
from repro.workloads.zipf import DEFAULT_SKEWNESS, zipf_frequencies

__all__ = ["WorkloadSpec", "generate_database"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic broadcast database.

    Attributes
    ----------
    num_items:
        Number of broadcast items ``N`` (Table 5: 60–180).
    skewness:
        Zipf parameter ``θ`` (Table 5: 0.4–1.6).
    diversity:
        Size-exponent range ``Φ`` (Table 5: 0–3).
    seed:
        Seed for the size draw (and the popularity-to-item shuffle).
        Same spec + same seed ⇒ identical database.
    shuffle_sizes:
        When true (default), the size of an item is independent of its
        popularity rank — the paper's model.  When false, sizes are
        assigned in draw order (rank ``i`` gets the ``i``-th draw), which
        is only useful for deterministic unit tests.
    correlation:
        Optional rank correlation in ``[-1, 1]`` between popularity and
        size (ablation knob).  ``+1`` makes popular items the largest,
        ``-1`` the smallest, ``0``/``None`` keeps them independent.
        Implemented by partially sorting the size draws.
    """

    num_items: int
    skewness: float = DEFAULT_SKEWNESS
    diversity: float = DEFAULT_DIVERSITY
    seed: int = 0
    shuffle_sizes: bool = True
    correlation: Optional[float] = field(default=None)

    def __post_init__(self) -> None:
        if self.num_items < 1:
            raise InvalidDatabaseError(
                f"num_items must be >= 1, got {self.num_items}"
            )
        if self.correlation is not None and not -1.0 <= self.correlation <= 1.0:
            raise InvalidDatabaseError(
                f"correlation must lie in [-1, 1], got {self.correlation}"
            )

    def with_seed(self, seed: int) -> "WorkloadSpec":
        """Copy of this spec with a different seed (for replications)."""
        return replace(self, seed=seed)


def generate_database(spec: WorkloadSpec) -> BroadcastDatabase:
    """Materialise the database described by ``spec``.

    Item ``d1`` is always the most popular item (frequencies are assigned
    in Zipf rank order); sizes are drawn from the diversity model and —
    unless ``shuffle_sizes`` is false — permuted so size is independent
    of rank.
    """
    rng = np.random.default_rng(spec.seed)
    frequencies = zipf_frequencies(spec.num_items, spec.skewness)
    sizes = diverse_sizes(spec.num_items, spec.diversity, rng)
    if spec.correlation is not None:
        sizes = _correlate_with_rank(sizes, spec.correlation, rng)
    elif spec.shuffle_sizes:
        sizes = rng.permutation(sizes)
    return BroadcastDatabase.from_arrays(frequencies.tolist(), sizes.tolist())


def _correlate_with_rank(
    sizes: np.ndarray, correlation: float, rng: np.random.Generator
) -> np.ndarray:
    """Impose an approximate rank correlation between popularity and size.

    A fraction ``|correlation|`` of positions receive sizes in sorted
    order (descending for positive correlation — hot items get the big
    sizes — ascending for negative); the remainder stay random.
    """
    n = len(sizes)
    sorted_sizes = np.sort(sizes)
    if correlation >= 0:
        sorted_sizes = sorted_sizes[::-1]
    strength = abs(correlation)
    num_fixed = int(round(strength * n))
    result = rng.permutation(sizes)
    if num_fixed:
        fixed_positions = rng.choice(n, size=num_fixed, replace=False)
        fixed_positions.sort()
        remaining = np.setdiff1d(np.arange(n), fixed_positions)
        fixed_values = sorted_sizes[fixed_positions]
        result = np.empty_like(sizes)
        result[fixed_positions] = fixed_values
        leftover_pool = np.setdiff1d(sorted_sizes, fixed_values)
        # setdiff1d drops duplicates; rebuild the leftover pool robustly.
        if len(leftover_pool) != len(remaining):
            pool = list(sorted_sizes)
            for value in fixed_values:
                pool.remove(value)
            leftover_pool = np.array(pool)
        result[remaining] = rng.permutation(leftover_pool)
    return result
