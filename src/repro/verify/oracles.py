"""Differential oracles: run implementation pairs, diff the answers.

The repo deliberately keeps redundant implementations of each layer —
scalar vs numpy kernels, serial vs process-pool sweeps, event-driven vs
batched simulation, cold vs warm-started refinement.  Each pair is
documented as producing identical results (bitwise, except where a
tolerance is declared below), which turns every pair into a free test
oracle: run both halves on the same seeded input and diff.

Every oracle returns ``List[Violation]`` (empty = the pair agrees), the
same contract as :mod:`repro.verify.invariants`, so the fuzzer and the
pytest suite consume all checkers uniformly.

The four oracle pairs (named ``oracle.<slug>``):

``drp-backends`` / ``cds-backends`` / ``dp-methods``
    python vs numpy kernels, and the O(K·N²) quadratic DP vs the
    divide-and-conquer DP — all bitwise.
``cds-scan-modes``
    Triple parity of the CDS Δc scans: scalar full scan vs vectorized
    full scan vs the dirty-pair incremental index — identical move
    sequences (every float), costs and groupings, cold and seeded.
``simulators``
    Event-driven engine vs the batched fast path — measured statistics
    bitwise identical (``events_processed`` is exempt: the batched path
    reports 0 by design).
``serial-parallel``
    ``run_experiment`` with ``workers=None`` vs ``workers=2`` — rows
    bitwise identical except wall-clock ``elapsed`` aggregates.
``shard-layouts``
    The sharded fabric (:mod:`repro.experiments.shards`) vs the serial
    runner — identical rows for any shard count, worker count and
    resume history, including a mid-shard interruption with a torn
    trailing record and a stale done-set entry, and warm-start seeds
    crossing shard boundaries.
``warm-cold``
    Warm-started refinement on a drifted profile must respect the
    documented regression guard against a fresh DRP estimate, and must
    be a no-op on an unchanged profile.
"""

from __future__ import annotations

from typing import List

from repro.core.allocation import ChannelAllocation
from repro.core.cds import cds_refine
from repro.core.database import BroadcastDatabase
from repro.core.drp import SPLIT_POLICIES, drp_allocate
from repro.core.incremental import DEFAULT_REGRESSION_GUARD, warm_start_refine
from repro.core.item import DataItem
from repro.core.partition import PrefixSums, contiguous_optimal
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.simulation.simulator import run_broadcast_simulation
from repro.verify.invariants import REL_TOL, Violation, close

__all__ = [
    "oracle_drp_backends",
    "oracle_cds_backends",
    "oracle_cds_scan_modes",
    "oracle_dp_methods",
    "oracle_database_construction",
    "oracle_simulators",
    "oracle_serial_parallel",
    "oracle_shard_layouts",
    "oracle_warm_cold",
]


def _violation(check: str, message: str, **context: object) -> Violation:
    return Violation(check=check, message=message, context=context)


# ---------------------------------------------------------------------------
# Kernel backends
# ---------------------------------------------------------------------------

def oracle_drp_backends(
    database: BroadcastDatabase,
    num_channels: int,
    *,
    split_policy: str = "max-cost",
) -> List[Violation]:
    """DRP must be bitwise identical on the python and numpy backends."""
    name = "oracle.drp-backends"
    violations: List[Violation] = []
    if num_channels > len(database.items):
        return violations
    python = drp_allocate(
        database, num_channels, split_policy=split_policy, backend="python"
    )
    vectorized = drp_allocate(
        database, num_channels, split_policy=split_policy, backend="numpy"
    )
    if python.allocation.as_id_lists() != vectorized.allocation.as_id_lists():
        violations.append(
            _violation(
                name,
                f"DRP groupings diverge between backends "
                f"(policy={split_policy!r})",
                policy=split_policy,
            )
        )
    if python.cost != vectorized.cost:
        violations.append(
            _violation(
                name,
                f"DRP cost python {python.cost!r} != numpy "
                f"{vectorized.cost!r}",
                python=python.cost,
                numpy=vectorized.cost,
            )
        )
    if python.iterations != vectorized.iterations:
        violations.append(
            _violation(
                name,
                f"DRP iterations python {python.iterations} != numpy "
                f"{vectorized.iterations}",
            )
        )
    return violations


def oracle_cds_backends(
    database: BroadcastDatabase, num_channels: int
) -> List[Violation]:
    """CDS must take the identical move sequence on both backends."""
    name = "oracle.cds-backends"
    violations: List[Violation] = []
    if num_channels > len(database.items):
        return violations
    seed = drp_allocate(database, num_channels, backend="python").allocation
    python = cds_refine(seed, backend="python")
    vectorized = cds_refine(seed, backend="numpy")
    python_moves = [
        (m.item_id, m.origin, m.destination, m.delta, m.cost_after)
        for m in python.moves
    ]
    numpy_moves = [
        (m.item_id, m.origin, m.destination, m.delta, m.cost_after)
        for m in vectorized.moves
    ]
    if python_moves != numpy_moves:
        violations.append(
            _violation(
                name,
                f"CDS move sequences diverge: python made "
                f"{len(python_moves)} move(s), numpy {len(numpy_moves)}",
                python_moves=len(python_moves),
                numpy_moves=len(numpy_moves),
            )
        )
    if python.cost != vectorized.cost:
        violations.append(
            _violation(
                name,
                f"CDS cost python {python.cost!r} != numpy "
                f"{vectorized.cost!r}",
                python=python.cost,
                numpy=vectorized.cost,
            )
        )
    if (
        python.allocation.as_id_lists()
        != vectorized.allocation.as_id_lists()
    ):
        violations.append(
            _violation(name, "CDS final groupings diverge between backends")
        )
    return violations


def oracle_cds_scan_modes(
    database: BroadcastDatabase, num_channels: int
) -> List[Violation]:
    """Triple parity across CDS scan implementations — all bitwise.

    The scalar full scan, the vectorized full scan and the dirty-pair
    incremental scan must execute the identical move sequence (item,
    origin, destination, delta, cost after — every float), land on the
    identical cost and grouping, and the incremental scan must never
    evaluate *more* Δc pairs than the full scan it replaces.  Warm
    composition is covered too: a seeded (``initial=``) incremental
    refinement must match the seeded full scan move for move.
    """
    name = "oracle.cds-scan-modes"
    violations: List[Violation] = []
    if num_channels > len(database.items):
        return violations
    seed = drp_allocate(database, num_channels, backend="python").allocation
    runs = {
        "python-full": cds_refine(seed, backend="python", scan="full"),
        "numpy-full": cds_refine(seed, backend="numpy", scan="full"),
        "numpy-incremental": cds_refine(
            seed, backend="numpy", scan="incremental"
        ),
    }

    def move_key(result):
        return [
            (m.item_id, m.origin, m.destination, m.delta, m.cost_after)
            for m in result.moves
        ]

    reference_label = "python-full"
    reference = runs[reference_label]
    for label, result in runs.items():
        if label == reference_label:
            continue
        if move_key(result) != move_key(reference):
            violations.append(
                _violation(
                    name,
                    f"CDS move sequences diverge: {reference_label} made "
                    f"{len(reference.moves)} move(s), {label} "
                    f"{len(result.moves)}",
                    reference=len(reference.moves),
                    candidate=len(result.moves),
                    mode=label,
                )
            )
        if result.cost != reference.cost:
            violations.append(
                _violation(
                    name,
                    f"CDS cost diverges: {reference_label} "
                    f"{reference.cost!r} vs {label} {result.cost!r}",
                    mode=label,
                )
            )
        if (
            result.allocation.as_id_lists()
            != reference.allocation.as_id_lists()
        ):
            violations.append(
                _violation(
                    name,
                    f"CDS final groupings diverge: {reference_label} vs "
                    f"{label}",
                    mode=label,
                )
            )
    full = runs["numpy-full"]
    incremental = runs["numpy-incremental"]
    if incremental.delta_evaluations > full.delta_evaluations:
        violations.append(
            _violation(
                name,
                f"incremental scan evaluated more Δc pairs "
                f"({incremental.delta_evaluations}) than the full scan "
                f"({full.delta_evaluations})",
            )
        )
    warm_full = cds_refine(
        seed, initial=full.allocation, backend="numpy", scan="full"
    )
    warm_incremental = cds_refine(
        seed, initial=full.allocation, backend="numpy", scan="incremental"
    )
    if move_key(warm_full) != move_key(warm_incremental) or (
        warm_full.cost != warm_incremental.cost
    ):
        violations.append(
            _violation(
                name,
                "seeded (warm-start) refinement diverges between the "
                "full and incremental scans",
            )
        )
    return violations


def oracle_dp_methods(
    database: BroadcastDatabase, num_channels: int
) -> List[Violation]:
    """Quadratic, divide-and-conquer and SMAWK DPs agree exactly.

    The ``smawk-vs-dnc-vs-quadratic`` triple parity: all three must
    return the same optimal cost (bitwise — the recurrences evaluate
    the same ``F·Z`` products and every restricted search provably
    contains the optimum), and each method's boundaries must themselves
    realise the cost they claim.  Boundary *positions* are compared by
    realised cost, not index: among exact ties SMAWK may pick a
    different (equally optimal) predecessor than the leftmost-``j``
    oracle.
    """
    name = "oracle.dp-methods"
    violations: List[Violation] = []
    items = database.sorted_by_benefit_ratio()
    if num_channels > len(items):
        return violations
    quad_bounds, quad_cost = contiguous_optimal(
        items, num_channels, method="quadratic"
    )
    dnc_bounds, dnc_cost = contiguous_optimal(
        items, num_channels, method="divide-conquer"
    )
    smawk_bounds, smawk_cost = contiguous_optimal(
        items, num_channels, method="smawk"
    )
    if not quad_cost == dnc_cost == smawk_cost:
        violations.append(
            _violation(
                name,
                f"DP cost diverges: quadratic {quad_cost!r}, "
                f"divide-conquer {dnc_cost!r}, smawk {smawk_cost!r}",
                quadratic=quad_cost,
                divide_conquer=dnc_cost,
                smawk=smawk_cost,
            )
        )
    sums = PrefixSums(items)
    for method, bounds, cost in (
        ("quadratic", quad_bounds, quad_cost),
        ("divide-conquer", dnc_bounds, dnc_cost),
        ("smawk", smawk_bounds, smawk_cost),
    ):
        realised = sum(sums.cost(a, b) for a, b in bounds)
        if not close(realised, cost):
            violations.append(
                _violation(
                    name,
                    f"{method} boundaries realise {realised}, claimed "
                    f"{cost}",
                    method=method,
                    realised=realised,
                    claimed=cost,
                )
            )
    return violations


def oracle_database_construction(
    database: BroadcastDatabase,
) -> List[Violation]:
    """Object-path and array-path database construction agree exactly.

    Rebuilds the catalogue through the item-list constructor and
    through :meth:`BroadcastDatabase.from_soa`, then diffs everything a
    consumer can observe: ids, feature arrays (bitwise), the
    benefit-ratio order, the fixed download cost, equality and hashes.
    """
    name = "oracle.database-construction"
    violations: List[Violation] = []
    items = database.items
    object_db = BroadcastDatabase(list(items), require_normalized=False)
    soa_db = BroadcastDatabase.from_soa(
        [item.frequency for item in items],
        [item.size for item in items],
        ids=[item.item_id for item in items],
        require_normalized=False,
    )
    if object_db.item_ids != soa_db.item_ids:
        violations.append(
            _violation(name, "item id sequences diverge between paths")
        )
    if (
        list(object_db.frequencies) != list(soa_db.frequencies)
        or list(object_db.sizes) != list(soa_db.sizes)
    ):
        violations.append(
            _violation(
                name, "feature arrays diverge between construction paths"
            )
        )
    if object_db.fixed_download_cost != soa_db.fixed_download_cost:
        violations.append(
            _violation(
                name,
                f"fixed download cost diverges: "
                f"object {object_db.fixed_download_cost!r} vs "
                f"soa {soa_db.fixed_download_cost!r}",
            )
        )
    object_order = [
        item.item_id for item in object_db.sorted_by_benefit_ratio()
    ]
    soa_order = [item.item_id for item in soa_db.sorted_by_benefit_ratio()]
    if object_order != soa_order:
        violations.append(
            _violation(name, "benefit-ratio orders diverge between paths")
        )
    if not (object_db == soa_db and soa_db == object_db):
        violations.append(
            _violation(name, "databases compare unequal across paths")
        )
    if hash(object_db) != hash(soa_db):
        violations.append(
            _violation(name, "database hashes diverge between paths")
        )
    return violations


# ---------------------------------------------------------------------------
# Simulators
# ---------------------------------------------------------------------------

def oracle_simulators(
    allocation: ChannelAllocation,
    *,
    num_requests: int = 400,
    seed: int = 0,
) -> List[Violation]:
    """Event-driven and batched simulation agree bitwise on statistics.

    ``events_processed`` is exempt by design (the batched path does not
    enqueue events and reports 0).
    """
    name = "oracle.simulators"
    violations: List[Violation] = []
    engine = run_broadcast_simulation(
        allocation, num_requests=num_requests, seed=seed, backend="python"
    )
    batched = run_broadcast_simulation(
        allocation, num_requests=num_requests, seed=seed, backend="numpy"
    )
    if engine.measured != batched.measured:
        violations.append(
            _violation(
                name,
                f"measured summaries diverge: engine {engine.measured} vs "
                f"batched {batched.measured}",
            )
        )
    if engine.analytical_waiting_time != batched.analytical_waiting_time:
        violations.append(
            _violation(
                name,
                f"analytical W_b diverges: {engine.analytical_waiting_time!r}"
                f" vs {batched.analytical_waiting_time!r}",
            )
        )
    if engine.num_requests != batched.num_requests:
        violations.append(
            _violation(
                name,
                f"request counts diverge: {engine.num_requests} vs "
                f"{batched.num_requests}",
            )
        )
    if engine.per_item != batched.per_item:
        mismatched = sorted(
            item_id
            for item_id in set(engine.per_item) | set(batched.per_item)
            if engine.per_item.get(item_id) != batched.per_item.get(item_id)
        )
        violations.append(
            _violation(
                name,
                f"per-item summaries diverge for {len(mismatched)} item(s)",
                items=mismatched[:8],
            )
        )
    return violations


# ---------------------------------------------------------------------------
# Serial vs parallel sweeps
# ---------------------------------------------------------------------------

def oracle_serial_parallel(
    *,
    seed: int = 20050608,
    workers: int = 2,
) -> List[Violation]:
    """Serial and fanned-out sweeps must emit identical measurement rows.

    Runs one deliberately small sweep twice — ``workers=None`` and
    ``workers=N`` — and diffs every row field except the wall-clock
    ``elapsed`` aggregates.  Expensive (spawns a process pool), so the
    fuzzer runs it once per session.
    """
    name = "oracle.serial-parallel"
    violations: List[Violation] = []
    config = ExperimentConfig(
        name="verify-serial-parallel",
        description="differential oracle sweep",
        sweep_parameter="num_channels",
        sweep_values=(3, 5),
        algorithms=("drp", "drp-cds"),
        num_items=40,
        replications=2,
        base_seed=seed,
    )
    serial = run_experiment(config)
    parallel = run_experiment(config, workers=workers)
    if serial.errors or parallel.errors:
        violations.append(
            _violation(
                name,
                f"sweep reported cell errors: serial={len(serial.errors)}, "
                f"parallel={len(parallel.errors)}",
            )
        )
    if len(serial.rows) != len(parallel.rows):
        violations.append(
            _violation(
                name,
                f"row counts diverge: serial {len(serial.rows)} vs "
                f"parallel {len(parallel.rows)}",
            )
        )
        return violations
    compared = (
        "sweep_value",
        "algorithm",
        "mean_cost",
        "std_cost",
        "mean_waiting_time",
        "std_waiting_time",
        "replications",
    )
    for serial_row, parallel_row in zip(serial.rows, parallel.rows):
        for field_name in compared:
            left = getattr(serial_row, field_name)
            right = getattr(parallel_row, field_name)
            if left != right:
                violations.append(
                    _violation(
                        name,
                        f"row ({serial_row.sweep_value}, "
                        f"{serial_row.algorithm}) field {field_name!r} "
                        f"diverges: serial {left!r} vs parallel {right!r}",
                        field=field_name,
                    )
                )
    return violations


# ---------------------------------------------------------------------------
# Shard layouts
# ---------------------------------------------------------------------------

def oracle_shard_layouts(
    *,
    seed: int = 20050608,
    workers: int = 2,
) -> List[Violation]:
    """Every shard layout × resume history merges to the serial rows.

    Runs one deliberately small sweep serially, then through the shard
    fabric under increasingly hostile conditions, and diffs every row
    field except the wall-clock ``elapsed`` aggregates:

    * ``M=1`` — the degenerate single-shard layout;
    * ``M=3`` cold, with one shard interrupted mid-run (``max_cells``),
      its store damaged with a torn trailing record *and* a stale
      done-set entry, then resumed, and another shard fanned out over
      ``workers`` processes;
    * ``M=3`` warm-started, shards executed out of order so seeds are
      both recomputed cold and consumed across shard boundaries —
      diffed against the serial *warm* sweep.

    Expensive (runs the sweep five ways and spawns a pool), so the
    fuzzer runs it once per session.
    """
    import tempfile
    from pathlib import Path

    from repro.experiments.shards import (
        compile_manifest,
        merge_shards,
        run_shard,
    )
    from repro.experiments.store import store_chunk_path, store_done_path

    name = "oracle.shard-layouts"
    violations: List[Violation] = []
    config = ExperimentConfig(
        name="verify-shard-layouts",
        description="differential oracle sweep",
        sweep_parameter="num_channels",
        sweep_values=(3, 5),
        algorithms=("drp", "drp-cds"),
        num_items=40,
        replications=2,
        base_seed=seed,
    )

    def comparable(result):
        return [
            (
                row.sweep_value,
                row.algorithm,
                row.mean_cost,
                row.std_cost,
                row.mean_waiting_time,
                row.std_waiting_time,
                row.replications,
            )
            for row in result.rows
        ]

    def diff(label: str, merged, reference) -> None:
        if merged.errors or reference.errors:
            violations.append(
                _violation(
                    name,
                    f"{label}: sweep reported cell errors "
                    f"(merged={len(merged.errors)}, "
                    f"serial={len(reference.errors)})",
                    layout=label,
                )
            )
        if comparable(merged) != comparable(reference):
            violations.append(
                _violation(
                    name,
                    f"{label}: merged rows diverge from the serial run",
                    layout=label,
                )
            )

    serial = run_experiment(config)
    with tempfile.TemporaryDirectory(prefix="repro-shard-oracle-") as tmp:
        tmp_path = Path(tmp)

        single = compile_manifest(config, num_shards=1)
        run_shard(single, 0, results_dir=tmp_path / "m1")
        diff("M=1", merge_shards(single, results_dir=tmp_path / "m1"), serial)

        cold = compile_manifest(config, num_shards=3)
        cold_dir = tmp_path / "m3"
        # Shard 0: interrupted after one cell, store damaged the way a
        # SIGKILL damages it, then resumed.
        report = run_shard(cold, 0, results_dir=cold_dir, max_cells=1)
        if report.computed != 1:
            violations.append(
                _violation(
                    name,
                    f"max_cells=1 computed {report.computed} cell(s)",
                    layout="M=3",
                )
            )
        with store_chunk_path(cold_dir, 0).open("ab") as handle:
            handle.write(b'{"kind": "cell", "key": "[torn')
        with store_done_path(cold_dir, 0).open("a") as handle:
            handle.write("[stale-done-entry]\n")
        resumed = run_shard(cold, 0, results_dir=cold_dir)
        if resumed.torn_records_dropped != 1:
            violations.append(
                _violation(
                    name,
                    f"resume dropped {resumed.torn_records_dropped} torn "
                    f"record(s), expected 1",
                    layout="M=3",
                )
            )
        if resumed.stale_done_dropped != 1:
            violations.append(
                _violation(
                    name,
                    f"resume dropped {resumed.stale_done_dropped} stale "
                    f"done entr(ies), expected 1",
                    layout="M=3",
                )
            )
        if resumed.already_complete != 1:
            violations.append(
                _violation(
                    name,
                    f"resume skipped {resumed.already_complete} cell(s), "
                    f"expected exactly the 1 completed before the kill",
                    layout="M=3",
                )
            )
        run_shard(cold, 1, results_dir=cold_dir, workers=workers)
        run_shard(cold, 2, results_dir=cold_dir)
        diff(
            "M=3 kill/resume",
            merge_shards(cold, results_dir=cold_dir),
            serial,
        )

        warm_serial = run_experiment(config, warm_start=True)
        warm = compile_manifest(config, num_shards=3, warm_start=True)
        warm_dir = tmp_path / "warm"
        # Last shard first: its seeds must recompute cold; the earlier
        # shards then consume stored seeds across the boundary.
        for shard in (2, 0, 1):
            run_shard(warm, shard, results_dir=warm_dir)
        diff(
            "M=3 warm",
            merge_shards(warm, results_dir=warm_dir),
            warm_serial,
        )
    return violations


# ---------------------------------------------------------------------------
# Cold vs warm refinement
# ---------------------------------------------------------------------------

def oracle_warm_cold(
    database: BroadcastDatabase,
    num_channels: int,
    *,
    rng=None,
    drift: float = 0.15,
    backend: str = "auto",
) -> List[Violation]:
    """Warm starts respect the cold-start regression guard.

    Three assertions: (a) warm-starting from a converged allocation on
    the *unchanged* profile is a no-op (same cost within ``REL_TOL``);
    (b) on a drifted profile the warm result never exceeds
    ``DEFAULT_REGRESSION_GUARD ×`` a fresh DRP estimate; (c) the warm
    result is a well-formed partition of the drifted database.
    """
    name = "oracle.warm-cold"
    violations: List[Violation] = []
    if num_channels > len(database.items):
        return violations

    cold = cds_refine(
        drp_allocate(database, num_channels, backend=backend).allocation,
        backend=backend,
    )
    unchanged = warm_start_refine(
        database, num_channels, cold.allocation, backend=backend
    )
    if not close(unchanged.cost, cold.cost):
        violations.append(
            _violation(
                name,
                f"warm start on an unchanged profile moved the cost: "
                f"{unchanged.cost!r} != converged {cold.cost!r} "
                f"(mode={unchanged.mode})",
                warm=unchanged.cost,
                cold=cold.cost,
                mode=unchanged.mode,
            )
        )

    if rng is None:
        factors = [1.0 + drift * ((i % 5) - 2) / 2.0 for i in range(len(database))]
    else:
        factors = [
            float(f) for f in rng.uniform(1.0 - drift, 1.0 + drift, len(database))
        ]
    drifted_items = [
        DataItem(
            item.item_id,
            frequency=item.frequency * factor,
            size=item.size,
            label=item.label,
        )
        for item, factor in zip(database.items, factors)
    ]
    drifted = BroadcastDatabase(
        drifted_items, require_normalized=False
    ).normalized()

    warm = warm_start_refine(
        drifted, num_channels, cold.allocation, backend=backend
    )
    rough = drp_allocate(drifted, num_channels, backend=backend)
    bound = DEFAULT_REGRESSION_GUARD * rough.cost
    if warm.cost > bound + REL_TOL * max(1.0, bound):
        violations.append(
            _violation(
                name,
                f"warm cost {warm.cost} exceeds the regression guard "
                f"{bound} ({DEFAULT_REGRESSION_GUARD} × DRP {rough.cost}, "
                f"mode={warm.mode})",
                warm=warm.cost,
                bound=bound,
                mode=warm.mode,
            )
        )
    id_lists = warm.allocation.as_id_lists()
    flattened = sorted(item_id for channel in id_lists for item_id in channel)
    if flattened != sorted(drifted.item_ids):
        violations.append(
            _violation(
                name,
                "warm allocation is not a partition of the drifted database",
            )
        )
    return violations


def available_split_policies() -> tuple:
    """Split policies the DRP oracle can exercise (re-export for CLI)."""
    return SPLIT_POLICIES
