"""Metamorphic relations the cost model and allocators must respect.

A metamorphic relation transforms an input in a way whose effect on the
output is known *a priori* — no external oracle needed.  Each relation
below returns a list of :class:`~repro.verify.invariants.Violation`
records (empty = the relation holds), so the fuzzer and pytest can
consume them uniformly.

The five relations (named ``metamorphic.<slug>``):

``permutation``
    Reordering items within channels, or relabelling the channels
    themselves, leaves every cost bitwise unchanged — ``math.fsum`` is
    exactly rounded, hence permutation invariant.
``size-scaling``
    Scaling every item size by a power of two scales all costs by
    exactly that factor and leaves the DRP grouping identical: scaling
    by 2 commutes with float rounding, so every comparison DRP makes is
    preserved verbatim.
``frequency-renormalization``
    Scaling every access frequency by a common factor scales costs
    linearly and leaves the DRP grouping unchanged — the grouping only
    depends on the *relative* frequency profile, so renormalising a
    database is cost-neutral.
``monotone-channels``
    The contiguous-DP optimal cost is non-increasing in the number of
    channels K: any K-partition can be refined by splitting one group,
    and splitting removes the non-negative cross term
    ``F_p Z_q + F_q Z_p``.
``merge-split``
    The same cross term drives merge consistency:
    ``cost(p ∪ q) − cost(p) − cost(q) = F_p Z_q + F_q Z_p``, and the
    enumerated two-way split costs agree with ``best_split``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.core.allocation import ChannelAllocation
from repro.core.cost import allocation_cost, group_aggregates, group_cost
from repro.core.database import BroadcastDatabase
from repro.core.drp import drp_allocate
from repro.core.item import DataItem
from repro.core.partition import best_split, contiguous_optimal, split_costs
from repro.verify.invariants import REL_TOL, Violation, close

__all__ = [
    "relation_permutation",
    "relation_size_scaling",
    "relation_frequency_renormalization",
    "relation_monotone_channels",
    "relation_merge_split",
]


def _violation(check: str, message: str, **context: object) -> Violation:
    return Violation(check=check, message=message, context=context)


def _scaled_database(
    database: BroadcastDatabase,
    *,
    size_factor: float = 1.0,
    frequency_factor: float = 1.0,
) -> BroadcastDatabase:
    items = [
        DataItem(
            item.item_id,
            frequency=item.frequency * frequency_factor,
            size=item.size * size_factor,
            label=item.label,
        )
        for item in database.items
    ]
    return BroadcastDatabase(items, require_normalized=False)


# ---------------------------------------------------------------------------
# Permutation invariance
# ---------------------------------------------------------------------------

def relation_permutation(
    allocation: ChannelAllocation, rng
) -> List[Violation]:
    """Item order and channel labels are cost-irrelevant — bitwise.

    ``rng`` is a :class:`numpy.random.Generator` (only ``permutation``
    is used, so any object with that method works).
    """
    name = "metamorphic.permutation"
    violations: List[Violation] = []
    base_cost = allocation_cost(allocation)

    shuffled_channels = []
    for channel in allocation.channels:
        order = [int(i) for i in rng.permutation(len(channel))]
        shuffled_channels.append([channel[i] for i in order])
    channel_order = [int(i) for i in rng.permutation(len(shuffled_channels))]
    shuffled_channels = [shuffled_channels[i] for i in channel_order]

    permuted = ChannelAllocation(
        allocation.database,
        shuffled_channels,
        allow_empty_channels=True,
    )
    permuted_cost = allocation_cost(permuted)
    if permuted_cost != base_cost:
        violations.append(
            _violation(
                name,
                f"permuted allocation cost {permuted_cost!r} != base "
                f"{base_cost!r} (fsum must be permutation invariant)",
                base=base_cost,
                permuted=permuted_cost,
            )
        )

    for index, channel in enumerate(allocation.channels):
        order = [int(i) for i in rng.permutation(len(channel))]
        reordered = [channel[i] for i in order]
        if group_cost(reordered) != group_cost(channel):
            violations.append(
                _violation(
                    name,
                    f"group_cost of channel {index} changed under item "
                    "permutation",
                    channel=index,
                )
            )
    return violations


# ---------------------------------------------------------------------------
# Size scaling
# ---------------------------------------------------------------------------

def relation_size_scaling(
    database: BroadcastDatabase,
    num_channels: int,
    *,
    factor: float = 2.0,
    backend: str = "auto",
) -> List[Violation]:
    """Doubling all sizes doubles all costs and preserves the grouping.

    ``factor`` must be a power of two so the scaling is exact in binary
    floating point; then every intermediate quantity DRP computes scales
    exactly and every comparison resolves identically.
    """
    name = "metamorphic.size-scaling"
    violations: List[Violation] = []
    mantissa, _ = math.frexp(factor)
    if mantissa != 0.5:
        raise ValueError(f"factor must be a power of two, got {factor}")
    if num_channels > len(database.items):
        return violations

    scaled_db = _scaled_database(database, size_factor=factor)
    base = drp_allocate(database, num_channels, backend=backend)
    scaled = drp_allocate(scaled_db, num_channels, backend=backend)

    if scaled.allocation.as_id_lists() != base.allocation.as_id_lists():
        violations.append(
            _violation(
                name,
                f"DRP grouping changed under ×{factor} size scaling",
                factor=factor,
            )
        )
    if not close(scaled.cost, factor * base.cost, rel=1e-12):
        violations.append(
            _violation(
                name,
                f"DRP cost {scaled.cost!r} != {factor} × base cost "
                f"{base.cost!r} (power-of-two scaling must be exact)",
                base=base.cost,
                scaled=scaled.cost,
                factor=factor,
            )
        )

    rebased = ChannelAllocation.rebase(
        scaled_db, base.allocation.as_id_lists()
    )
    fixed_cost = allocation_cost(rebased)
    expected = factor * allocation_cost(base.allocation)
    if fixed_cost != expected:
        violations.append(
            _violation(
                name,
                f"fixed-grouping cost {fixed_cost!r} != exactly scaled "
                f"{expected!r}",
                fixed=fixed_cost,
                expected=expected,
            )
        )
    return violations


# ---------------------------------------------------------------------------
# Frequency renormalization
# ---------------------------------------------------------------------------

def relation_frequency_renormalization(
    database: BroadcastDatabase,
    num_channels: int,
    *,
    factor: float = 2.0,
    backend: str = "auto",
) -> List[Violation]:
    """The grouping depends only on the relative frequency profile.

    Two legs: (a) scaling all frequencies by a power of two preserves
    the DRP grouping and scales the cost exactly; (b) renormalising the
    scaled database back to a probability profile scales any fixed
    grouping's cost linearly (within ``REL_TOL`` — the 1/total factor
    is not a power of two).
    """
    name = "metamorphic.frequency-renormalization"
    violations: List[Violation] = []
    mantissa, _ = math.frexp(factor)
    if mantissa != 0.5:
        raise ValueError(f"factor must be a power of two, got {factor}")
    if num_channels > len(database.items):
        return violations

    scaled_db = _scaled_database(database, frequency_factor=factor)
    base = drp_allocate(database, num_channels, backend=backend)
    scaled = drp_allocate(scaled_db, num_channels, backend=backend)

    if scaled.allocation.as_id_lists() != base.allocation.as_id_lists():
        violations.append(
            _violation(
                name,
                f"DRP grouping changed under ×{factor} frequency scaling",
                factor=factor,
            )
        )
    if not close(scaled.cost, factor * base.cost, rel=1e-12):
        violations.append(
            _violation(
                name,
                f"DRP cost {scaled.cost!r} != {factor} × base cost "
                f"{base.cost!r}",
                base=base.cost,
                scaled=scaled.cost,
                factor=factor,
            )
        )

    normalized_db = scaled_db.normalized()
    grouping = base.allocation.as_id_lists()
    normalized_cost = allocation_cost(
        ChannelAllocation.rebase(normalized_db, grouping)
    )
    scale = 1.0 / scaled_db.total_frequency
    expected = scale * allocation_cost(
        ChannelAllocation.rebase(scaled_db, grouping)
    )
    if not close(normalized_cost, expected):
        violations.append(
            _violation(
                name,
                f"renormalised fixed-grouping cost {normalized_cost} != "
                f"linearly scaled {expected}",
                normalized=normalized_cost,
                expected=expected,
            )
        )
    return violations


# ---------------------------------------------------------------------------
# Monotonicity in the channel count
# ---------------------------------------------------------------------------

def relation_monotone_channels(
    database: BroadcastDatabase,
    *,
    max_channels: Optional[int] = None,
    method: str = "auto",
) -> List[Violation]:
    """Optimal contiguous cost never increases when K grows."""
    name = "metamorphic.monotone-channels"
    violations: List[Violation] = []
    ordered = database.sorted_by_benefit_ratio()
    limit = min(len(ordered), max_channels or 8)
    previous = None
    for k in range(1, limit + 1):
        _, cost = contiguous_optimal(ordered, k, method=method)
        if previous is not None and cost > previous + REL_TOL * max(
            1.0, abs(previous)
        ):
            violations.append(
                _violation(
                    name,
                    f"optimal cost rose from {previous} (K={k - 1}) to "
                    f"{cost} (K={k})",
                    k=k,
                    previous=previous,
                    cost=cost,
                )
            )
        previous = cost
    return violations


# ---------------------------------------------------------------------------
# Merge / split consistency
# ---------------------------------------------------------------------------

def relation_merge_split(
    allocation: ChannelAllocation, rng
) -> List[Violation]:
    """Merging groups adds exactly the cross term; splits agree.

    (a) For channel pairs (p, q):
    ``cost(p ∪ q) − cost(p) − cost(q) == F_p Z_q + F_q Z_p``.
    (b) For each multi-item channel: the enumerated two-way split costs
    (:func:`split_costs`) reach their minimum exactly at
    :func:`best_split`, on both kernel backends.
    """
    name = "metamorphic.merge-split"
    violations: List[Violation] = []
    channels = allocation.channels

    pairs = [
        (p, q)
        for p in range(len(channels))
        for q in range(p + 1, len(channels))
    ]
    if len(pairs) > 16:
        indices = sorted(
            int(i) for i in rng.choice(len(pairs), size=16, replace=False)
        )
        pairs = [pairs[i] for i in indices]
    for p, q in pairs:
        fp, zp = group_aggregates(channels[p])
        fq, zq = group_aggregates(channels[q])
        merged = group_cost(list(channels[p]) + list(channels[q]))
        cross = fp * zq + fq * zp
        gain = merged - fp * zp - fq * zq
        scale = max(1.0, abs(merged))
        if abs(gain - cross) > REL_TOL * scale:
            violations.append(
                _violation(
                    name,
                    f"merge({p}, {q}) gain {gain} != cross term {cross}",
                    p=p,
                    q=q,
                    gain=gain,
                    cross=cross,
                )
            )
        if cross < -REL_TOL * scale:
            violations.append(
                _violation(
                    name,
                    f"negative cross term {cross} for merge({p}, {q}) — "
                    "splitting must never increase cost",
                    p=p,
                    q=q,
                    cross=cross,
                )
            )

    for index, channel in enumerate(channels):
        if len(channel) < 2:
            continue
        items: Sequence[DataItem] = list(channel)
        enumerated = split_costs(items)
        python_split, python_cost = best_split(items, backend="python")
        numpy_split, numpy_cost = best_split(items, backend="numpy")
        if min(enumerated) != python_cost:
            violations.append(
                _violation(
                    name,
                    f"channel {index}: min(split_costs) {min(enumerated)} "
                    f"!= best_split cost {python_cost}",
                    channel=index,
                )
            )
        if (python_split, python_cost) != (numpy_split, numpy_cost):
            violations.append(
                _violation(
                    name,
                    f"channel {index}: best_split backends disagree — "
                    f"python ({python_split}, {python_cost}) vs numpy "
                    f"({numpy_split}, {numpy_cost})",
                    channel=index,
                )
            )
        whole = group_cost(items)
        if python_cost > whole + REL_TOL * max(1.0, abs(whole)):
            violations.append(
                _violation(
                    name,
                    f"channel {index}: best two-way split {python_cost} "
                    f"worse than unsplit cost {whole}",
                    channel=index,
                )
            )
    return violations
