"""Differential verification: invariants, oracles, metamorphic fuzzing.

The public surface re-exports the three checker families plus the fuzz
driver; ``repro verify`` (see :mod:`repro.cli`) and the pytest suite are
thin consumers of exactly these names.  See ``docs/verification.md``
for the checker catalogue and tolerance policy.
"""

from repro.verify.fuzz import (
    DEFAULT_FAILURES_DIR,
    FAILURE_SCHEMA,
    INJECTABLE_BUGS,
    CaseContext,
    CheckSpec,
    FuzzFailure,
    FuzzReport,
    available_checks,
    load_failure,
    replay_failure,
    run_fuzz,
    serialize_failure,
    shrink_case,
)
from repro.verify.invariants import (
    ABS_TOL,
    REL_TOL,
    Violation,
    check_allocation_wellformed,
    check_cost_identities,
    check_lower_bounds,
    check_move_delta,
    check_prefix_sums,
)
from repro.verify.metamorphic import (
    relation_frequency_renormalization,
    relation_merge_split,
    relation_monotone_channels,
    relation_permutation,
    relation_size_scaling,
)
from repro.verify.oracles import (
    oracle_cds_backends,
    oracle_cds_scan_modes,
    oracle_database_construction,
    oracle_dp_methods,
    oracle_drp_backends,
    oracle_serial_parallel,
    oracle_simulators,
    oracle_warm_cold,
)

__all__ = [
    "ABS_TOL",
    "REL_TOL",
    "Violation",
    "check_allocation_wellformed",
    "check_cost_identities",
    "check_lower_bounds",
    "check_move_delta",
    "check_prefix_sums",
    "relation_frequency_renormalization",
    "relation_merge_split",
    "relation_monotone_channels",
    "relation_permutation",
    "relation_size_scaling",
    "oracle_cds_backends",
    "oracle_cds_scan_modes",
    "oracle_database_construction",
    "oracle_dp_methods",
    "oracle_drp_backends",
    "oracle_serial_parallel",
    "oracle_simulators",
    "oracle_warm_cold",
    "DEFAULT_FAILURES_DIR",
    "FAILURE_SCHEMA",
    "INJECTABLE_BUGS",
    "CaseContext",
    "CheckSpec",
    "FuzzFailure",
    "FuzzReport",
    "available_checks",
    "load_failure",
    "replay_failure",
    "run_fuzz",
    "serialize_failure",
    "shrink_case",
]
