"""Pure invariant checkers over allocations and cost structures.

Every checker takes concrete objects (a database, an allocation, item
lists) and returns a list of :class:`Violation` records — an empty list
means the invariant holds.  Checkers never raise on a *detected*
violation; raising is reserved for being called with malformed inputs.
This shape lets the fuzzer (:mod:`repro.verify.fuzz`) treat a violation
as data it can shrink and serialize, and lets tests assert
``checker(...) == []`` directly.

The checks encode the paper's closed-form identities:

* Eq. (1): per-item wait ``W_j = Z_i / (2b) + z_j / b``;
* Eq. (2): ``W_b = cost / (2b) + fixed_download_cost / b``;
* Eq. (3): ``cost = Σ_i F_i · Z_i`` — equivalently the pairwise double
  sum ``Σ_i Σ_{j,l ∈ G_i} f_j · z_l``;
* Eq. (4): the O(1) move delta ``Δc`` versus a from-scratch recompute.

Tolerance policy
----------------
Identities that hold *bitwise* by construction (same ``math.fsum`` over
the same floats) are compared exactly.  Identities that reassociate
floating-point sums are compared with ``REL_TOL`` relative tolerance
(``ABS_TOL`` absolute floor); both are deliberately loose enough that a
genuine formula bug (wrong sign, dropped term) lands orders of magnitude
outside them.  See ``docs/verification.md`` for the catalogue.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.allocation import ChannelAllocation
from repro.core.cost import (
    DEFAULT_BANDWIDTH,
    allocation_cost,
    average_waiting_time,
    channel_waiting_time,
    group_aggregates,
    item_waiting_time,
    move_delta,
    waiting_time_from_cost,
)
from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.core.partition import PrefixSums, contiguous_optimal
from repro.core.cds import cds_refine
from repro.core.drp import drp_allocate
from repro.core.incremental import DEFAULT_REGRESSION_GUARD, warm_start_refine

__all__ = [
    "ABS_TOL",
    "REL_TOL",
    "Violation",
    "DeltaFn",
    "close",
    "check_allocation_wellformed",
    "check_cost_identities",
    "check_move_delta",
    "check_prefix_sums",
    "check_lower_bounds",
]

#: Relative tolerance for identities that reassociate float sums.
REL_TOL = 1e-9
#: Absolute floor so near-zero quantities do not trip the relative test.
ABS_TOL = 1e-12

#: Signature of :func:`repro.core.cost.move_delta` — checkers accept a
#: replacement so the fuzzer can inject a deliberately broken delta and
#: confirm the harness catches it (``repro verify --inject-bug``).
DeltaFn = Callable[..., float]


@dataclass(frozen=True)
class Violation:
    """One detected invariant breach.

    ``check`` is the dotted checker name (``"invariants.move-delta"``),
    ``message`` a human-readable description with the numbers that
    disagreed, and ``context`` any structured details useful for replay
    (item ids, channel indices, expected/actual values).
    """

    check: str
    message: str
    context: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "check": self.check,
            "message": self.message,
            "context": dict(self.context),
        }


def close(a: float, b: float, *, rel: float = REL_TOL, abs_tol: float = ABS_TOL) -> bool:
    """Tolerance predicate used across the verification layer."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)


def _violation(check: str, message: str, **context: object) -> Violation:
    return Violation(check=check, message=message, context=context)


# ---------------------------------------------------------------------------
# Structural well-formedness
# ---------------------------------------------------------------------------

def check_allocation_wellformed(
    allocation: ChannelAllocation,
    *,
    allow_empty_channels: bool = False,
) -> List[Violation]:
    """The allocation is an exact partition with consistent aggregates.

    Checks: every database item appears on exactly one channel, no
    channel is empty (unless allowed), and the cached per-channel
    ``ChannelStats`` match a from-scratch ``math.fsum`` recompute.
    """
    name = "invariants.wellformed"
    violations: List[Violation] = []
    database = allocation.database
    seen: Dict[str, int] = {}
    for index, channel in enumerate(allocation.channels):
        if not channel and not allow_empty_channels:
            violations.append(
                _violation(name, f"channel {index} is empty", channel=index)
            )
        for item in channel:
            if item.item_id in seen:
                violations.append(
                    _violation(
                        name,
                        f"item {item.item_id!r} on channels "
                        f"{seen[item.item_id]} and {index}",
                        item=item.item_id,
                    )
                )
            seen[item.item_id] = index
    missing = set(database.item_ids) - set(seen)
    extra = set(seen) - set(database.item_ids)
    if missing:
        violations.append(
            _violation(
                name,
                f"{len(missing)} database item(s) unallocated",
                missing=sorted(missing),
            )
        )
    if extra:
        violations.append(
            _violation(
                name,
                f"{len(extra)} allocated item(s) not in the database",
                extra=sorted(extra),
            )
        )
    for index, (channel, stat) in enumerate(
        zip(allocation.channels, allocation.channel_stats)
    ):
        frequency, size = group_aggregates(channel)
        if not close(stat.frequency, frequency) or not close(stat.size, size):
            violations.append(
                _violation(
                    name,
                    f"channel {index} stats ({stat.frequency}, {stat.size}) "
                    f"!= recomputed ({frequency}, {size})",
                    channel=index,
                )
            )
        if stat.count != len(channel):
            violations.append(
                _violation(
                    name,
                    f"channel {index} count {stat.count} != {len(channel)}",
                    channel=index,
                )
            )
    return violations


# ---------------------------------------------------------------------------
# Cost identities — Eq. (1), (2), (3)
# ---------------------------------------------------------------------------

def check_cost_identities(
    allocation: ChannelAllocation,
    *,
    bandwidth: float = DEFAULT_BANDWIDTH,
) -> List[Violation]:
    """Eq. (1)–(3) must tell one consistent story about the allocation.

    Four cross-checks:

    1. ``allocation_cost`` equals the pairwise double sum
       ``Σ_i Σ_{j,l ∈ G_i} f_j z_l`` (the raw form Eq. (3) factors);
    2. ``average_waiting_time`` equals ``waiting_time_from_cost`` applied
       to ``allocation_cost`` (Eq. (2));
    3. the frequency-weighted per-item waits of Eq. (1) aggregate to the
       same ``W_b``:  ``Σ_j f_j · W_j == W_b``;
    4. each channel's ``channel_waiting_time`` matches the
       frequency-weighted mean of its members' ``item_waiting_time``.
    """
    name = "invariants.cost-identities"
    violations: List[Violation] = []
    database = allocation.database

    cost = allocation_cost(allocation)
    pairwise = math.fsum(
        item.frequency * other.size
        for channel in allocation.channels
        for item in channel
        for other in channel
    )
    if not close(cost, pairwise):
        violations.append(
            _violation(
                name,
                f"Eq.(3) factored cost {cost} != pairwise double sum {pairwise}",
                cost=cost,
                pairwise=pairwise,
            )
        )

    w_b = average_waiting_time(allocation, bandwidth=bandwidth)
    from_cost = waiting_time_from_cost(
        cost, database.fixed_download_cost, bandwidth=bandwidth
    )
    if not close(w_b, from_cost):
        violations.append(
            _violation(
                name,
                f"Eq.(2) W_b {w_b} != waiting_time_from_cost {from_cost}",
                w_b=w_b,
                from_cost=from_cost,
            )
        )

    weighted = math.fsum(
        item.frequency * item_waiting_time(item, channel, bandwidth=bandwidth)
        for channel in allocation.channels
        for item in channel
    )
    if not close(w_b, weighted):
        violations.append(
            _violation(
                name,
                f"Eq.(1) aggregate of per-item waits {weighted} != W_b {w_b}",
                w_b=w_b,
                weighted=weighted,
            )
        )

    for index, channel in enumerate(allocation.channels):
        if not channel:
            continue
        per_channel = channel_waiting_time(channel, bandwidth=bandwidth)
        frequency, _ = group_aggregates(channel)
        member_mean = math.fsum(
            item.frequency * item_waiting_time(item, channel, bandwidth=bandwidth)
            for item in channel
        ) / frequency
        if not close(per_channel, member_mean):
            violations.append(
                _violation(
                    name,
                    f"channel {index} wait {per_channel} != "
                    f"frequency-weighted member mean {member_mean}",
                    channel=index,
                )
            )
    return violations


# ---------------------------------------------------------------------------
# Move delta — Eq. (4)
# ---------------------------------------------------------------------------

def check_move_delta(
    allocation: ChannelAllocation,
    *,
    delta_fn: DeltaFn = move_delta,
    max_moves: int = 512,
    rng=None,
) -> List[Violation]:
    """Eq. (4)'s O(1) ``Δc`` must equal the from-scratch cost difference.

    Enumerates candidate (item, origin → destination) moves — all of
    them when the move space is small, a deterministic sample otherwise
    — and compares ``delta_fn``'s closed form against
    ``cost(before) − cost(after)`` recomputed with ``math.fsum`` on the
    two affected channels.  ``delta_fn`` defaults to the production
    :func:`repro.core.cost.move_delta`; the fuzzer swaps in a mutated
    version to prove the harness detects a broken delta.
    """
    name = "invariants.move-delta"
    violations: List[Violation] = []
    channels = allocation.channels
    num_channels = len(channels)
    if num_channels < 2:
        return violations

    moves: List[Tuple[int, int, int]] = [
        (origin, position, destination)
        for origin, channel in enumerate(channels)
        for position in range(len(channel))
        for destination in range(num_channels)
        if destination != origin
    ]
    if len(moves) > max_moves:
        if rng is None:
            import random

            rng = random.Random(0)
            indices = sorted(rng.sample(range(len(moves)), max_moves))
        else:
            indices = sorted(
                int(i) for i in rng.choice(len(moves), size=max_moves, replace=False)
            )
        moves = [moves[i] for i in indices]

    aggregates = [group_aggregates(channel) for channel in channels]
    for origin, position, destination in moves:
        item = channels[origin][position]
        origin_frequency, origin_size = aggregates[origin]
        dest_frequency, dest_size = aggregates[destination]
        closed = delta_fn(
            item,
            origin_frequency=origin_frequency,
            origin_size=origin_size,
            dest_frequency=dest_frequency,
            dest_size=dest_size,
        )

        before = (
            origin_frequency * origin_size + dest_frequency * dest_size
        )
        new_origin = [other for other in channels[origin] if other is not item]
        new_dest = list(channels[destination]) + [item]
        of, oz = group_aggregates(new_origin)
        df, dz = group_aggregates(new_dest)
        after = of * oz + df * dz
        recomputed = before - after
        scale = max(1.0, abs(before), abs(after))
        if abs(closed - recomputed) > REL_TOL * scale:
            violations.append(
                _violation(
                    name,
                    f"Eq.(4) closed-form Δc {closed} != recomputed "
                    f"{recomputed} for {item.item_id!r}: "
                    f"channel {origin} → {destination}",
                    item=item.item_id,
                    origin=origin,
                    destination=destination,
                    closed=closed,
                    recomputed=recomputed,
                )
            )
            if len(violations) >= 8:
                break  # enough evidence; keep failure payloads bounded
    return violations


# ---------------------------------------------------------------------------
# Prefix sums
# ---------------------------------------------------------------------------

def check_prefix_sums(
    items: Sequence[DataItem],
    *,
    max_ranges: int = 256,
    rng=None,
) -> List[Violation]:
    """``PrefixSums`` range queries must agree with direct ``fsum``.

    Exercises ``frequency``, ``size`` and ``cost`` over all (start,
    stop) ranges for short item lists, or a deterministic sample of
    ranges for long ones.  Prefix-sum subtraction reassociates the sum,
    so the comparison uses ``REL_TOL``.
    """
    name = "invariants.prefix-sums"
    violations: List[Violation] = []
    items = list(items)
    n = len(items)
    if n == 0:
        return violations
    sums = PrefixSums(items)

    ranges = [
        (start, stop)
        for start in range(n)
        for stop in range(start + 1, n + 1)
    ]
    if len(ranges) > max_ranges:
        if rng is None:
            import random

            picker = random.Random(0)
            indices = sorted(picker.sample(range(len(ranges)), max_ranges))
        else:
            indices = sorted(
                int(i)
                for i in rng.choice(len(ranges), size=max_ranges, replace=False)
            )
        ranges = [ranges[i] for i in indices]

    for start, stop in ranges:
        window = items[start:stop]
        frequency = math.fsum(item.frequency for item in window)
        size = math.fsum(item.size for item in window)
        if not close(sums.frequency(start, stop), frequency):
            violations.append(
                _violation(
                    name,
                    f"prefix frequency({start}, {stop}) = "
                    f"{sums.frequency(start, stop)} != fsum {frequency}",
                    start=start,
                    stop=stop,
                )
            )
        if not close(sums.size(start, stop), size):
            violations.append(
                _violation(
                    name,
                    f"prefix size({start}, {stop}) = "
                    f"{sums.size(start, stop)} != fsum {size}",
                    start=start,
                    stop=stop,
                )
            )
        if not close(sums.cost(start, stop), frequency * size):
            violations.append(
                _violation(
                    name,
                    f"prefix cost({start}, {stop}) = "
                    f"{sums.cost(start, stop)} != F·Z {frequency * size}",
                    start=start,
                    stop=stop,
                )
            )
        if len(violations) >= 8:
            break
    return violations


# ---------------------------------------------------------------------------
# Lower / upper bound chain
# ---------------------------------------------------------------------------

def _bounded_above(lower: float, upper: float) -> bool:
    """``lower ≤ upper`` with the layer's tolerance slack."""
    return lower <= upper + REL_TOL * max(1.0, abs(upper)) + ABS_TOL


def check_lower_bounds(
    database: BroadcastDatabase,
    num_channels: int,
    *,
    backend: str = "auto",
) -> List[Violation]:
    """The provable ordering between the algorithms must hold.

    * the contiguous DP optimum (exact on the benefit-ratio ordering)
      never exceeds DRP's cost — DRP outputs *a* contiguous partition
      of the same ordering;
    * DRP never exceeds the flat single-group cost it starts from
      (splitting only ever removes cross terms ``F_p Z_q + F_q Z_p ≥ 0``);
    * CDS never worsens its DRP seed (descent only accepts improving
      moves);
    * a warm start never exceeds ``DEFAULT_REGRESSION_GUARD ×`` the
      rough DRP cost — the documented fallback guard of
      :func:`repro.core.incremental.warm_start_refine`.
    """
    name = "invariants.lower-bounds"
    violations: List[Violation] = []
    if num_channels > len(database.items):
        return violations

    flat_frequency = database.total_frequency
    flat_size = database.total_size
    flat_cost = flat_frequency * flat_size

    drp = drp_allocate(database, num_channels, backend=backend)
    ordered = database.sorted_by_benefit_ratio()
    _, dp_cost = contiguous_optimal(ordered, num_channels)
    cds = cds_refine(drp.allocation, backend=backend)
    warm = warm_start_refine(
        database, num_channels, drp.allocation, backend=backend
    )

    if not _bounded_above(dp_cost, drp.cost):
        violations.append(
            _violation(
                name,
                f"contiguous DP optimum {dp_cost} exceeds DRP cost {drp.cost}",
                dp=dp_cost,
                drp=drp.cost,
            )
        )
    if not _bounded_above(drp.cost, flat_cost):
        violations.append(
            _violation(
                name,
                f"DRP cost {drp.cost} exceeds flat single-group cost {flat_cost}",
                drp=drp.cost,
                flat=flat_cost,
            )
        )
    if not _bounded_above(cds.cost, drp.cost):
        violations.append(
            _violation(
                name,
                f"CDS cost {cds.cost} exceeds its DRP seed {drp.cost}",
                cds=cds.cost,
                drp=drp.cost,
            )
        )
    guard_bound = DEFAULT_REGRESSION_GUARD * drp.cost
    if not _bounded_above(warm.cost, guard_bound):
        violations.append(
            _violation(
                name,
                f"warm-start cost {warm.cost} exceeds guard bound "
                f"{guard_bound} ({DEFAULT_REGRESSION_GUARD} × DRP {drp.cost})",
                warm=warm.cost,
                bound=guard_bound,
                mode=warm.mode,
            )
        )
    return violations
