"""Deterministic metamorphic fuzzer over the whole verification layer.

``run_fuzz`` drives every checker of :mod:`repro.verify.invariants`,
:mod:`repro.verify.metamorphic` and :mod:`repro.verify.oracles` against
seeded synthetic workloads spanning four size regimes — small (most
cases, where every checker is cheap), medium, the N < 512 / N ≥ 512
band straddling :data:`repro.core.drp.AUTO_BACKEND_CROSSOVER` so the
auto-backend resolution rule is exercised on both sides of the switch,
and an occasional large-N smoke band (low thousands of items) where
only the uncapped checkers run — enough to catch scaling regressions
in the array-resident pipeline without leaving seconds-scale budgets.

On a violation the offending case is **shrunk** greedily (drop item
chunks of halving size, then reduce the channel count) while it keeps
failing, then serialized to ``verify_failures/<check>-<seed>.json``.
:func:`replay_failure` re-runs a serialized case — pointing pytest at
the directory turns every past failure into a permanent regression test.

Everything is deterministic in ``--seed``: case generation, checker
sampling (each checker derives its RNG from the case seed and its own
name) and shrinking.  ``--inject-bug delta-sign`` swaps a
sign-flipped Eq. (4) delta into the move-delta checker to prove the
harness catches, shrinks and serializes a real cost-function bug.
"""

from __future__ import annotations

import json
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.core.cds import CDSResult, cds_refine
from repro.core.cost import move_delta
from repro.core.database import BroadcastDatabase
from repro.core.drp import AUTO_BACKEND_CROSSOVER, DRPResult, drp_allocate
from repro.core.item import DataItem
from repro.exceptions import ReproError, VerificationError
from repro.verify.invariants import (
    DeltaFn,
    Violation,
    check_allocation_wellformed,
    check_cost_identities,
    check_lower_bounds,
    check_move_delta,
    check_prefix_sums,
)
from repro.verify.metamorphic import (
    relation_frequency_renormalization,
    relation_merge_split,
    relation_monotone_channels,
    relation_permutation,
    relation_size_scaling,
)
from repro.verify.oracles import (
    oracle_cds_backends,
    oracle_cds_scan_modes,
    oracle_database_construction,
    oracle_dp_methods,
    oracle_drp_backends,
    oracle_serial_parallel,
    oracle_shard_layouts,
    oracle_simulators,
    oracle_warm_cold,
)
from repro.workloads.generator import WorkloadSpec, generate_database

__all__ = [
    "FAILURE_SCHEMA",
    "DEFAULT_FAILURES_DIR",
    "INJECTABLE_BUGS",
    "CaseContext",
    "CheckSpec",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "available_checks",
    "run_fuzz",
    "shrink_case",
    "serialize_failure",
    "load_failure",
    "replay_failure",
]

#: Schema tag written into every serialized failure file.
FAILURE_SCHEMA = "repro.verify.failure/v1"

#: Where ``repro verify`` drops serialized failures by default.
DEFAULT_FAILURES_DIR = "verify_failures"

#: Maximum predicate evaluations one shrink is allowed to spend.
_SHRINK_BUDGET = 400


def _broken_delta_sign(item, **kwargs) -> float:
    """Eq. (4) with the sign flipped — the canonical injected bug."""
    return -move_delta(item, **kwargs)


#: Deliberately broken implementations the fuzzer can swap in to prove
#: the harness detects them (``repro verify --inject-bug <name>``).
INJECTABLE_BUGS: Dict[str, DeltaFn] = {
    "delta-sign": _broken_delta_sign,
}


# ---------------------------------------------------------------------------
# Case plumbing
# ---------------------------------------------------------------------------

class CaseContext:
    """One fuzz case: a seeded database plus lazily shared pipeline runs.

    Checkers pull the DRP / CDS results through the context so a case
    runs each pipeline stage at most once regardless of how many
    checkers look at it.  Each checker derives its RNG from the case
    seed *and its own name*, so adding or reordering checkers never
    perturbs another checker's sampling.
    """

    def __init__(
        self,
        database: BroadcastDatabase,
        num_channels: int,
        case_seed: int,
        *,
        delta_fn: DeltaFn = move_delta,
    ) -> None:
        self.database = database
        self.num_channels = num_channels
        self.case_seed = case_seed
        self.delta_fn = delta_fn
        self._drp: Optional[DRPResult] = None
        self._cds: Optional[CDSResult] = None

    @property
    def num_items(self) -> int:
        return len(self.database.items)

    def rng_for(self, check_name: str) -> np.random.Generator:
        return np.random.default_rng(
            [self.case_seed, zlib.crc32(check_name.encode("utf-8"))]
        )

    def drp(self) -> DRPResult:
        if self._drp is None:
            self._drp = drp_allocate(self.database, self.num_channels)
        return self._drp

    def cds(self) -> CDSResult:
        if self._cds is None:
            self._cds = cds_refine(self.drp().allocation)
        return self._cds


@dataclass(frozen=True)
class CheckSpec:
    """One registered checker with its size gate.

    ``max_items`` bounds the database size the checker is willing to
    process per case (``None`` = no bound — these are the checkers that
    also run in the backend-crossover regime).  ``once`` marks
    session-level checkers (currently the process-pool oracle) that run
    a single time per fuzz run.
    """

    name: str
    run: Callable[[CaseContext], List[Violation]]
    max_items: Optional[int] = None
    once: bool = False

    def eligible(self, num_items: int) -> bool:
        return self.max_items is None or num_items <= self.max_items


def _all_checks() -> List[CheckSpec]:
    return [
        CheckSpec(
            "invariants.wellformed",
            lambda ctx: check_allocation_wellformed(ctx.drp().allocation),
        ),
        CheckSpec(
            "invariants.cost-identities",
            lambda ctx: check_cost_identities(ctx.cds().allocation),
            max_items=200,
        ),
        CheckSpec(
            "invariants.move-delta",
            lambda ctx: check_move_delta(
                ctx.drp().allocation,
                delta_fn=ctx.delta_fn,
                rng=ctx.rng_for("invariants.move-delta"),
            ),
            max_items=600,
        ),
        CheckSpec(
            "invariants.prefix-sums",
            lambda ctx: check_prefix_sums(
                ctx.database.sorted_by_benefit_ratio(),
                rng=ctx.rng_for("invariants.prefix-sums"),
            ),
        ),
        CheckSpec(
            "invariants.lower-bounds",
            lambda ctx: check_lower_bounds(
                ctx.database, ctx.num_channels
            ),
            max_items=200,
        ),
        CheckSpec(
            "metamorphic.permutation",
            lambda ctx: relation_permutation(
                ctx.cds().allocation, ctx.rng_for("metamorphic.permutation")
            ),
        ),
        CheckSpec(
            "metamorphic.size-scaling",
            lambda ctx: relation_size_scaling(
                ctx.database, ctx.num_channels
            ),
            max_items=600,
        ),
        CheckSpec(
            "metamorphic.frequency-renormalization",
            lambda ctx: relation_frequency_renormalization(
                ctx.database, ctx.num_channels
            ),
            max_items=600,
        ),
        CheckSpec(
            "metamorphic.monotone-channels",
            lambda ctx: relation_monotone_channels(ctx.database),
            max_items=200,
        ),
        CheckSpec(
            "metamorphic.merge-split",
            lambda ctx: relation_merge_split(
                ctx.cds().allocation, ctx.rng_for("metamorphic.merge-split")
            ),
        ),
        CheckSpec(
            "oracle.drp-backends",
            lambda ctx: oracle_drp_backends(ctx.database, ctx.num_channels),
        ),
        CheckSpec(
            "oracle.cds-backends",
            lambda ctx: oracle_cds_backends(ctx.database, ctx.num_channels),
            max_items=120,
        ),
        CheckSpec(
            "oracle.cds-scan-modes",
            lambda ctx: oracle_cds_scan_modes(
                ctx.database, ctx.num_channels
            ),
            max_items=120,
        ),
        CheckSpec(
            "oracle.dp-methods",
            lambda ctx: oracle_dp_methods(ctx.database, ctx.num_channels),
            max_items=120,
        ),
        CheckSpec(
            "oracle.database-construction",
            lambda ctx: oracle_database_construction(ctx.database),
        ),
        CheckSpec(
            "oracle.simulators",
            lambda ctx: oracle_simulators(
                ctx.cds().allocation,
                num_requests=300,
                seed=ctx.case_seed % (2 ** 31),
            ),
            max_items=48,
        ),
        CheckSpec(
            "oracle.serial-parallel",
            lambda ctx: oracle_serial_parallel(),
            once=True,
        ),
        CheckSpec(
            "oracle.shard-layouts",
            lambda ctx: oracle_shard_layouts(),
            once=True,
        ),
        CheckSpec(
            "oracle.warm-cold",
            lambda ctx: oracle_warm_cold(
                ctx.database,
                ctx.num_channels,
                rng=ctx.rng_for("oracle.warm-cold"),
            ),
            max_items=160,
        ),
    ]


def available_checks() -> List[CheckSpec]:
    """The full checker registry, in execution order."""
    return _all_checks()


# ---------------------------------------------------------------------------
# Case generation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FuzzCase:
    """Parameters of one generated case (before database synthesis)."""

    index: int
    num_items: int
    num_channels: int
    skewness: float
    diversity: float
    case_seed: int


def _generate_case(rng: np.random.Generator, index: int) -> FuzzCase:
    regime = rng.random()
    if regime < 0.68:
        num_items = int(rng.integers(4, 25))
    elif regime < 0.90:
        num_items = int(rng.integers(30, 161))
    elif regime < 0.96:
        low = AUTO_BACKEND_CROSSOVER - 6
        high = AUTO_BACKEND_CROSSOVER + 7
        num_items = int(rng.integers(low, high))
    else:
        # Large-N smoke: only the uncapped checkers run here, keeping
        # the band seconds-scale while still exercising the SoA paths
        # at sizes where object churn or O(N²) slips would show.
        num_items = int(rng.integers(1200, 3001))
    num_channels = int(rng.integers(2, min(8, num_items) + 1))
    return FuzzCase(
        index=index,
        num_items=num_items,
        num_channels=num_channels,
        skewness=round(float(rng.uniform(0.2, 1.3)), 3),
        diversity=round(float(rng.uniform(0.2, 2.5)), 3),
        case_seed=int(rng.integers(0, 2 ** 31 - 1)),
    )


def _materialize(case: FuzzCase) -> BroadcastDatabase:
    spec = WorkloadSpec(
        num_items=case.num_items,
        skewness=case.skewness,
        diversity=case.diversity,
        seed=case.case_seed,
    )
    return generate_database(spec)


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------

Predicate = Callable[[Sequence[DataItem], int], bool]


def shrink_case(
    items: Sequence[DataItem],
    num_channels: int,
    predicate: Predicate,
    *,
    budget: int = _SHRINK_BUDGET,
) -> Tuple[List[DataItem], int]:
    """Greedy ddmin-style minimisation of a failing case.

    Repeatedly drops contiguous chunks of items (chunk size halving
    from ``n/2`` down to 1) and lowers the channel count, keeping each
    reduction only while ``predicate(candidate_items, k)`` still
    reports the failure.  ``predicate`` must be deterministic; the
    shrinker never evaluates it more than ``budget`` times.
    """
    current = list(items)
    channels = num_channels
    evaluations = 0

    def holds(candidate: Sequence[DataItem], k: int) -> bool:
        nonlocal evaluations
        if evaluations >= budget:
            return False
        evaluations += 1
        try:
            return bool(predicate(candidate, k))
        except ReproError:
            return False

    progress = True
    while progress and evaluations < budget:
        progress = False
        chunk = max(1, len(current) // 2)
        while chunk >= 1:
            start = 0
            while start < len(current):
                candidate = current[:start] + current[start + chunk:]
                if len(candidate) >= max(2, channels) and holds(
                    candidate, channels
                ):
                    current = candidate
                    progress = True
                else:
                    start += chunk
            chunk //= 2
        while (
            channels > 2
            and len(current) >= channels - 1
            and holds(current, channels - 1)
        ):
            channels -= 1
            progress = True
    return current, channels


# ---------------------------------------------------------------------------
# Failure serialization / replay
# ---------------------------------------------------------------------------

@dataclass
class FuzzFailure:
    """A shrunk, serialized invariant violation."""

    check: str
    case: FuzzCase
    items: List[DataItem]
    num_channels: int
    violations: List[Violation]
    injected: Optional[str] = None
    path: Optional[Path] = None

    @property
    def num_items(self) -> int:
        return len(self.items)


def serialize_failure(failure: FuzzFailure, directory: Union[str, Path]) -> Path:
    """Write one failure as JSON; returns the file path.

    The file is self-contained: raw item triples (id, frequency, size —
    deliberately *not* renormalised, so the payload reproduces the
    failing floats bit-for-bit), channel count, seeds, the violations
    observed on the shrunk case, and the injected-bug name if any.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = f"{failure.check.replace('.', '-')}-seed{failure.case.case_seed}"
    path = directory / f"{stem}.json"
    payload = {
        "schema": FAILURE_SCHEMA,
        "check": failure.check,
        "injected": failure.injected,
        "num_channels": failure.num_channels,
        "case": {
            "index": failure.case.index,
            "num_items": failure.case.num_items,
            "num_channels": failure.case.num_channels,
            "skewness": failure.case.skewness,
            "diversity": failure.case.diversity,
            "case_seed": failure.case.case_seed,
        },
        "items": [
            [item.item_id, item.frequency, item.size]
            for item in failure.items
        ],
        "violations": [violation.to_dict() for violation in failure.violations],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    failure.path = path
    return path


@dataclass(frozen=True)
class LoadedFailure:
    """A deserialized failure file, ready to replay."""

    check: str
    database: BroadcastDatabase
    num_channels: int
    case_seed: int
    injected: Optional[str]
    violations: List[Dict[str, object]]
    path: Path


def load_failure(path: Union[str, Path]) -> LoadedFailure:
    """Parse a ``verify_failures/*.json`` file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise VerificationError(f"cannot read failure file {path}: {error}")
    if payload.get("schema") != FAILURE_SCHEMA:
        raise VerificationError(
            f"{path} has schema {payload.get('schema')!r}, "
            f"expected {FAILURE_SCHEMA!r}"
        )
    items = [
        DataItem(item_id, frequency=frequency, size=size)
        for item_id, frequency, size in payload["items"]
    ]
    database = BroadcastDatabase(items, require_normalized=False)
    return LoadedFailure(
        check=payload["check"],
        database=database,
        num_channels=int(payload["num_channels"]),
        case_seed=int(payload["case"]["case_seed"]),
        injected=payload.get("injected"),
        violations=list(payload.get("violations", [])),
        path=path,
    )


def replay_failure(path: Union[str, Path]) -> List[Violation]:
    """Re-run a serialized failure's checker; returns fresh violations.

    A failure recorded with an injected bug re-applies the same
    injection, so the replay reproduces the historical defect; a failure
    recorded against production code replays the production checker —
    once the underlying bug is fixed the replay returns ``[]`` and the
    file serves as a permanent regression test.
    """
    loaded = load_failure(path)
    spec = _find_check(loaded.check)
    delta_fn = move_delta
    if loaded.injected is not None:
        try:
            delta_fn = INJECTABLE_BUGS[loaded.injected]
        except KeyError:
            raise VerificationError(
                f"{loaded.path} references unknown injected bug "
                f"{loaded.injected!r}"
            )
    context = CaseContext(
        loaded.database,
        loaded.num_channels,
        loaded.case_seed,
        delta_fn=delta_fn,
    )
    return spec.run(context)


def _find_check(name: str) -> CheckSpec:
    for spec in _all_checks():
        if spec.name == name:
            return spec
    known = ", ".join(sorted(spec.name for spec in _all_checks()))
    raise VerificationError(f"unknown check {name!r} (known: {known})")


# ---------------------------------------------------------------------------
# The fuzz loop
# ---------------------------------------------------------------------------

@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` session."""

    seed: int
    budget: int
    cases: int = 0
    checks_run: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    injected: Optional[str] = None

    @property
    def clean(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "cases": self.cases,
            "injected": self.injected,
            "clean": self.clean,
            "checks_run": dict(sorted(self.checks_run.items())),
            "failures": [
                {
                    "check": failure.check,
                    "num_items": failure.num_items,
                    "num_channels": failure.num_channels,
                    "case_seed": failure.case.case_seed,
                    "path": str(failure.path) if failure.path else None,
                    "violations": len(failure.violations),
                }
                for failure in self.failures
            ],
            "elapsed_seconds": self.elapsed_seconds,
        }


def _select_checks(names: Optional[Sequence[str]]) -> List[CheckSpec]:
    specs = _all_checks()
    if not names:
        return specs
    by_name = {spec.name: spec for spec in specs}
    selected = []
    for name in names:
        if name not in by_name:
            known = ", ".join(sorted(by_name))
            raise VerificationError(f"unknown check {name!r} (known: {known})")
        selected.append(by_name[name])
    return selected


def run_fuzz(
    *,
    seed: int = 0,
    budget: int = 200,
    failures_dir: Union[str, Path] = DEFAULT_FAILURES_DIR,
    checks: Optional[Sequence[str]] = None,
    inject: Optional[str] = None,
    serialize: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run ``budget`` seeded cases through every (selected) checker.

    A checker that fails is shrunk and (with ``serialize=True``)
    written to ``failures_dir``, then retired for the rest of the
    session — one minimal repro per defect beats two hundred copies.
    Metrics counters bumped when enabled: ``verify.cases``,
    ``verify.checks`` (labelled by check), ``verify.violations`` and
    ``verify.failures``.
    """
    if budget < 1:
        raise VerificationError(f"budget must be >= 1, got {budget}")
    delta_fn = move_delta
    if inject is not None:
        try:
            delta_fn = INJECTABLE_BUGS[inject]
        except KeyError:
            known = ", ".join(sorted(INJECTABLE_BUGS))
            raise VerificationError(
                f"unknown injectable bug {inject!r} (known: {known})"
            )
    specs = _select_checks(checks)

    report = FuzzReport(seed=seed, budget=budget, injected=inject)
    rng = np.random.default_rng(seed)
    registry = obs.get_metrics()
    started = time.perf_counter()
    ran_once: set = set()
    failed_checks: set = set()

    with obs.span("verify.fuzz", seed=seed, budget=budget, injected=inject):
        for index in range(budget):
            case = _generate_case(rng, index)
            database = _materialize(case)
            context = CaseContext(
                database,
                case.num_channels,
                case.case_seed,
                delta_fn=delta_fn,
            )
            report.cases += 1
            if registry.enabled:
                registry.counter("verify.cases").inc()
            with obs.span(
                "verify.case",
                index=index,
                items=case.num_items,
                channels=case.num_channels,
                case_seed=case.case_seed,
            ):
                for spec in specs:
                    if spec.name in failed_checks:
                        continue
                    if spec.once and spec.name in ran_once:
                        continue
                    if not spec.eligible(case.num_items):
                        continue
                    ran_once.add(spec.name)
                    violations = spec.run(context)
                    report.checks_run[spec.name] = (
                        report.checks_run.get(spec.name, 0) + 1
                    )
                    if registry.enabled:
                        registry.counter(
                            "verify.checks", check=spec.name
                        ).inc()
                    if not violations:
                        continue
                    failed_checks.add(spec.name)
                    if registry.enabled:
                        registry.counter("verify.violations").inc(
                            len(violations)
                        )
                        registry.counter("verify.failures").inc()
                    failure = _shrink_and_record(
                        spec, case, context, violations, inject
                    )
                    if serialize:
                        serialize_failure(failure, failures_dir)
                    report.failures.append(failure)
                    if progress is not None:
                        progress(
                            f"[verify] {spec.name} FAILED on case "
                            f"{index} (seed {case.case_seed}); shrunk to "
                            f"{failure.num_items} item(s)"
                        )
            if progress is not None and (index + 1) % 50 == 0:
                progress(
                    f"[verify] {index + 1}/{budget} cases, "
                    f"{len(report.failures)} failure(s)"
                )
    report.elapsed_seconds = time.perf_counter() - started
    return report


def _shrink_and_record(
    spec: CheckSpec,
    case: FuzzCase,
    context: CaseContext,
    violations: List[Violation],
    inject: Optional[str],
) -> FuzzFailure:
    """Shrink a failing case and package it as a :class:`FuzzFailure`."""

    def predicate(items: Sequence[DataItem], num_channels: int) -> bool:
        if num_channels > len(items):
            return False
        database = BroadcastDatabase(list(items), require_normalized=False)
        candidate = CaseContext(
            database,
            num_channels,
            case.case_seed,
            delta_fn=context.delta_fn,
        )
        return bool(spec.run(candidate))

    with obs.span(
        "verify.shrink", check=spec.name, items=case.num_items
    ):
        shrunk_items, shrunk_channels = shrink_case(
            list(context.database.items), context.num_channels, predicate
        )
    final_database = BroadcastDatabase(
        list(shrunk_items), require_normalized=False
    )
    final_context = CaseContext(
        final_database,
        shrunk_channels,
        case.case_seed,
        delta_fn=context.delta_fn,
    )
    try:
        final_violations = spec.run(final_context) or violations
    except ReproError:
        final_violations = violations
    return FuzzFailure(
        check=spec.name,
        case=case,
        items=list(shrunk_items),
        num_channels=shrunk_channels,
        violations=final_violations,
        injected=inject,
    )
