"""Persistence: save and load databases, allocations and results.

A deployed broadcast server needs its profile and program to survive
restarts, and researchers need to archive the exact instances behind
reported numbers.  Formats:

* **database JSON** — items with id/frequency/size/label;
* **allocation JSON** — the database plus per-channel item-id lists, so
  an allocation file is self-contained and re-validatable on load;
* **database CSV** — interoperable flat table (``item_id,frequency,
  size,label``).

All loaders re-run the full constructor validation, so a corrupted or
hand-edited file fails loudly rather than producing a quietly-invalid
program.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Optional, Union

from repro.core.allocation import ChannelAllocation
from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.exceptions import InvalidDatabaseError

__all__ = [
    "database_to_json",
    "database_from_json",
    "save_database",
    "load_database",
    "allocation_to_json",
    "allocation_from_json",
    "save_allocation",
    "load_allocation",
    "save_database_csv",
    "load_database_csv",
]

_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Databases — JSON
# ----------------------------------------------------------------------
def database_to_json(database: BroadcastDatabase) -> str:
    """Serialise a database to a JSON string."""
    payload = {
        "format": "repro-database",
        "version": _FORMAT_VERSION,
        "items": [
            {
                "item_id": item.item_id,
                "frequency": item.frequency,
                "size": item.size,
                "label": item.label,
            }
            for item in database.items
        ],
    }
    return json.dumps(payload, indent=2)


def database_from_json(text: str) -> BroadcastDatabase:
    """Parse a database from :func:`database_to_json` output."""
    payload = _parse(text, expected="repro-database")
    items = [
        DataItem(
            item_id=entry["item_id"],
            frequency=entry["frequency"],
            size=entry["size"],
            label=entry.get("label"),
        )
        for entry in payload["items"]
    ]
    return BroadcastDatabase(items)


def save_database(
    database: BroadcastDatabase, path: Union[str, Path]
) -> None:
    Path(path).write_text(database_to_json(database))


def load_database(path: Union[str, Path]) -> BroadcastDatabase:
    return database_from_json(Path(path).read_text())


# ----------------------------------------------------------------------
# Allocations — JSON (self-contained: embeds the database)
# ----------------------------------------------------------------------
def allocation_to_json(allocation: ChannelAllocation) -> str:
    """Serialise an allocation (with its database) to JSON."""
    payload = {
        "format": "repro-allocation",
        "version": _FORMAT_VERSION,
        "database": json.loads(database_to_json(allocation.database)),
        "channels": allocation.as_id_lists(),
    }
    return json.dumps(payload, indent=2)


def allocation_from_json(text: str) -> ChannelAllocation:
    """Parse and re-validate an allocation from JSON."""
    payload = _parse(text, expected="repro-allocation")
    database = database_from_json(json.dumps(payload["database"]))
    return ChannelAllocation.from_id_lists(database, payload["channels"])


def save_allocation(
    allocation: ChannelAllocation, path: Union[str, Path]
) -> None:
    Path(path).write_text(allocation_to_json(allocation))


def load_allocation(path: Union[str, Path]) -> ChannelAllocation:
    return allocation_from_json(Path(path).read_text())


# ----------------------------------------------------------------------
# Databases — CSV
# ----------------------------------------------------------------------
def save_database_csv(
    database: BroadcastDatabase, path: Union[str, Path]
) -> None:
    """Write a flat ``item_id,frequency,size,label`` table."""
    with Path(path).open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["item_id", "frequency", "size", "label"])
        for item in database.items:
            writer.writerow(
                [item.item_id, item.frequency, item.size, item.label or ""]
            )


def load_database_csv(path: Union[str, Path]) -> BroadcastDatabase:
    """Read a database from :func:`save_database_csv` output."""
    items: List[DataItem] = []
    with Path(path).open(newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"item_id", "frequency", "size"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise InvalidDatabaseError(
                f"CSV must have columns {sorted(required)}, got "
                f"{reader.fieldnames}"
            )
        for row in reader:
            label: Optional[str] = row.get("label") or None
            try:
                frequency = float(row["frequency"])
                size = float(row["size"])
            except (TypeError, ValueError) as error:
                raise InvalidDatabaseError(
                    f"non-numeric frequency/size in row {row!r}"
                ) from error
            items.append(
                DataItem(
                    item_id=row["item_id"],
                    frequency=frequency,
                    size=size,
                    label=label,
                )
            )
    return BroadcastDatabase(items)


def _parse(text: str, *, expected: str) -> dict:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise InvalidDatabaseError(f"invalid JSON: {error}") from error
    if not isinstance(payload, dict) or payload.get("format") != expected:
        raise InvalidDatabaseError(
            f"expected a {expected!r} document, got "
            f"{payload.get('format') if isinstance(payload, dict) else type(payload).__name__!r}"
        )
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise InvalidDatabaseError(
            f"unsupported format version {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    return payload
