"""Algorithm DRP — Dimension Reduction Partitioning (paper, Section 3.1).

DRP generates a rough channel allocation by top-down group splitting:

1. sort all items by benefit ratio ``br = f / z`` in descending order;
2. start from a single group holding the whole database;
3. repeatedly remove a group from a max priority queue, split it at the
   optimal point (Procedure ``Partition``), and re-insert the two halves;
4. stop when ``K`` groups exist.

The two-dimensional grouping problem is thereby reduced to repeated
one-dimensional partitioning.  Complexity ``K·(O(K log K) + O(N))``
(paper, Lemma 1): each of the K−1 iterations pays one heap operation and
one linear split scan.

Split-selection policy
----------------------
The paper's algorithm listing keys the priority queue on group *cost*
(``ReturnMax`` yields the group with maximal :math:`F_i Z_i`).  However,
the paper's own worked example deviates from that rule: in the final
iteration of Table 3 the example splits the group with cost 7.02 while a
group with cost 7.26 exists.  The example *is* consistent with keying on
the **cost reduction** achieved by the group's optimal split
(reductions 3.36 vs 3.23 at that step).  Both policies are implemented:

* ``"max-cost"`` — the algorithm listing (default);
* ``"max-reduction"`` — the policy the worked example actually follows,
  and the one the paper-example golden tests use.

On random workloads the two differ only marginally (see the ablation
benchmark ``bench_ablation_drp_policy``).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.core import kernels
from repro.core.allocation import ChannelAllocation
from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.core.partition import PrefixSums, best_split_in
from repro.exceptions import InfeasibleProblemError

__all__ = [
    "DRPSnapshot",
    "DRPResult",
    "drp_allocate",
    "SPLIT_POLICIES",
    "AUTO_BACKEND_CROSSOVER",
]

#: Recognised split-selection policies (see module docstring).
SPLIT_POLICIES = ("max-cost", "max-reduction")

#: Below this catalogue size, ``backend="auto"`` resolves to the scalar
#: split scan: per-call numpy dispatch overhead swallows the
#: vectorization win on short ranges (BENCH_core.json measured 1.04× at
#: N=100 when "auto" meant "always numpy").  An explicit
#: ``backend="numpy"`` request is still honoured at any size.
AUTO_BACKEND_CROSSOVER = 512


@dataclass(frozen=True)
class DRPSnapshot:
    """State of DRP after one iteration (mirrors the paper's Table 3).

    Attributes
    ----------
    iteration:
        0 for the initial state, then 1, 2, ... per split performed.
    groups:
        Item-id tuples of every current group, ordered by position in
        the benefit-ratio order.
    costs:
        Cost :math:`F_i Z_i` of each group, aligned with ``groups``.
    split_group:
        Index (within ``groups``) of the group that the *next* iteration
        will split, or ``None`` when the algorithm has terminated.
    """

    iteration: int
    groups: Tuple[Tuple[str, ...], ...]
    costs: Tuple[float, ...]
    split_group: Optional[int]


@dataclass
class DRPResult:
    """Outcome of :func:`drp_allocate`.

    Attributes
    ----------
    allocation:
        The resulting K-channel allocation.  Channels are ordered by the
        benefit-ratio rank of their first item (highest-``br`` group
        first), so channel 0 carries the "hottest, smallest" items.
    cost:
        Total cost :math:`\\sum F_i Z_i` of the allocation.
    iterations:
        Number of split operations performed (always ``K - 1``).
    snapshots:
        Per-iteration state traces; populated only when ``trace=True``.
    """

    allocation: ChannelAllocation
    cost: float
    iterations: int
    snapshots: List[DRPSnapshot] = field(default_factory=list)
    #: Work counters (always collected — they are O(K) bookkeeping):
    #: split-scan evaluations, heap pushes and heap pops performed.
    splits_evaluated: int = 0
    heap_pushes: int = 0
    heap_pops: int = 0
    #: Total cost after the initial grouping and after each split —
    #: the paper's Table 3 cost column as a number series.  Length is
    #: ``iterations + 1`` and the series is non-increasing whenever a
    #: split cannot raise the cost (always true for optimal splits).
    cost_trajectory: Tuple[float, ...] = ()
    #: The concrete split-scan implementation that ran: ``"python"`` or
    #: ``"numpy"``.  ``backend="auto"`` resolves by catalogue size (see
    #: :data:`AUTO_BACKEND_CROSSOVER`), so callers and tests can pin the
    #: resolution here.
    resolved_backend: str = ""


def drp_allocate(
    database: BroadcastDatabase,
    num_channels: int,
    *,
    split_policy: str = "max-cost",
    trace: bool = False,
    presorted_items: Optional[Sequence[DataItem]] = None,
    backend: str = "auto",
) -> DRPResult:
    """Run Algorithm DRP on ``database`` for ``num_channels`` channels.

    Parameters
    ----------
    database:
        The broadcast database ``D``.
    num_channels:
        The channel count ``K``; must satisfy ``1 <= K <= N``.
    split_policy:
        ``"max-cost"`` splits the group with the largest cost (the
        paper's algorithm listing); ``"max-reduction"`` splits the group
        whose optimal split reduces the total cost the most (the policy
        the paper's worked example follows).  See the module docstring.
    trace:
        Record a :class:`DRPSnapshot` per iteration (used to reproduce
        the paper's Table 3 and for debugging).  Off by default — traces
        cost O(N) memory per iteration.
    presorted_items:
        Override the benefit-ratio order.  Intended for ablation studies
        (e.g. sorting by frequency or size instead); must be a
        permutation of the database.  Default: descending ``br`` order,
        exactly as the paper prescribes.
    backend:
        ``"python"``, ``"numpy"`` or ``"auto"`` (default) — which
        implementation of the split scan to use.  ``"auto"`` picks the
        scalar path below :data:`AUTO_BACKEND_CROSSOVER` items (numpy
        dispatch overhead dominates there) and numpy above it.  Both
        produce identical splits; the choice taken is reported in
        :attr:`DRPResult.resolved_backend`.

    Returns
    -------
    DRPResult

    Raises
    ------
    InfeasibleProblemError
        If ``num_channels`` is outside ``[1, N]`` or ``split_policy`` is
        unknown.

    Notes
    -----
    When observability is enabled (see :mod:`repro.obs`) the call emits
    a ``drp.allocate`` span carrying the work counters and the
    per-iteration cost trajectory, and bumps the ``drp.*`` counters of
    the metrics registry.  Everything is derived from bookkeeping the
    algorithm keeps anyway, so enabling tracing cannot change the
    allocation.
    """
    resolved_backend = _resolve_backend_by_size(backend, len(database))
    with obs.span(
        "drp.allocate",
        items=len(database),
        channels=num_channels,
        split_policy=split_policy,
        backend=resolved_backend,
    ) as span:
        result = _drp_allocate(
            database,
            num_channels,
            split_policy=split_policy,
            trace=trace,
            presorted_items=presorted_items,
            backend=resolved_backend,
        )
        result.resolved_backend = resolved_backend
        span.update(
            cost=result.cost,
            iterations=result.iterations,
            splits_evaluated=result.splits_evaluated,
            heap_pushes=result.heap_pushes,
            heap_pops=result.heap_pops,
            cost_trajectory=list(result.cost_trajectory),
        )
        registry = obs.get_metrics()
        if registry.enabled:
            registry.counter("drp.runs").inc()
            registry.counter("drp.iterations").inc(result.iterations)
            registry.counter("drp.splits_evaluated").inc(result.splits_evaluated)
            registry.counter("drp.heap_pushes").inc(result.heap_pushes)
            registry.counter("drp.heap_pops").inc(result.heap_pops)
    return result


def _resolve_backend_by_size(backend: str, num_items: int) -> str:
    """Resolve ``"auto"`` with the size-based crossover.

    Both backends compute identical splits, so the crossover is purely
    a latency decision: it never changes an allocation.
    """
    resolved = kernels.resolve_backend(backend)
    if (
        backend == "auto"
        and resolved == "numpy"
        and num_items < AUTO_BACKEND_CROSSOVER
    ):
        return "python"
    return resolved


def _drp_allocate(
    database: BroadcastDatabase,
    num_channels: int,
    *,
    split_policy: str,
    trace: bool,
    presorted_items: Optional[Sequence[DataItem]],
    backend: str,
) -> DRPResult:
    """The uninstrumented DRP body (see :func:`drp_allocate`)."""
    n = len(database)
    if not 1 <= num_channels <= n:
        raise InfeasibleProblemError(
            f"cannot allocate {n} item(s) to {num_channels} non-empty channels"
        )
    if split_policy not in SPLIT_POLICIES:
        raise InfeasibleProblemError(
            f"unknown split_policy {split_policy!r}; choose from {SPLIT_POLICIES}"
        )
    use_arrays = presorted_items is None and kernels.HAS_NUMPY
    if use_arrays:
        # Array-resident path: the benefit-ratio permutation and the
        # prefix sums come straight off the database's feature arrays —
        # zero DataItem objects at any catalogue size.  np.argsort with
        # a stable kind and np.cumsum reproduce the object path's order
        # and floats bit-for-bit.
        ordered: Optional[Tuple[DataItem, ...]] = None
        order = database.benefit_ratio_order()
        sums = PrefixSums.from_arrays(
            database.frequencies[order], database.sizes[order]
        )
    elif presorted_items is None:  # pragma: no cover - numpy baked in
        ordered = database.sorted_by_benefit_ratio()
        order = None
        sums = PrefixSums(ordered)
    else:
        ordered = tuple(presorted_items)
        if sorted(item.item_id for item in ordered) != sorted(database.item_ids):
            raise InfeasibleProblemError(
                "presorted_items must be a permutation of the database"
            )
        order = None
        sums = PrefixSums(ordered)

    def ids_in(start: int, stop: int) -> Tuple[str, ...]:
        if ordered is not None:
            return tuple(item.item_id for item in ordered[start:stop])
        return tuple(
            database.item_id_at(int(order[k])) for k in range(start, stop)
        )

    # The priority queue holds contiguous ranges [start, stop) of the
    # ordered sequence.  heapq is a min-heap, so priorities are negated;
    # a monotone counter breaks ties deterministically (FIFO among equal
    # priorities).  Singleton groups can never be split and are parked in
    # ``final_groups`` instead of entering the heap.
    #
    # Each heap entry carries the group's optimal split offset so every
    # group pays for exactly one split evaluation in its lifetime: the
    # "max-reduction" policy needs the split to compute the priority and
    # caches it for the pop; "max-cost" defers the evaluation to the pop
    # (a popped group is never re-pushed).  All scans run over the one
    # shared ``sums`` — no per-call slicing or PrefixSums rebuilds.
    counter = itertools.count()
    heap: List[Tuple[float, int, int, int, Optional[int]]] = []
    final_groups: List[Tuple[int, int]] = []
    splits_evaluated = 0
    heap_pushes = 0

    def push(start: int, stop: int) -> None:
        nonlocal splits_evaluated, heap_pushes
        if stop - start == 1:
            final_groups.append((start, stop))
        elif split_policy == "max-cost":
            heap_pushes += 1
            heapq.heappush(
                heap,
                (-sums.cost(start, stop), next(counter), start, stop, None),
            )
        else:
            splits_evaluated += 1
            heap_pushes += 1
            split_offset, split_cost = best_split_in(
                sums, start, stop, backend=backend
            )
            reduction = sums.cost(start, stop) - split_cost
            heapq.heappush(
                heap, (-reduction, next(counter), start, stop, split_offset)
            )

    push(0, n)
    snapshots: List[DRPSnapshot] = []
    iterations = 0
    running_cost = sums.cost(0, n)
    trajectory: List[float] = [running_cost]

    def record_snapshot(last: bool) -> None:
        ranges = sorted(
            [(start, stop) for (_, _, start, stop, _) in heap] + final_groups
        )
        groups = tuple(ids_in(start, stop) for start, stop in ranges)
        costs = tuple(sums.cost(start, stop) for start, stop in ranges)
        split_group: Optional[int] = None
        if not last and heap:
            _, _, start, stop, _ = heap[0]
            split_group = ranges.index((start, stop))
        snapshots.append(
            DRPSnapshot(
                iteration=iterations,
                groups=groups,
                costs=costs,
                split_group=split_group,
            )
        )

    while len(heap) + len(final_groups) < num_channels:
        if not heap:
            # All remaining groups are singletons; unreachable for
            # K <= N, kept as a guard against future edits.
            raise InfeasibleProblemError(
                "ran out of splittable groups before reaching K channels"
            )
        if trace:
            record_snapshot(last=False)
        _, _, start, stop, split_offset = heapq.heappop(heap)
        if split_offset is None:
            splits_evaluated += 1
            split_offset, split_cost = best_split_in(
                sums, start, stop, backend=backend
            )
        else:
            split_cost = None
        middle = start + split_offset
        if split_cost is None:
            split_cost = sums.cost(start, middle) + sums.cost(middle, stop)
        running_cost -= sums.cost(start, stop) - split_cost
        trajectory.append(running_cost)
        push(start, middle)
        push(middle, stop)
        iterations += 1
    if trace:
        record_snapshot(last=True)

    ranges = sorted(
        [(start, stop) for (_, _, start, stop, _) in heap] + final_groups
    )
    # The ranges partition the order, itself a validated permutation of
    # the database — skip the O(N) partition re-checks.
    if ordered is None:
        allocation = ChannelAllocation._from_index_groups(
            database, [order[start:stop] for start, stop in ranges]
        )
    else:
        allocation = ChannelAllocation._trusted(
            database, [ordered[start:stop] for start, stop in ranges]
        )
    total_cost = sum(sums.cost(start, stop) for start, stop in ranges)
    return DRPResult(
        allocation=allocation,
        cost=total_cost,
        iterations=iterations,
        snapshots=snapshots,
        splits_evaluated=splits_evaluated,
        heap_pushes=heap_pushes,
        heap_pops=iterations,
        cost_trajectory=tuple(trajectory),
    )
