"""Channel allocations — the output of every scheduling algorithm.

A :class:`ChannelAllocation` assigns every item of a
:class:`~repro.core.database.BroadcastDatabase` to exactly one of ``K``
broadcast channels (the disjoint item sets :math:`D_1 .. D_K` of the
paper).  The class validates the partition invariants once at
construction so that downstream consumers (cost model, simulator,
experiment harness) can trust any allocation they receive.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.exceptions import InvalidAllocationError

__all__ = ["ChannelAllocation", "ChannelStats"]


class ChannelStats:
    """Aggregate statistics of one channel's item set.

    Attributes
    ----------
    frequency:
        Aggregate access frequency :math:`F_i` (paper, Definition 3).
    size:
        Aggregate size :math:`Z_i` (paper, Definition 4).
    count:
        Number of items :math:`N_i` on the channel.
    """

    __slots__ = ("frequency", "size", "count")

    def __init__(self, frequency: float, size: float, count: int) -> None:
        self.frequency = frequency
        self.size = size
        self.count = count

    @property
    def cost(self) -> float:
        """Channel cost :math:`cost(i) = F_i \\cdot Z_i` (paper, Def. 1)."""
        return self.frequency * self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChannelStats(F={self.frequency:.6g}, Z={self.size:.6g}, "
            f"N={self.count})"
        )


class ChannelAllocation:
    """An assignment of database items to ``K`` broadcast channels.

    Parameters
    ----------
    database:
        The broadcast database being partitioned.
    channels:
        One sequence of :class:`DataItem` per channel.  Together the
        sequences must form an exact partition of the database.
    allow_empty_channels:
        The paper's formulation keeps every channel non-empty (an empty
        broadcast channel wastes bandwidth and makes :math:`W^{(i)}`
        undefined).  Pass ``True`` only for intermediate states.

    Notes
    -----
    Instances are immutable.  Algorithms that iteratively move items
    (e.g. CDS) operate on their own mutable working state and produce a
    fresh ``ChannelAllocation`` at the end.
    """

    __slots__ = ("_database", "_channels", "_channel_of", "_stats")

    def __init__(
        self,
        database: BroadcastDatabase,
        channels: Sequence[Sequence[DataItem]],
        *,
        allow_empty_channels: bool = False,
    ) -> None:
        if not channels:
            raise InvalidAllocationError("an allocation needs at least 1 channel")
        frozen: List[Tuple[DataItem, ...]] = [tuple(group) for group in channels]
        channel_of: Dict[str, int] = {}
        for index, group in enumerate(frozen):
            if not group and not allow_empty_channels:
                raise InvalidAllocationError(
                    f"channel {index} is empty; pass allow_empty_channels=True "
                    "if this is intentional"
                )
            for item in group:
                if item.item_id not in database:
                    raise InvalidAllocationError(
                        f"item {item.item_id!r} is not in the database"
                    )
                if database[item.item_id] != item:
                    raise InvalidAllocationError(
                        f"item {item.item_id!r} differs from the database copy"
                    )
                if item.item_id in channel_of:
                    raise InvalidAllocationError(
                        f"item {item.item_id!r} assigned to both channel "
                        f"{channel_of[item.item_id]} and channel {index}"
                    )
                channel_of[item.item_id] = index
        if len(channel_of) != len(database):
            missing = sorted(set(database.item_ids) - set(channel_of))
            raise InvalidAllocationError(
                f"allocation does not cover the database; missing {missing}"
            )
        self._database = database
        self._channels: Tuple[Tuple[DataItem, ...], ...] = tuple(frozen)
        self._channel_of = channel_of
        self._stats: Tuple[ChannelStats, ...] = tuple(
            ChannelStats(
                frequency=math.fsum(item.frequency for item in group),
                size=math.fsum(item.size for item in group),
                count=len(group),
            )
            for group in self._channels
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def database(self) -> BroadcastDatabase:
        return self._database

    @property
    def num_channels(self) -> int:
        """The channel count ``K``."""
        return len(self._channels)

    @property
    def channels(self) -> Tuple[Tuple[DataItem, ...], ...]:
        """Per-channel item tuples :math:`D_1 .. D_K`."""
        return self._channels

    @property
    def channel_stats(self) -> Tuple[ChannelStats, ...]:
        """Per-channel :math:`(F_i, Z_i, N_i)` aggregates."""
        return self._stats

    def channel_of(self, item_id: str) -> int:
        """Index of the channel carrying ``item_id``."""
        try:
            return self._channel_of[item_id]
        except KeyError:
            raise KeyError(f"no item {item_id!r} in this allocation") from None

    def channel_items(self, channel: int) -> Tuple[DataItem, ...]:
        return self._channels[channel]

    def as_id_lists(self) -> List[List[str]]:
        """Plain-data view: a list of item-id lists, one per channel."""
        return [[item.item_id for item in group] for group in self._channels]

    def assignment_vector(self) -> List[int]:
        """Channel index per item, in database catalogue order.

        This is exactly the chromosome encoding GOPT uses.
        """
        return [self._channel_of[item_id] for item_id in self._database.item_ids]

    def __iter__(self) -> Iterator[Tuple[DataItem, ...]]:
        return iter(self._channels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChannelAllocation):
            return NotImplemented
        # Channel order matters for broadcasting; compare groups as sets
        # of ids per channel (within-channel order does not affect cost).
        return self._database == other._database and [
            frozenset(item.item_id for item in group) for group in self._channels
        ] == [
            frozenset(item.item_id for item in group) for group in other._channels
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ", ".join(str(stat.count) for stat in self._stats)
        return f"ChannelAllocation(K={self.num_channels}, sizes=[{sizes}])"

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_id_lists(
        cls,
        database: BroadcastDatabase,
        id_lists: Iterable[Sequence[str]],
        *,
        allow_empty_channels: bool = False,
    ) -> "ChannelAllocation":
        """Build an allocation from per-channel lists of item ids."""
        return cls(
            database,
            [[database[item_id] for item_id in ids] for ids in id_lists],
            allow_empty_channels=allow_empty_channels,
        )

    @classmethod
    def rebase(
        cls,
        database: BroadcastDatabase,
        source: "ChannelAllocation | Iterable[Sequence[str]]",
    ) -> "ChannelAllocation":
        """Apply the grouping of ``source`` onto ``database``.

        ``source`` is an allocation over an *earlier profile* of the
        same catalogue (same item ids, possibly different frequencies)
        or plain per-channel id lists.  Items are looked up fresh in
        ``database`` so the returned allocation carries the current
        frequencies — this is how warm starts re-seed CDS after drift.

        Raises
        ------
        InvalidAllocationError
            If the source grouping is not an exact cover of
            ``database``'s item ids.
        """
        if isinstance(source, ChannelAllocation):
            id_lists: List[List[str]] = source.as_id_lists()
        else:
            id_lists = [list(ids) for ids in source]
        groups: List[List[DataItem]] = []
        seen: set = set()
        try:
            for ids in id_lists:
                groups.append([database[item_id] for item_id in ids])
                seen.update(ids)
        except KeyError as exc:
            raise InvalidAllocationError(
                f"cannot rebase: {exc.args[0]!r} is not in the database"
            ) from None
        if len(seen) != len(database) or len(seen) != sum(
            len(ids) for ids in id_lists
        ):
            raise InvalidAllocationError(
                f"cannot rebase: source ids do not partition the database "
                f"({len(seen)} distinct ids for {len(database)} items)"
            )
        # Every id resolved, none duplicated, the counts match — an
        # exact partition; skip the heavier item-equality re-validation.
        return cls._trusted(database, groups)

    @classmethod
    def from_assignment_vector(
        cls,
        database: BroadcastDatabase,
        assignment: Sequence[int],
        num_channels: int,
        *,
        allow_empty_channels: bool = False,
    ) -> "ChannelAllocation":
        """Build an allocation from a channel index per catalogue item."""
        if len(assignment) != len(database):
            raise InvalidAllocationError(
                f"assignment length {len(assignment)} != database size "
                f"{len(database)}"
            )
        groups: List[List[DataItem]] = [[] for _ in range(num_channels)]
        for item, channel in zip(database.items, assignment):
            if not 0 <= channel < num_channels:
                raise InvalidAllocationError(
                    f"channel index {channel} out of range [0, {num_channels})"
                )
            groups[channel].append(item)
        return cls(database, groups, allow_empty_channels=allow_empty_channels)

    def replace_channels(
        self,
        channels: Sequence[Sequence[DataItem]],
        *,
        allow_empty_channels: bool = False,
        validate: bool = True,
    ) -> "ChannelAllocation":
        """Return a new allocation over the same database.

        ``validate=False`` skips the O(N) partition checks and is
        reserved for callers that permuted the groups of an
        already-validated allocation (e.g. CDS moving items between its
        own channels): the item set provably cannot have changed.
        """
        if validate:
            return ChannelAllocation(
                self._database,
                channels,
                allow_empty_channels=allow_empty_channels,
            )
        return ChannelAllocation._trusted(self._database, channels)

    @classmethod
    def _trusted(
        cls,
        database: BroadcastDatabase,
        channels: Sequence[Sequence[DataItem]],
    ) -> "ChannelAllocation":
        """Build an allocation without partition validation.

        The caller guarantees ``channels`` is an exact partition of
        ``database`` into non-empty groups; aggregates are still
        computed.  Internal — algorithm hot paths only.
        """
        self = object.__new__(cls)
        frozen: Tuple[Tuple[DataItem, ...], ...] = tuple(
            tuple(group) for group in channels
        )
        self._database = database
        self._channels = frozen
        self._channel_of = {
            item.item_id: index
            for index, group in enumerate(frozen)
            for item in group
        }
        self._stats = tuple(
            ChannelStats(
                frequency=math.fsum(item.frequency for item in group),
                size=math.fsum(item.size for item in group),
                count=len(group),
            )
            for group in frozen
        )
        return self

    def canonical(self) -> "ChannelAllocation":
        """Return an equivalent allocation in canonical form.

        Channels are sorted by their smallest catalogue index and items
        within each channel by catalogue order.  Canonical forms let
        tests compare solutions from algorithms with different internal
        channel numbering (channel labels are interchangeable — the cost
        function is symmetric under channel permutation).
        """
        position = {item_id: i for i, item_id in enumerate(self._database.item_ids)}
        sorted_groups = [
            tuple(sorted(group, key=lambda item: position[item.item_id]))
            for group in self._channels
        ]
        sorted_groups.sort(
            key=lambda group: position[group[0].item_id] if group else len(position)
        )
        return ChannelAllocation(
            self._database,
            sorted_groups,
            allow_empty_channels=True,
        )
