"""Channel allocations — the output of every scheduling algorithm.

A :class:`ChannelAllocation` assigns every item of a
:class:`~repro.core.database.BroadcastDatabase` to exactly one of ``K``
broadcast channels (the disjoint item sets :math:`D_1 .. D_K` of the
paper).  The class validates the partition invariants once at
construction so that downstream consumers (cost model, simulator,
experiment harness) can trust any allocation they receive.

Storage model (structure of arrays)
-----------------------------------
The canonical state is the per-channel **catalogue-index groups** —
integer sequences indexing into the database's feature arrays, in
channel order.  Item tuples, the id→channel map and the per-channel
``(F_i, Z_i)`` aggregates are lazy views built on first access and
cached.  Algorithm hot paths construct allocations through the trusted
index-group constructors and read ``channel_index_groups`` /
``assignment_array`` directly, so a million-item refinement never
touches a :class:`DataItem`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.core.kernels import HAS_NUMPY, np
from repro.exceptions import InvalidAllocationError

__all__ = ["ChannelAllocation", "ChannelStats"]


class ChannelStats:
    """Aggregate statistics of one channel's item set.

    Attributes
    ----------
    frequency:
        Aggregate access frequency :math:`F_i` (paper, Definition 3).
    size:
        Aggregate size :math:`Z_i` (paper, Definition 4).
    count:
        Number of items :math:`N_i` on the channel.
    """

    __slots__ = ("frequency", "size", "count")

    def __init__(self, frequency: float, size: float, count: int) -> None:
        self.frequency = frequency
        self.size = size
        self.count = count

    @property
    def cost(self) -> float:
        """Channel cost :math:`cost(i) = F_i \\cdot Z_i` (paper, Def. 1)."""
        return self.frequency * self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChannelStats(F={self.frequency:.6g}, Z={self.size:.6g}, "
            f"N={self.count})"
        )


def _freeze_group(group):
    """Normalise one index group to its storage form (intp array)."""
    if HAS_NUMPY:
        return np.asarray(group, dtype=np.intp)
    return tuple(int(i) for i in group)  # pragma: no cover - numpy baked in


class ChannelAllocation:
    """An assignment of database items to ``K`` broadcast channels.

    Parameters
    ----------
    database:
        The broadcast database being partitioned.
    channels:
        One sequence of :class:`DataItem` per channel.  Together the
        sequences must form an exact partition of the database.
    allow_empty_channels:
        The paper's formulation keeps every channel non-empty (an empty
        broadcast channel wastes bandwidth and makes :math:`W^{(i)}`
        undefined).  Pass ``True`` only for intermediate states.

    Notes
    -----
    Instances are immutable.  Algorithms that iteratively move items
    (e.g. CDS) operate on their own mutable working state and produce a
    fresh ``ChannelAllocation`` at the end.
    """

    __slots__ = ("_database", "_groups", "_channels", "_channel_of", "_stats")

    def __init__(
        self,
        database: BroadcastDatabase,
        channels: Sequence[Sequence[DataItem]],
        *,
        allow_empty_channels: bool = False,
    ) -> None:
        if not channels:
            raise InvalidAllocationError("an allocation needs at least 1 channel")
        frozen: List[Tuple[DataItem, ...]] = [tuple(group) for group in channels]
        channel_of: Dict[str, int] = {}
        groups: List[List[int]] = []
        for index, group in enumerate(frozen):
            if not group and not allow_empty_channels:
                raise InvalidAllocationError(
                    f"channel {index} is empty; pass allow_empty_channels=True "
                    "if this is intentional"
                )
            indices: List[int] = []
            for item in group:
                if item.item_id not in database:
                    raise InvalidAllocationError(
                        f"item {item.item_id!r} is not in the database"
                    )
                if database[item.item_id] != item:
                    raise InvalidAllocationError(
                        f"item {item.item_id!r} differs from the database copy"
                    )
                if item.item_id in channel_of:
                    raise InvalidAllocationError(
                        f"item {item.item_id!r} assigned to both channel "
                        f"{channel_of[item.item_id]} and channel {index}"
                    )
                channel_of[item.item_id] = index
                indices.append(database.index_of(item.item_id))
            groups.append(indices)
        if len(channel_of) != len(database):
            missing = sorted(set(database.item_ids) - set(channel_of))
            raise InvalidAllocationError(
                f"allocation does not cover the database; missing {missing}"
            )
        self._database = database
        self._groups = tuple(_freeze_group(g) for g in groups)
        # The given objects are the channel view — identity preserved.
        self._channels: Optional[Tuple[Tuple[DataItem, ...], ...]] = tuple(frozen)
        self._channel_of: Optional[Dict[str, int]] = channel_of
        self._stats: Optional[Tuple[ChannelStats, ...]] = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def database(self) -> BroadcastDatabase:
        return self._database

    @property
    def num_channels(self) -> int:
        """The channel count ``K``."""
        return len(self._groups)

    @property
    def channel_index_groups(self):
        """Per-channel catalogue-index sequences (the canonical state).

        One intp array per channel, in channel order; item order within
        a channel is preserved.  Treat as read-only.
        """
        return self._groups

    @property
    def channels(self) -> Tuple[Tuple[DataItem, ...], ...]:
        """Per-channel item tuples :math:`D_1 .. D_K` (lazy views)."""
        if self._channels is None:
            items = self._database.items
            self._channels = tuple(
                tuple(items[int(i)] for i in group) for group in self._groups
            )
        return self._channels

    @property
    def channel_stats(self) -> Tuple[ChannelStats, ...]:
        """Per-channel :math:`(F_i, Z_i, N_i)` aggregates (lazy, cached).

        Computed straight off the database's feature arrays with exact
        ``math.fsum`` accumulation in channel item order — the same
        floats a per-item scan produces.
        """
        if self._stats is None:
            freq = self._database.frequencies
            size = self._database.sizes
            stats: List[ChannelStats] = []
            for group in self._groups:
                if len(group) == 0:
                    stats.append(ChannelStats(0.0, 0.0, 0))
                elif HAS_NUMPY:
                    stats.append(
                        ChannelStats(
                            frequency=math.fsum(freq[group].tolist()),
                            size=math.fsum(size[group].tolist()),
                            count=len(group),
                        )
                    )
                else:  # pragma: no cover - numpy baked in
                    stats.append(
                        ChannelStats(
                            frequency=math.fsum(freq[i] for i in group),
                            size=math.fsum(size[i] for i in group),
                            count=len(group),
                        )
                    )
            self._stats = tuple(stats)
        return self._stats

    def channel_of(self, item_id: str) -> int:
        """Index of the channel carrying ``item_id``."""
        if self._channel_of is None:
            database = self._database
            self._channel_of = {
                database.item_id_at(int(i)): channel
                for channel, group in enumerate(self._groups)
                for i in group
            }
        try:
            return self._channel_of[item_id]
        except KeyError:
            raise KeyError(f"no item {item_id!r} in this allocation") from None

    def channel_items(self, channel: int) -> Tuple[DataItem, ...]:
        return self.channels[channel]

    def as_id_lists(self) -> List[List[str]]:
        """Plain-data view: a list of item-id lists, one per channel."""
        database = self._database
        return [
            [database.item_id_at(int(i)) for i in group]
            for group in self._groups
        ]

    def assignment_array(self):
        """Channel index per item in catalogue order, as an intp array."""
        if not HAS_NUMPY:  # pragma: no cover - numpy baked in
            raise InvalidAllocationError("assignment_array() requires numpy")
        assignment = np.empty(len(self._database), dtype=np.intp)
        for channel, group in enumerate(self._groups):
            assignment[group] = channel
        return assignment

    def assignment_vector(self) -> List[int]:
        """Channel index per item, in database catalogue order.

        This is exactly the chromosome encoding GOPT uses.
        """
        if HAS_NUMPY:
            return self.assignment_array().tolist()
        vector = [0] * len(self._database)  # pragma: no cover - numpy baked in
        for channel, group in enumerate(self._groups):
            for i in group:
                vector[i] = channel
        return vector

    def __iter__(self) -> Iterator[Tuple[DataItem, ...]]:
        return iter(self.channels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChannelAllocation):
            return NotImplemented
        # Channel order matters for broadcasting; compare groups as sets
        # of catalogue indices per channel (within-channel order does not
        # affect cost).  Index sets are id sets once the databases match.
        return self._database == other._database and [
            frozenset(int(i) for i in group) for group in self._groups
        ] == [
            frozenset(int(i) for i in group) for group in other._groups
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ", ".join(str(len(group)) for group in self._groups)
        return f"ChannelAllocation(K={self.num_channels}, sizes=[{sizes}])"

    # ------------------------------------------------------------------
    # Pickling — ship database + index groups, drop the lazy views
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {"database": self._database, "groups": self._groups}

    def __setstate__(self, state) -> None:
        self._database = state["database"]
        self._groups = tuple(_freeze_group(g) for g in state["groups"])
        self._channels = None
        self._channel_of = None
        self._stats = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_id_lists(
        cls,
        database: BroadcastDatabase,
        id_lists: Iterable[Sequence[str]],
        *,
        allow_empty_channels: bool = False,
    ) -> "ChannelAllocation":
        """Build an allocation from per-channel lists of item ids."""
        groups: List[List[int]] = []
        channel_of: Dict[int, int] = {}
        materialized = [list(ids) for ids in id_lists]
        if not materialized:
            raise InvalidAllocationError("an allocation needs at least 1 channel")
        for channel, ids in enumerate(materialized):
            if not ids and not allow_empty_channels:
                raise InvalidAllocationError(
                    f"channel {channel} is empty; pass allow_empty_channels="
                    "True if this is intentional"
                )
            indices: List[int] = []
            for item_id in ids:
                index = database.index_of(item_id)  # KeyError on a miss
                if index in channel_of:
                    raise InvalidAllocationError(
                        f"item {item_id!r} assigned to both channel "
                        f"{channel_of[index]} and channel {channel}"
                    )
                channel_of[index] = channel
                indices.append(index)
            groups.append(indices)
        if len(channel_of) != len(database):
            missing = sorted(
                set(database.item_ids)
                - {database.item_id_at(i) for i in channel_of}
            )
            raise InvalidAllocationError(
                f"allocation does not cover the database; missing {missing}"
            )
        return cls._from_index_groups(database, groups)

    @classmethod
    def rebase(
        cls,
        database: BroadcastDatabase,
        source: "ChannelAllocation | Iterable[Sequence[str]]",
    ) -> "ChannelAllocation":
        """Apply the grouping of ``source`` onto ``database``.

        ``source`` is an allocation over an *earlier profile* of the
        same catalogue (same item ids, possibly different frequencies)
        or plain per-channel id lists.  Items are looked up fresh in
        ``database`` so the returned allocation carries the current
        frequencies — this is how warm starts re-seed CDS after drift.

        Raises
        ------
        InvalidAllocationError
            If the source grouping is not an exact cover of
            ``database``'s item ids.
        """
        if isinstance(source, ChannelAllocation):
            if source._database is database or source._database == database:
                # Same catalogue and same profile: adopt the index groups.
                return cls._from_index_groups(database, source._groups)
            id_lists: List[List[str]] = source.as_id_lists()
        else:
            id_lists = [list(ids) for ids in source]
        groups: List[List[int]] = []
        seen: set = set()
        try:
            for ids in id_lists:
                groups.append([database.index_of(item_id) for item_id in ids])
                seen.update(ids)
        except KeyError as exc:
            raise InvalidAllocationError(
                f"cannot rebase: {exc.args[0]!r} is not in the database"
            ) from None
        if len(seen) != len(database) or len(seen) != sum(
            len(ids) for ids in id_lists
        ):
            raise InvalidAllocationError(
                f"cannot rebase: source ids do not partition the database "
                f"({len(seen)} distinct ids for {len(database)} items)"
            )
        # Every id resolved, none duplicated, the counts match — an
        # exact partition; skip the heavier item-equality re-validation.
        return cls._from_index_groups(database, groups)

    def with_database(self, database: BroadcastDatabase) -> "ChannelAllocation":
        """This grouping over a same-catalogue database (trusted).

        The array-native form of :meth:`rebase` for callers that already
        know ``database`` shares the catalogue order (e.g. the
        incremental engine after a frequency patch): the index groups
        transfer verbatim, no id lookups.
        """
        if len(database) != len(self._database):
            raise InvalidAllocationError(
                f"cannot transfer: database size {len(database)} != "
                f"{len(self._database)}"
            )
        return ChannelAllocation._from_index_groups(database, self._groups)

    @classmethod
    def from_assignment_vector(
        cls,
        database: BroadcastDatabase,
        assignment: Sequence[int],
        num_channels: int,
        *,
        allow_empty_channels: bool = False,
    ) -> "ChannelAllocation":
        """Build an allocation from a channel index per catalogue item."""
        if len(assignment) != len(database):
            raise InvalidAllocationError(
                f"assignment length {len(assignment)} != database size "
                f"{len(database)}"
            )
        groups: List[List[int]] = [[] for _ in range(num_channels)]
        for index, channel in enumerate(assignment):
            channel = int(channel)
            if not 0 <= channel < num_channels:
                raise InvalidAllocationError(
                    f"channel index {channel} out of range [0, {num_channels})"
                )
            groups[channel].append(index)
        if not allow_empty_channels:
            for channel, group in enumerate(groups):
                if not group:
                    raise InvalidAllocationError(
                        f"channel {channel} is empty; pass "
                        "allow_empty_channels=True if this is intentional"
                    )
        return cls._from_index_groups(database, groups)

    def replace_channels(
        self,
        channels: Sequence[Sequence[DataItem]],
        *,
        allow_empty_channels: bool = False,
        validate: bool = True,
    ) -> "ChannelAllocation":
        """Return a new allocation over the same database.

        ``validate=False`` skips the O(N) partition checks and is
        reserved for callers that permuted the groups of an
        already-validated allocation (e.g. CDS moving items between its
        own channels): the item set provably cannot have changed.
        """
        if validate:
            return ChannelAllocation(
                self._database,
                channels,
                allow_empty_channels=allow_empty_channels,
            )
        return ChannelAllocation._trusted(self._database, channels)

    def replace_index_groups(
        self, groups: Sequence[Sequence[int]]
    ) -> "ChannelAllocation":
        """Trusted same-database rebuild from catalogue-index groups.

        The array-native sibling of ``replace_channels(validate=False)``
        — the caller guarantees ``groups`` is a permutation of the
        current partition (e.g. the SoA CDS loop's own move lists).
        """
        return ChannelAllocation._from_index_groups(self._database, groups)

    @classmethod
    def _trusted(
        cls,
        database: BroadcastDatabase,
        channels: Sequence[Sequence[DataItem]],
    ) -> "ChannelAllocation":
        """Build an allocation without partition validation.

        The caller guarantees ``channels`` is an exact partition of
        ``database`` into non-empty groups; aggregates are still
        computed (lazily).  Internal — algorithm hot paths only.
        """
        frozen: Tuple[Tuple[DataItem, ...], ...] = tuple(
            tuple(group) for group in channels
        )
        self = cls._from_index_groups(
            database,
            [
                [database.index_of(item.item_id) for item in group]
                for group in frozen
            ],
        )
        self._channels = frozen
        return self

    @classmethod
    def _from_index_groups(
        cls,
        database: BroadcastDatabase,
        groups,
    ) -> "ChannelAllocation":
        """Build an allocation from trusted catalogue-index groups.

        The zero-churn constructor every SoA hot path funnels through:
        no validation, no item objects, no id strings.  The caller
        guarantees the groups partition ``range(len(database))``.
        """
        self = object.__new__(cls)
        self._database = database
        self._groups = tuple(_freeze_group(g) for g in groups)
        self._channels = None
        self._channel_of = None
        self._stats = None
        return self

    def canonical(self) -> "ChannelAllocation":
        """Return an equivalent allocation in canonical form.

        Channels are sorted by their smallest catalogue index and items
        within each channel by catalogue order.  Canonical forms let
        tests compare solutions from algorithms with different internal
        channel numbering (channel labels are interchangeable — the cost
        function is symmetric under channel permutation).
        """
        sorted_groups = [
            sorted(int(i) for i in group) for group in self._groups
        ]
        sentinel = len(self._database)
        sorted_groups.sort(key=lambda group: group[0] if group else sentinel)
        return ChannelAllocation._from_index_groups(
            self._database, sorted_groups
        )
