"""Incremental program maintenance and the warm-start allocation engine.

A production catalogue changes constantly — items are published and
retired, popularity estimates move.  Rebuilding the program from
scratch is cheap with DRP-CDS, but even that is unnecessary when the
profile only drifted: near-optimal partitions are stable under small
frequency perturbations (the Kenyon–Schabanel–Young PTAS argument), so
re-seeding CDS from the previous allocation converges in a handful of
moves instead of a full rebuild.

Single-edit helpers (pure functions, pre-existing API):

* :func:`insert_item` — place a new item on the channel where the
  marginal cost increase (``F_g·z + Z_g·f + f·z``) is smallest;
* :func:`remove_item` — drop an item (merging channels if one empties);
* :func:`update_frequency` — replace one item's access frequency, then
  renormalise the whole profile (frequencies must keep summing to 1);

each followed by an optional CDS re-polish (on by default) so the
result is again a local optimum.

Warm-start engine (the adaptive loop / sweep machinery build on these):

* :func:`warm_start_refine` — one warm-started re-refinement with the
  regression guard: seed CDS from a previous grouping, compare the
  refined cost against a fresh rough-DRP estimate, and fall back to the
  cold DRP+CDS pipeline when the warm result regressed past the guard;
* :class:`IncrementalAllocator` — mutable engine holding the previous
  allocation plus its per-channel ``(F_i, Z_i)`` aggregates; accepts
  profile deltas (:meth:`~IncrementalAllocator.update_frequencies`,
  O(changed + K) aggregate maintenance) or whole drifted databases
  (:meth:`~IncrementalAllocator.reallocate`) and re-refines warm;
* :class:`AllocationCache` — bounded LRU of :class:`CompactAllocation`
  entries keyed by workload fingerprints, shared across epochs,
  replications and sweep cells;
* :func:`database_fingerprint` / :func:`workload_fingerprint` — the
  cache keys (sha256 over the exact profile, or over config digest +
  seed + N + K as manifests already compute).

When observability is enabled (:mod:`repro.obs`) the engine emits
``incremental.*`` spans and counters: ``incremental.cache_hits`` /
``cache_misses``, ``warm_starts`` / ``warm_moves``, ``cold_runs`` /
``cold_drp_splits`` and ``fallbacks`` (see docs/observability.md).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.core import kernels
from repro.core.allocation import ChannelAllocation
from repro.core.cds import cds_refine
from repro.core.cost import allocation_cost
from repro.core.database import BroadcastDatabase
from repro.core.drp import drp_allocate
from repro.core.item import DataItem
from repro.exceptions import (
    InfeasibleProblemError,
    InvalidAllocationError,
    InvalidDatabaseError,
)

__all__ = [
    "insert_item",
    "remove_item",
    "update_frequency",
    "DEFAULT_REGRESSION_GUARD",
    "CompactAllocation",
    "WarmStartResult",
    "warm_start_refine",
    "database_fingerprint",
    "workload_fingerprint",
    "AllocationCache",
    "IncrementalStats",
    "IncrementalAllocator",
]

#: Default regression guard: a warm-started refinement is accepted only
#: while its cost stays within ``rough DRP cost × guard``; beyond that
#: the engine falls back to the cold DRP+CDS pipeline and keeps the
#: better of the two results.  ``None`` disables the guard (and the
#: rough-DRP estimate that funds it).
DEFAULT_REGRESSION_GUARD = 1.02


def insert_item(
    allocation: ChannelAllocation,
    item: DataItem,
    *,
    repolish: bool = True,
) -> Tuple[BroadcastDatabase, ChannelAllocation]:
    """Add a new item to the catalogue and place it greedily.

    The new item's frequency is interpreted on the same scale as the
    existing profile; the returned database is renormalised so
    frequencies again sum to 1 (scaling every frequency, which rescales
    the cost function but not the relative quality of groupings).
    """
    old = allocation.database
    if item.item_id in old:
        raise InvalidDatabaseError(
            f"item {item.item_id!r} already exists; use update_frequency"
        )
    database = BroadcastDatabase(
        list(old.items) + [item], require_normalized=False
    ).normalized()
    # Greedy placement by marginal cost increase on the *old* scale —
    # renormalisation scales all frequencies equally, so the argmin is
    # unchanged.
    stats = allocation.channel_stats
    target = min(
        range(allocation.num_channels),
        key=lambda g: stats[g].frequency * item.size
        + stats[g].size * item.frequency
        + item.frequency * item.size,
    )
    groups: List[List[DataItem]] = [
        [database[member.item_id] for member in group]
        for group in allocation.channels
    ]
    groups[target].append(database[item.item_id])
    refreshed = ChannelAllocation(database, groups)
    if repolish:
        refreshed = cds_refine(refreshed).allocation
    return database, refreshed


def remove_item(
    allocation: ChannelAllocation,
    item_id: str,
    *,
    repolish: bool = True,
) -> Tuple[BroadcastDatabase, ChannelAllocation]:
    """Retire an item from the catalogue.

    If its channel empties, the channel count drops by one (an empty
    broadcast channel is a degenerate program); removing the last item
    of a single-channel program is infeasible.
    """
    old = allocation.database
    if item_id not in old:
        raise InvalidDatabaseError(f"no item {item_id!r} in the catalogue")
    remaining = [item for item in old.items if item.item_id != item_id]
    if not remaining:
        raise InfeasibleProblemError(
            "cannot remove the last item of the catalogue"
        )
    database = BroadcastDatabase(
        remaining, require_normalized=False
    ).normalized()
    groups = [
        [
            database[member.item_id]
            for member in group
            if member.item_id != item_id
        ]
        for group in allocation.channels
    ]
    groups = [group for group in groups if group]
    refreshed = ChannelAllocation(database, groups)
    if repolish:
        refreshed = cds_refine(refreshed).allocation
    return database, refreshed


def update_frequency(
    allocation: ChannelAllocation,
    item_id: str,
    frequency: float,
    *,
    repolish: bool = True,
) -> Tuple[BroadcastDatabase, ChannelAllocation]:
    """Replace one item's access frequency (then renormalise).

    The item keeps its channel initially; the optional CDS pass decides
    whether the new weight justifies moving it (or others).
    """
    old = allocation.database
    if item_id not in old:
        raise InvalidDatabaseError(f"no item {item_id!r} in the catalogue")
    if not frequency > 0:
        raise InvalidDatabaseError(
            f"frequency must be positive, got {frequency!r}"
        )
    updated = [
        DataItem(
            item.item_id,
            frequency if item.item_id == item_id else item.frequency,
            item.size,
            label=item.label,
        )
        for item in old.items
    ]
    database = BroadcastDatabase(
        updated, require_normalized=False
    ).normalized()
    groups = [
        [database[member.item_id] for member in group]
        for group in allocation.channels
    ]
    refreshed = ChannelAllocation(database, groups)
    if repolish:
        refreshed = cds_refine(refreshed).allocation
    return database, refreshed


# ----------------------------------------------------------------------
# Warm-start engine
# ----------------------------------------------------------------------
def _bump(name: str, amount: int = 1) -> None:
    """Increment an ``incremental.*`` counter when metrics are on."""
    registry = obs.get_metrics()
    if registry.enabled:
        registry.counter(name).inc(amount)


@dataclass(frozen=True)
class CompactAllocation:
    """A channel allocation as a compact item-id→channel vector.

    This is the form allocations take when cached or shipped across
    process boundaries (sweep workers receive their warm seeds as one
    of these): item ids in catalogue order plus one channel index per
    item — no :class:`DataItem` objects, no frequencies.  Rebuild a
    full allocation against any database over the same catalogue with
    :meth:`to_allocation`.
    """

    item_ids: Tuple[str, ...]
    assignment: Tuple[int, ...]
    num_channels: int
    cost: float

    @classmethod
    def from_allocation(
        cls, allocation: ChannelAllocation, *, cost: Optional[float] = None
    ) -> "CompactAllocation":
        return cls(
            item_ids=tuple(allocation.database.item_ids),
            assignment=tuple(allocation.assignment_vector()),
            num_channels=allocation.num_channels,
            cost=allocation_cost(allocation) if cost is None else cost,
        )

    def to_id_lists(self) -> List[List[str]]:
        """Per-channel item-id lists (the :func:`cds_refine` seed form)."""
        groups: List[List[str]] = [[] for _ in range(self.num_channels)]
        for item_id, channel in zip(self.item_ids, self.assignment):
            groups[channel].append(item_id)
        return groups

    def to_allocation(self, database: BroadcastDatabase) -> ChannelAllocation:
        """Rebase this grouping onto ``database`` (same catalogue ids)."""
        return ChannelAllocation.rebase(database, self.to_id_lists())

    def compatible_with(
        self, database: BroadcastDatabase, num_channels: int
    ) -> bool:
        """True when this grouping can seed a warm start for the given
        problem: same channel count and the same item-id set."""
        if self.num_channels != num_channels:
            return False
        if len(self.item_ids) != len(database):
            return False
        return all(item_id in database for item_id in self.item_ids)


@dataclass
class WarmStartResult:
    """Outcome of one warm-started (or guarded-cold) re-refinement.

    ``mode`` is ``"warm"`` (seeded CDS accepted), ``"fallback"`` (the
    regression guard tripped; the better of warm and cold was kept),
    ``"cold"`` (no usable seed — full DRP+CDS ran), or ``"cache"``
    (exact fingerprint hit; no search at all).
    """

    allocation: ChannelAllocation
    cost: float
    mode: str
    warm_moves: int = 0
    cold_moves: int = 0
    drp_splits: int = 0
    warm_cost: Optional[float] = None
    cold_estimate: Optional[float] = None

    @property
    def used_warm_result(self) -> bool:
        return self.mode in ("warm", "cache")


def _seed_id_lists(
    initial: Union[
        ChannelAllocation, CompactAllocation, Iterable[Sequence[str]]
    ],
) -> List[List[str]]:
    if isinstance(initial, ChannelAllocation):
        return initial.as_id_lists()
    if isinstance(initial, CompactAllocation):
        return initial.to_id_lists()
    return [list(ids) for ids in initial]


def _seed_compatible(
    id_lists: Sequence[Sequence[str]],
    database: BroadcastDatabase,
    num_channels: int,
) -> bool:
    if len(id_lists) != num_channels:
        return False
    total = sum(len(ids) for ids in id_lists)
    if total != len(database):
        return False
    return all(
        item_id in database for ids in id_lists for item_id in ids
    )


def _cold_pipeline(
    database: BroadcastDatabase,
    num_channels: int,
    *,
    max_iterations: Optional[int],
    backend: str,
    scan: str = "auto",
) -> WarmStartResult:
    rough = drp_allocate(database, num_channels, backend=backend)
    refined = cds_refine(
        rough.allocation,
        max_iterations=max_iterations,
        backend=backend,
        scan=scan,
    )
    return WarmStartResult(
        allocation=refined.allocation,
        cost=refined.cost,
        mode="cold",
        cold_moves=refined.iterations,
        drp_splits=rough.splits_evaluated,
        cold_estimate=rough.cost,
    )


def warm_start_refine(
    database: BroadcastDatabase,
    num_channels: int,
    initial: Union[
        ChannelAllocation, CompactAllocation, Iterable[Sequence[str]], None
    ],
    *,
    regression_guard: Optional[float] = DEFAULT_REGRESSION_GUARD,
    max_iterations: Optional[int] = None,
    backend: str = "auto",
    scan: str = "auto",
) -> WarmStartResult:
    """Re-refine ``database`` warm-starting from a previous grouping.

    The seeded CDS pass early-exits as soon as no improving move exists
    (that is CDS's own convergence test — an unchanged profile costs one
    Δc scan and zero moves).  With ``regression_guard`` set, a rough DRP
    pass first provides the cold-start cost estimate; if the warm-started
    refinement lands above ``estimate × guard`` the cold pipeline runs
    from the DRP seed and the better of the two allocations wins — so a
    guarded warm start is never worse than cold beyond floating-point
    noise.  An incompatible seed (different channel count or item-id
    set) routes straight to the cold pipeline.

    ``scan`` is forwarded to every :func:`cds_refine` call —
    ``"incremental"`` composes particularly well with warm starts:
    few channels drift between epochs, so the dirty-pair index starts
    nearly converged and each of the few remaining moves re-evaluates
    only the cells it touches.

    Metrics counters bumped (when enabled): ``incremental.warm_starts``,
    ``incremental.warm_moves``, ``incremental.fallbacks``,
    ``incremental.cold_runs``, ``incremental.cold_drp_splits``.
    """
    with obs.span(
        "incremental.refine",
        items=len(database),
        channels=num_channels,
        guard=regression_guard if regression_guard is not None else 0.0,
    ) as span:
        id_lists = None if initial is None else _seed_id_lists(initial)
        if id_lists is None or not _seed_compatible(
            id_lists, database, num_channels
        ):
            result = _cold_pipeline(
                database,
                num_channels,
                max_iterations=max_iterations,
                backend=backend,
                scan=scan,
            )
            _bump("incremental.cold_runs")
            _bump("incremental.cold_drp_splits", result.drp_splits)
        elif regression_guard is None:
            seeded = ChannelAllocation.rebase(database, id_lists)
            warm = cds_refine(
                seeded,
                max_iterations=max_iterations,
                backend=backend,
                scan=scan,
            )
            result = WarmStartResult(
                allocation=warm.allocation,
                cost=warm.cost,
                mode="warm",
                warm_moves=warm.iterations,
                warm_cost=warm.cost,
            )
            _bump("incremental.warm_starts")
            _bump("incremental.warm_moves", warm.iterations)
        else:
            rough = drp_allocate(database, num_channels, backend=backend)
            warm = cds_refine(
                rough.allocation,
                initial=id_lists,
                max_iterations=max_iterations,
                backend=backend,
                scan=scan,
            )
            _bump("incremental.warm_starts")
            _bump("incremental.warm_moves", warm.iterations)
            if warm.cost <= rough.cost * regression_guard:
                result = WarmStartResult(
                    allocation=warm.allocation,
                    cost=warm.cost,
                    mode="warm",
                    warm_moves=warm.iterations,
                    drp_splits=rough.splits_evaluated,
                    warm_cost=warm.cost,
                    cold_estimate=rough.cost,
                )
            else:
                cold = cds_refine(
                    rough.allocation,
                    max_iterations=max_iterations,
                    backend=backend,
                    scan=scan,
                )
                _bump("incremental.fallbacks")
                _bump("incremental.cold_runs")
                _bump("incremental.cold_drp_splits", rough.splits_evaluated)
                if cold.cost <= warm.cost:
                    winner, winner_cost = cold.allocation, cold.cost
                else:
                    winner, winner_cost = warm.allocation, warm.cost
                result = WarmStartResult(
                    allocation=winner,
                    cost=winner_cost,
                    mode="fallback",
                    warm_moves=warm.iterations,
                    cold_moves=cold.iterations,
                    drp_splits=rough.splits_evaluated,
                    warm_cost=warm.cost,
                    cold_estimate=rough.cost,
                )
        span.update(
            mode=result.mode,
            cost=result.cost,
            warm_moves=result.warm_moves,
            cold_moves=result.cold_moves,
        )
    return result


# ----------------------------------------------------------------------
# Workload fingerprints and the allocation cache
# ----------------------------------------------------------------------
def database_fingerprint(
    database: BroadcastDatabase,
    num_channels: int,
    *,
    algorithm: Optional[str] = None,
) -> str:
    """sha256 over the exact profile: every (id, frequency, size) plus K.

    Two databases share a fingerprint iff their catalogues are
    bit-identical, so a cache hit can return the stored allocation
    outright — its cost is exact for the keyed problem.
    """
    hasher = hashlib.sha256()
    hasher.update(f"K={num_channels};alg={algorithm or ''};".encode())
    if kernels.HAS_NUMPY:
        # Array path: same bytes as the per-item loop — ``tolist()``
        # yields the identical doubles, so ``repr`` renders identically.
        for item_id, frequency, size in zip(
            database.item_ids,
            database.frequencies.tolist(),
            database.sizes.tolist(),
        ):
            hasher.update(f"{item_id}:{frequency!r}:{size!r};".encode())
    else:  # pragma: no cover - numpy baked in
        for item in database.items:
            hasher.update(
                f"{item.item_id}:{item.frequency!r}:{item.size!r};".encode()
            )
    return hasher.hexdigest()


def workload_fingerprint(
    *,
    num_items: int,
    num_channels: int,
    seed: Optional[int] = None,
    config: Any = None,
    algorithm: Optional[str] = None,
) -> str:
    """sha256 over (config digest, seed, N, K[, algorithm]).

    The derived-workload key: experiment cells regenerate their database
    deterministically from ``config.seed_for(...)``, so the tuple that
    determines the generation fully identifies the workload — the same
    identity the run manifests record via
    :func:`repro.obs.manifest.config_digest`.
    """
    from repro.obs.manifest import config_digest

    parts = [
        f"seed={seed!r}",
        f"N={num_items}",
        f"K={num_channels}",
        f"alg={algorithm or ''}",
    ]
    if config is not None:
        parts.append(f"config={config_digest(config)}")
    return hashlib.sha256(";".join(parts).encode()).hexdigest()


class AllocationCache:
    """Bounded LRU cache of :class:`CompactAllocation` entries.

    Keys are workload fingerprints (:func:`database_fingerprint` /
    :func:`workload_fingerprint`).  An exact hit returns the stored
    grouping — the adaptive loop reuses it outright when an epoch's
    believed profile recurs; sweep and replication machinery uses
    entries as warm-start seeds.  Hits and misses are tallied locally
    and on the ``incremental.cache_hits`` / ``cache_misses`` counters.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = max_entries
        self._entries: "OrderedDict[str, CompactAllocation]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[CompactAllocation]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            _bump("incremental.cache_misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        _bump("incremental.cache_hits")
        return entry

    def put(
        self,
        key: str,
        value: Union[CompactAllocation, ChannelAllocation],
        *,
        cost: Optional[float] = None,
    ) -> CompactAllocation:
        if isinstance(value, ChannelAllocation):
            value = CompactAllocation.from_allocation(value, cost=cost)
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
        return value

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


# ----------------------------------------------------------------------
# The incremental allocation engine
# ----------------------------------------------------------------------
@dataclass
class IncrementalStats:
    """Running tallies of one :class:`IncrementalAllocator`'s activity."""

    cold_runs: int = 0
    warm_runs: int = 0
    fallbacks: int = 0
    cache_hits: int = 0
    updates: int = 0
    warm_moves: int = 0
    cold_moves: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "cold_runs": self.cold_runs,
            "warm_runs": self.warm_runs,
            "fallbacks": self.fallbacks,
            "cache_hits": self.cache_hits,
            "updates": self.updates,
            "warm_moves": self.warm_moves,
            "cold_moves": self.cold_moves,
        }


class IncrementalAllocator:
    """Warm-start allocation engine with delta-maintained cost state.

    Holds the previous :class:`ChannelAllocation` together with its
    per-channel ``(F_i, Z_i)`` aggregates — the bookkeeping CDS's Δc
    formula (Eq. 4) reads — as mutable state.  Profile deltas arrive
    either as a frequency patch (:meth:`update_frequencies`, maintained
    in O(changed + K)) or as a whole drifted database
    (:meth:`reallocate`).  Either way the engine re-refines by seeding
    CDS from the previous grouping and only falls back to the full
    DRP pipeline when the regression guard trips or the problem shape
    (item-id set / channel count) changed.

    An optional :class:`AllocationCache` is consulted before any search
    — an exact profile fingerprint hit skips even the warm Δc scan.

    Not thread-safe; one engine per adaptation loop.
    """

    def __init__(
        self,
        num_channels: Optional[int] = None,
        *,
        regression_guard: Optional[float] = DEFAULT_REGRESSION_GUARD,
        max_iterations: Optional[int] = None,
        backend: str = "auto",
        scan: str = "auto",
        cache: Optional[AllocationCache] = None,
    ) -> None:
        if regression_guard is not None and regression_guard < 1.0:
            raise ValueError(
                f"regression_guard must be >= 1.0 or None, got {regression_guard}"
            )
        self._num_channels = num_channels
        self._regression_guard = regression_guard
        self._max_iterations = max_iterations
        self._backend = backend
        self._scan = scan
        self.cache = cache
        self.stats = IncrementalStats()
        self._database: Optional[BroadcastDatabase] = None
        self._allocation: Optional[ChannelAllocation] = None
        self._cost: Optional[float] = None
        self._frequency_map: Optional[Dict[str, float]] = None
        self._agg_f: List[float] = []
        self._agg_z: List[float] = []

    # -- read-only state ------------------------------------------------
    @property
    def num_channels(self) -> Optional[int]:
        return self._num_channels

    @property
    def database(self) -> Optional[BroadcastDatabase]:
        return self._database

    @property
    def allocation(self) -> Optional[ChannelAllocation]:
        return self._allocation

    @property
    def cost(self) -> Optional[float]:
        """Cost of the held allocation, from the maintained aggregates."""
        if not self._agg_f:
            return self._cost
        return sum(f * z for f, z in zip(self._agg_f, self._agg_z))

    @property
    def channel_aggregates(self) -> List[Tuple[float, float]]:
        """The maintained per-channel ``(F_i, Z_i)`` pairs."""
        return list(zip(self._agg_f, self._agg_z))

    # -- state maintenance ----------------------------------------------
    def _adopt(
        self, database: BroadcastDatabase, allocation: ChannelAllocation,
        cost: float,
    ) -> None:
        self._database = database
        self._allocation = allocation
        self._cost = cost
        self._frequency_map = None  # rebuilt lazily on the next patch
        self._agg_f = [stat.frequency for stat in allocation.channel_stats]
        self._agg_z = [stat.size for stat in allocation.channel_stats]

    def _frequencies(self) -> Dict[str, float]:
        """The held profile as an id → frequency map (lazy, cached).

        Only the frequency-patch path needs it; plain reallocate cycles
        never pay for the N-entry dict.  Built off the id/feature
        arrays, so no :class:`DataItem` objects are materialised.
        """
        if self._frequency_map is None:
            database = self._database
            if kernels.HAS_NUMPY:
                self._frequency_map = dict(
                    zip(database.item_ids, database.frequencies.tolist())
                )
            else:  # pragma: no cover - numpy baked in
                self._frequency_map = {
                    item.item_id: item.frequency for item in database.items
                }
        return self._frequency_map

    def _shape_changed(
        self, database: BroadcastDatabase, num_channels: int
    ) -> bool:
        if self._allocation is None or self._database is None:
            return True
        if num_channels != self._allocation.num_channels:
            return True
        if len(database) != len(self._database):
            return True
        return any(
            item_id not in self._database for item_id in database.item_ids
        )

    # -- entry points ---------------------------------------------------
    def reallocate(
        self,
        database: BroadcastDatabase,
        num_channels: Optional[int] = None,
    ) -> WarmStartResult:
        """(Re-)allocate for ``database``, warm when the state allows.

        The first call (or any call after N/K changed) is a cold
        DRP+CDS run that seeds the engine; subsequent calls warm-start
        from the held allocation under the regression guard.  With a
        cache attached, an exact profile fingerprint hit returns the
        cached grouping without any search.
        """
        if num_channels is None:
            num_channels = self._num_channels
        if num_channels is None:
            raise InfeasibleProblemError(
                "num_channels not set: pass it to reallocate() or the "
                "IncrementalAllocator constructor"
            )
        self._num_channels = num_channels
        with obs.span(
            "incremental.reallocate",
            items=len(database),
            channels=num_channels,
        ) as span:
            fingerprint: Optional[str] = None
            if self.cache is not None:
                fingerprint = database_fingerprint(database, num_channels)
                cached = self.cache.get(fingerprint)
                if cached is not None and cached.compatible_with(
                    database, num_channels
                ):
                    allocation = cached.to_allocation(database)
                    result = WarmStartResult(
                        allocation=allocation,
                        cost=allocation_cost(allocation),
                        mode="cache",
                    )
                    self.stats.cache_hits += 1
                    self._adopt(database, allocation, result.cost)
                    span.update(mode="cache", cost=result.cost)
                    return result
            initial = (
                None
                if self._shape_changed(database, num_channels)
                else self._allocation
            )
            result = warm_start_refine(
                database,
                num_channels,
                initial,
                regression_guard=self._regression_guard,
                max_iterations=self._max_iterations,
                backend=self._backend,
                scan=self._scan,
            )
            if result.mode == "cold":
                self.stats.cold_runs += 1
            elif result.mode == "fallback":
                self.stats.fallbacks += 1
            else:
                self.stats.warm_runs += 1
            self.stats.warm_moves += result.warm_moves
            self.stats.cold_moves += result.cold_moves
            self._adopt(database, result.allocation, result.cost)
            if self.cache is not None and fingerprint is not None:
                self.cache.put(fingerprint, result.allocation, cost=result.cost)
            span.update(mode=result.mode, cost=result.cost)
        return result

    def update_frequencies(
        self,
        changed: Mapping[str, float],
        *,
        refine: bool = True,
    ) -> WarmStartResult:
        """Apply a frequency patch to the held profile, then re-refine.

        The per-channel ``(F_i, Z_i)`` aggregates are maintained with
        one O(1) delta per changed item plus an O(K) renormalisation
        sweep — never an O(N·K) rebuild.  ``refine=False`` applies the
        bookkeeping only (the held grouping keeps its channel shape and
        the engine's :attr:`cost` reflects the new profile); the default
        re-runs the guarded warm refinement.
        """
        if self._allocation is None or self._database is None:
            raise InfeasibleProblemError(
                "no allocation held yet: call reallocate() first"
            )
        if not changed:
            result = WarmStartResult(
                allocation=self._allocation,
                cost=self.cost if self.cost is not None else 0.0,
                mode="cache",
            )
            self.stats.cache_hits += 1
            return result
        with obs.span(
            "incremental.update",
            changed=len(changed),
            items=len(self._database),
        ):
            allocation = self._allocation
            frequencies = self._frequencies()
            # O(changed) aggregate deltas on the un-normalised scale.
            for item_id, frequency in changed.items():
                if item_id not in frequencies:
                    raise InvalidDatabaseError(
                        f"no item {item_id!r} in the catalogue; use "
                        "insert_item for new items"
                    )
                if not frequency > 0:
                    raise InvalidDatabaseError(
                        f"frequency of {item_id!r} must be positive, "
                        f"got {frequency!r}"
                    )
                channel = allocation.channel_of(item_id)
                self._agg_f[channel] += frequency - frequencies[item_id]
                frequencies[item_id] = frequency
            # O(K) renormalisation: scaling every frequency by 1/total
            # scales every F_i identically (Z_i untouched).
            total = sum(self._agg_f)
            scale = 1.0 / total
            self._agg_f = [f * scale for f in self._agg_f]
            if kernels.HAS_NUMPY:
                # Array path: patch the changed entries in a copy of the
                # frequency array, scale elementwise (``x * scale`` is
                # the per-item multiply, so the floats match the object
                # path exactly) and clone the database around the new
                # array — sizes, ids and labels are shared, and no
                # DataItem is materialised.
                np = kernels.np
                current = np.array(self._database.frequencies)
                for item_id, frequency in changed.items():
                    current[self._database.index_of(item_id)] = frequency
                database = self._database.with_frequencies(
                    current * scale, require_normalized=False
                )
                refreshed = self._allocation.with_database(database)
            else:  # pragma: no cover - numpy baked in
                updated_items = [
                    DataItem(
                        item.item_id,
                        frequencies[item.item_id] * scale,
                        item.size,
                        label=item.label,
                    )
                    if item.item_id in changed or scale != 1.0
                    else item
                    for item in self._database.items
                ]
                database = BroadcastDatabase(
                    updated_items, require_normalized=False
                )
                refreshed = ChannelAllocation.rebase(
                    database, self._allocation
                )
            self._frequency_map = None
            self._database = database
            self._allocation = refreshed
            self.stats.updates += 1
        if not refine:
            cost = self.cost
            self._cost = cost
            return WarmStartResult(
                allocation=self._allocation,
                cost=cost if cost is not None else 0.0,
                mode="warm",
            )
        return self.reallocate(database, self._num_channels)
