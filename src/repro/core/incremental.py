"""Incremental program maintenance (extension).

A production catalogue changes constantly — items are published and
retired, popularity estimates move.  Rebuilding the program from
scratch is cheap with DRP-CDS, but even that is unnecessary for a
single-item change: this module maintains an existing allocation

* :func:`insert_item` — place a new item on the channel where the
  marginal cost increase (``F_g·z + Z_g·f + f·z``) is smallest;
* :func:`remove_item` — drop an item (merging channels if one empties);
* :func:`update_frequency` — replace one item's access frequency, then
  renormalise the whole profile (frequencies must keep summing to 1);

each followed by an optional CDS re-polish (on by default) so the
result is again a local optimum.  Warm-starting CDS from the edited
allocation converges in a handful of moves instead of rebuilding.

All functions are pure: they return a fresh
(:class:`~repro.core.database.BroadcastDatabase`,
:class:`~repro.core.allocation.ChannelAllocation`) pair and never touch
their inputs.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.allocation import ChannelAllocation
from repro.core.cds import cds_refine
from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.exceptions import InfeasibleProblemError, InvalidDatabaseError

__all__ = ["insert_item", "remove_item", "update_frequency"]


def insert_item(
    allocation: ChannelAllocation,
    item: DataItem,
    *,
    repolish: bool = True,
) -> Tuple[BroadcastDatabase, ChannelAllocation]:
    """Add a new item to the catalogue and place it greedily.

    The new item's frequency is interpreted on the same scale as the
    existing profile; the returned database is renormalised so
    frequencies again sum to 1 (scaling every frequency, which rescales
    the cost function but not the relative quality of groupings).
    """
    old = allocation.database
    if item.item_id in old:
        raise InvalidDatabaseError(
            f"item {item.item_id!r} already exists; use update_frequency"
        )
    database = BroadcastDatabase(
        list(old.items) + [item], require_normalized=False
    ).normalized()
    # Greedy placement by marginal cost increase on the *old* scale —
    # renormalisation scales all frequencies equally, so the argmin is
    # unchanged.
    stats = allocation.channel_stats
    target = min(
        range(allocation.num_channels),
        key=lambda g: stats[g].frequency * item.size
        + stats[g].size * item.frequency
        + item.frequency * item.size,
    )
    groups: List[List[DataItem]] = [
        [database[member.item_id] for member in group]
        for group in allocation.channels
    ]
    groups[target].append(database[item.item_id])
    refreshed = ChannelAllocation(database, groups)
    if repolish:
        refreshed = cds_refine(refreshed).allocation
    return database, refreshed


def remove_item(
    allocation: ChannelAllocation,
    item_id: str,
    *,
    repolish: bool = True,
) -> Tuple[BroadcastDatabase, ChannelAllocation]:
    """Retire an item from the catalogue.

    If its channel empties, the channel count drops by one (an empty
    broadcast channel is a degenerate program); removing the last item
    of a single-channel program is infeasible.
    """
    old = allocation.database
    if item_id not in old:
        raise InvalidDatabaseError(f"no item {item_id!r} in the catalogue")
    remaining = [item for item in old.items if item.item_id != item_id]
    if not remaining:
        raise InfeasibleProblemError(
            "cannot remove the last item of the catalogue"
        )
    database = BroadcastDatabase(
        remaining, require_normalized=False
    ).normalized()
    groups = [
        [
            database[member.item_id]
            for member in group
            if member.item_id != item_id
        ]
        for group in allocation.channels
    ]
    groups = [group for group in groups if group]
    refreshed = ChannelAllocation(database, groups)
    if repolish:
        refreshed = cds_refine(refreshed).allocation
    return database, refreshed


def update_frequency(
    allocation: ChannelAllocation,
    item_id: str,
    frequency: float,
    *,
    repolish: bool = True,
) -> Tuple[BroadcastDatabase, ChannelAllocation]:
    """Replace one item's access frequency (then renormalise).

    The item keeps its channel initially; the optional CDS pass decides
    whether the new weight justifies moving it (or others).
    """
    old = allocation.database
    if item_id not in old:
        raise InvalidDatabaseError(f"no item {item_id!r} in the catalogue")
    if not frequency > 0:
        raise InvalidDatabaseError(
            f"frequency must be positive, got {frequency!r}"
        )
    updated = [
        DataItem(
            item.item_id,
            frequency if item.item_id == item_id else item.frequency,
            item.size,
            label=item.label,
        )
        for item in old.items
    ]
    database = BroadcastDatabase(
        updated, require_normalized=False
    ).normalized()
    groups = [
        [database[member.item_id] for member in group]
        for group in allocation.channels
    ]
    refreshed = ChannelAllocation(database, groups)
    if repolish:
        refreshed = cds_refine(refreshed).allocation
    return database, refreshed
