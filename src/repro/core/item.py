"""Data items disseminated in the diverse broadcasting environment.

The paper models every broadcast object ``d_j^(i)`` with exactly two
features: an access frequency ``f_j^(i)`` (how often mobile clients
request it) and a size ``z_j^(i)``.  The *benefit ratio* ``br = f / z``
collapses the two features into one dimension; it is the quantity DRP
sorts on (paper, Section 3.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import InvalidItemError

__all__ = ["DataItem", "items_created"]

#: Monotone count of successfully constructed :class:`DataItem` objects.
#: The array-resident hot paths (SoA DRP/CDS/DP at production catalogue
#: sizes) must not materialise per-item objects; benchmarks and tests
#: take a before/after delta of :func:`items_created` to prove it.
_ITEMS_CREATED = 0


def items_created() -> int:
    """Total number of :class:`DataItem` instances created so far.

    A cheap process-global construction counter (no reset: callers
    compare deltas), incremented only for items that passed validation.
    """
    return _ITEMS_CREATED


@dataclass(frozen=True, order=False)
class DataItem:
    """A single broadcast data item.

    Parameters
    ----------
    item_id:
        Stable identifier, unique within a :class:`~repro.core.database.
        BroadcastDatabase`.  Paper items are named ``d_1 .. d_N``; any
        string works.
    frequency:
        Access frequency ``f`` of the item.  Must be positive.  Within a
        database the frequencies sum to 1, but a standalone item only
        requires ``f > 0`` so that intermediate (unnormalised) profiles
        can be built incrementally.
    size:
        Item size ``z`` in abstract size units.  Must be positive — an
        item of size zero would have an infinite benefit ratio and a
        zero download time, which the analytical model does not admit.
    label:
        Optional human-readable description (e.g. ``"weather-report"``).

    Examples
    --------
    >>> d = DataItem("d1", frequency=0.2374, size=21.18)
    >>> round(d.benefit_ratio, 4)
    0.0112
    """

    item_id: str
    frequency: float
    size: float
    label: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.item_id, str) or not self.item_id:
            raise InvalidItemError(
                f"item_id must be a non-empty string, got {self.item_id!r}"
            )
        if not _is_finite_number(self.frequency):
            raise InvalidItemError(
                f"frequency of {self.item_id!r} must be a finite number, "
                f"got {self.frequency!r}"
            )
        if not _is_finite_number(self.size):
            raise InvalidItemError(
                f"size of {self.item_id!r} must be a finite number, "
                f"got {self.size!r}"
            )
        if self.frequency <= 0.0:
            raise InvalidItemError(
                f"frequency of {self.item_id!r} must be > 0, "
                f"got {self.frequency}"
            )
        if self.size <= 0.0:
            raise InvalidItemError(
                f"size of {self.item_id!r} must be > 0, got {self.size}"
            )
        global _ITEMS_CREATED
        _ITEMS_CREATED += 1

    @property
    def benefit_ratio(self) -> float:
        """Benefit ratio ``br = f / z`` (paper, Section 3.1).

        Frequency is the *profit* of carrying the item in a short cycle,
        size is the *cost*; items with a large ratio deserve channels
        with short broadcast cycles.
        """
        return self.frequency / self.size

    @property
    def weight(self) -> float:
        """The product ``f * z`` — the item's allocation-independent
        contribution to the download term of :math:`W_b` (Eq. 2)."""
        return self.frequency * self.size

    def scaled(self, frequency_factor: float = 1.0) -> "DataItem":
        """Return a copy with the frequency multiplied by ``frequency_factor``.

        Used when renormalising a profile so frequencies sum to 1.
        """
        return DataItem(
            item_id=self.item_id,
            frequency=self.frequency * frequency_factor,
            size=self.size,
            label=self.label,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataItem({self.item_id!r}, f={self.frequency:.6g}, "
            f"z={self.size:.6g})"
        )


def _is_finite_number(value: object) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)
