"""Vectorized hot-path kernels backing the core algorithms.

The pure-Python implementations of the cost-model hot paths — CDS's
per-(item, destination) Δc scan, Procedure ``Partition``'s split scan
and the contiguous DP's candidate minimisation — are exact but slow at
production catalogue sizes (N in the tens of thousands).  This module
provides numpy equivalents that compute the *same IEEE-754 floats* as
the scalar code: every kernel applies the identical sequence of
elementwise operations the scalar loop performs, so the two backends
agree bit-for-bit and share one set of golden tests.

Backend selection
-----------------
Every public algorithm entry point (``cds_refine``, ``drp_allocate``,
``best_split_in``, ``contiguous_optimal``) accepts a
``backend="auto" | "python" | "numpy"`` keyword:

* ``"python"`` — the scalar reference implementation;
* ``"numpy"`` — the vectorized kernels in this module (raises
  :class:`~repro.exceptions.ReproError` when numpy is unavailable);
* ``"auto"`` — numpy when importable, scalar otherwise (the default).

Tie-break contract
------------------
All kernels preserve the scalar code's "first maximum / first minimum
wins" determinism: ``np.argmax`` / ``np.argmin`` return the first
occurrence of the extremum, which is exactly what the scalar strict
``>`` / ``<`` comparison loops select.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

from repro.exceptions import ReproError

try:  # numpy ships with the workload generators; degrade gracefully.
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

try:  # numba is optional everywhere; the JIT path is a pure accelerant.
    import numba

    HAS_NUMBA = True
except ImportError:
    numba = None  # type: ignore[assignment]
    HAS_NUMBA = False

__all__ = [
    "HAS_NUMPY",
    "HAS_NUMBA",
    "BACKENDS",
    "SCAN_MODES",
    "CDS_INCREMENTAL_SCAN_CROSSOVER",
    "resolve_backend",
    "resolve_scan",
    "cds_state_arrays",
    "cds_best_move",
    "cds_best_move_numpy",
    "cds_best_move_chunked",
    "CDSPairIndex",
    "best_split_range_numpy",
    "dp_window_argmin_numpy",
]

#: Recognised backend names.
BACKENDS = ("auto", "python", "numpy")

#: Recognised CDS Δc scan modes.
SCAN_MODES = ("auto", "full", "incremental")

#: ``scan="auto"`` switches to the dirty-pair incremental scan once one
#: full best-move scan costs at least this many Δc pair evaluations
#: (``N·(K−1)``).  Below it the K×K index bookkeeping costs more than
#: the rescans it saves; above it every executed move drops from
#: O(N·K) to O(N + K²) evaluations.
CDS_INCREMENTAL_SCAN_CROSSOVER = 1 << 20

#: Thread cap for the chunked cold Δc scan (numpy releases the GIL in
#: the blocked elementwise work, so threads scale on real cores and
#: degrade to the serial path on one).
CDS_SCAN_MAX_WORKERS = 8


def resolve_backend(backend: str) -> str:
    """Map a ``backend`` keyword to a concrete implementation name.

    Returns ``"python"`` or ``"numpy"``.

    Raises
    ------
    ReproError
        If ``backend`` is unknown, or ``"numpy"`` was requested but
        numpy is not importable.
    """
    if backend not in BACKENDS:
        raise ReproError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    if backend == "auto":
        return "numpy" if HAS_NUMPY else "python"
    if backend == "numpy" and not HAS_NUMPY:
        raise ReproError("backend='numpy' requested but numpy is not installed")
    return backend


def resolve_scan(
    scan: str, backend: str, num_items: int, num_channels: int
) -> str:
    """Map a CDS ``scan`` keyword to a concrete scan mode.

    Returns ``"full"`` or ``"incremental"``.  ``backend`` is the already
    *resolved* backend name: the incremental scan is array-resident and
    exists only on the numpy backend, so ``"auto"`` resolves to
    ``"full"`` for the scalar backend and ``"incremental"`` is an error
    there.  With numpy, ``"auto"`` picks the incremental scan once a
    single full best-move scan costs at least
    :data:`CDS_INCREMENTAL_SCAN_CROSSOVER` pair evaluations — both
    modes execute the bitwise-identical move sequence, so the choice is
    purely a cost trade.

    Raises
    ------
    ReproError
        If ``scan`` is unknown, or ``"incremental"`` was requested on
        the scalar backend.
    """
    if scan not in SCAN_MODES:
        raise ReproError(
            f"unknown scan mode {scan!r}; choose from {SCAN_MODES}"
        )
    if scan == "incremental" and backend != "numpy":
        raise ReproError(
            "scan='incremental' requires the numpy backend "
            f"(resolved backend is {backend!r})"
        )
    if scan == "auto":
        if (
            backend == "numpy"
            and num_channels >= 3
            and num_items * (num_channels - 1)
            >= CDS_INCREMENTAL_SCAN_CROSSOVER
        ):
            return "incremental"
        return "full"
    return scan


# ----------------------------------------------------------------------
# CDS — broadcasted Δc matrix
# ----------------------------------------------------------------------
def cds_state_arrays(channels, channel_stats):
    """Build the flat-array working state for the numpy CDS loop.

    Parameters
    ----------
    channels:
        Per-channel item sequences (the allocation's groups).
    channel_stats:
        Matching per-channel aggregates (``F_i``, ``Z_i``).

    Returns
    -------
    (items, freq, size, group_of, groups, agg_f, agg_z):
        ``items`` is the flat item table (origin-major order), ``freq``
        and ``size`` its per-item features, ``group_of[i]`` the current
        channel of item ``i``, ``groups`` per-channel lists of item
        indices (mirroring the scalar backend's mutable lists, so the
        scan order stays identical move for move), and ``agg_f`` /
        ``agg_z`` the per-channel aggregate arrays.
    """
    items = [item for group in channels for item in group]
    freq = np.array([item.frequency for item in items], dtype=np.float64)
    size = np.array([item.size for item in items], dtype=np.float64)
    group_of = np.empty(len(items), dtype=np.intp)
    groups = []
    offset = 0
    for channel, group in enumerate(channels):
        indices = list(range(offset, offset + len(group)))
        group_of[indices] = channel
        groups.append(indices)
        offset += len(group)
    agg_f = np.array([stat.frequency for stat in channel_stats], dtype=np.float64)
    agg_z = np.array([stat.size for stat in channel_stats], dtype=np.float64)
    return items, freq, size, group_of, groups, agg_f, agg_z


def cds_best_move_numpy(
    freq,
    size,
    order,
    group_of,
    agg_f,
    agg_z,
    epsilon: float,
) -> Optional[Tuple[float, int, int]]:
    """Vectorized equivalent of ``cds._best_move`` — one N×K Δc matrix.

    Evaluates Eq. (4), ``Δc = f⊗(Z_p − Z_q) + z⊗(F_p − F_q) − 2fz``,
    for every (item, destination) pair at once.  ``order`` is the flat
    item-index array in scan order (origin-major, position-minor), so
    the row-major argmax reproduces the scalar backend's tie-break
    exactly (first strict maximum in origin → position → destination
    order wins).

    Returns ``(delta, rank, destination)`` — ``rank`` indexes into
    ``order`` — or ``None`` when no move beats ``epsilon``.
    """
    f = freq[order]
    z = size[order]
    origin = group_of[order]
    origin_f = agg_f[origin]
    origin_z = agg_z[origin]
    delta = (
        f[:, None] * (origin_z[:, None] - agg_z[None, :])
        + z[:, None] * (origin_f[:, None] - agg_f[None, :])
        - (2.0 * f * z)[:, None]
    )
    # A move to the item's own channel is not a move; mask it out.
    delta[np.arange(len(order)), origin] = -np.inf
    flat = int(np.argmax(delta))
    num_channels = agg_f.shape[0]
    rank, destination = divmod(flat, num_channels)
    best = float(delta[rank, destination])
    if not best > epsilon:
        return None
    return best, rank, destination


#: Element budget for one Δc chunk (float64 block ≈ 32 MiB).  Above
#: ``N·K`` elements the full broadcast matrix would dominate peak RSS
#: (1 GiB at N=10⁶, K=128), so the scan switches to row blocks.
CDS_DELTA_CHUNK_ELEMENTS = 1 << 22


def cds_best_move_chunked(
    freq,
    size,
    order,
    group_of,
    agg_f,
    agg_z,
    epsilon: float,
    *,
    chunk_elements: int = CDS_DELTA_CHUNK_ELEMENTS,
) -> Optional[Tuple[float, int, int]]:
    """Blocked variant of :func:`cds_best_move_numpy` with bounded RSS.

    Scans the rank axis in row blocks of at most ``chunk_elements``
    matrix entries.  Each block applies the identical elementwise
    expression, and blocks combine under strict ``>``, so the global
    first-maximum tie-break (origin → position → destination) and every
    float are exactly those of the one-shot matrix.
    """
    n = len(order)
    num_channels = agg_f.shape[0]
    rows = max(1, chunk_elements // max(1, num_channels))
    best = -np.inf
    best_rank = -1
    best_destination = -1
    for start in range(0, n, rows):
        sel = order[start : start + rows]
        f = freq[sel]
        z = size[sel]
        origin = group_of[sel]
        origin_f = agg_f[origin]
        origin_z = agg_z[origin]
        delta = (
            f[:, None] * (origin_z[:, None] - agg_z[None, :])
            + z[:, None] * (origin_f[:, None] - agg_f[None, :])
            - (2.0 * f * z)[:, None]
        )
        delta[np.arange(len(sel)), origin] = -np.inf
        flat = int(np.argmax(delta))
        rank, destination = divmod(flat, num_channels)
        value = float(delta[rank, destination])
        if value > best:
            best = value
            best_rank = start + rank
            best_destination = destination
    if best_rank < 0 or not best > epsilon:
        return None
    return best, best_rank, best_destination


if HAS_NUMBA:

    @numba.njit(cache=True)
    def _cds_best_move_jit(freq, size, order, group_of, agg_f, agg_z):
        """First strict maximum of Eq. (4) over (rank, destination).

        Rank-major, destination-minor scan order — the same row-major
        order ``np.argmax`` flattens, so the tie-break matches.  The
        delta expression keeps the numpy kernel's exact association
        ``(f·(Z_p−Z_q) + z·(F_p−F_q)) − (2·f)·z`` and numba's default
        strict-IEEE mode (no fastmath, no FMA contraction) reproduces
        its floats bit-for-bit.
        """
        best = -np.inf
        best_rank = -1
        best_destination = -1
        num_channels = agg_f.shape[0]
        for rank in range(order.shape[0]):
            index = order[rank]
            f = freq[index]
            z = size[index]
            origin = group_of[index]
            origin_f = agg_f[origin]
            origin_z = agg_z[origin]
            two_fz = 2.0 * f * z
            for destination in range(num_channels):
                if destination == origin:
                    continue
                delta = (
                    f * (origin_z - agg_z[destination])
                    + z * (origin_f - agg_f[destination])
                    - two_fz
                )
                if delta > best:
                    best = delta
                    best_rank = rank
                    best_destination = destination
        return best, best_rank, best_destination

else:
    _cds_best_move_jit = None


def cds_best_move(
    freq,
    size,
    order,
    group_of,
    agg_f,
    agg_z,
    epsilon: float,
) -> Optional[Tuple[float, int, int]]:
    """Best single CDS move — dispatching Δc scan.

    Routes to the numba JIT kernel when numba is importable, to the
    blocked scan when the full ``N×K`` matrix would exceed the chunk
    budget, and to the one-shot broadcast matrix otherwise.  All three
    produce identical floats and the identical first-maximum winner, so
    the choice is purely a speed/memory trade.
    """
    if HAS_NUMBA:
        best, rank, destination = _cds_best_move_jit(
            freq, size, order, group_of, agg_f, agg_z
        )
        if rank < 0 or not best > epsilon:
            return None
        return float(best), int(rank), int(destination)
    if len(order) * agg_f.shape[0] > CDS_DELTA_CHUNK_ELEMENTS:
        return cds_best_move_chunked(
            freq, size, order, group_of, agg_f, agg_z, epsilon
        )
    return cds_best_move_numpy(
        freq, size, order, group_of, agg_f, agg_z, epsilon
    )


# ----------------------------------------------------------------------
# CDS — dirty-pair incremental best-move index
# ----------------------------------------------------------------------
class CDSPairIndex:
    """K×K best-move index over ordered channel pairs, dirty-pair updated.

    Cell ``(p, q)`` caches the best Eq. (4) delta among items of channel
    ``p`` moving to channel ``q``, together with the winning item's
    *position* in ``p``'s group list (the tie-break coordinate of the
    scalar scan).  A move ``o → d`` only changes the ``(F, Z)``
    aggregates of ``o`` and ``d``, so exactly the cells with origin or
    destination in ``{o, d}`` go stale: :meth:`apply_move` recomputes
    rows ``o`` and ``d`` (one ``|group|×K`` pass each) and columns ``o``
    and ``d`` (one ``|group|``-vector pass per other group), leaving the
    remaining ``(K−2)²`` cells untouched — their cached deltas are the
    floats a fresh full scan would recompute, because every input to
    the elementwise Δc expression (item features and both aggregates)
    is unchanged.  Per-move work drops from ``O(N·K)`` pair evaluations
    to ``O(N + K²)``.

    The index shares — does not copy — the refine loop's mutable state:
    ``groups`` (per-channel lists of catalogue indices) and the
    ``agg_f`` / ``agg_z`` aggregate arrays.  Call :meth:`apply_move`
    after the loop has executed a move and updated that state.

    Tie-break contract: :meth:`best_move` returns the same winner as
    the full scan's first strict maximum in (origin, position,
    destination) scan order.  Per cell, ``np.argmax`` over the group's
    position-ordered delta vector keeps the lowest position; across
    cells the selection minimises ``(origin, position, destination)``
    lexicographically among delta ties.

    The cold scan (:meth:`rebuild`) is chunked over item ranges — the
    same ``chunk_elements`` budget as the blocked full scan — and
    optionally fans the read-only chunk evaluations out over a thread
    pool; chunks merge left to right under strict ``>``, so the
    leftmost tie survives no matter the thread schedule.
    """

    def __init__(
        self,
        freq,
        size,
        groups: List[List[int]],
        agg_f,
        agg_z,
        *,
        workers: Optional[int] = None,
        chunk_elements: int = CDS_DELTA_CHUNK_ELEMENTS,
    ) -> None:
        self.freq = freq
        self.size = size
        # (2·f)·z per item, the exact association of the scan kernels;
        # the per-cell gathers below then read the identical floats.
        self.two_fz = 2.0 * freq * size
        self.groups = groups
        self.agg_f = agg_f
        self.agg_z = agg_z
        self.num_channels = int(agg_f.shape[0])
        self.chunk_elements = int(chunk_elements)
        if workers is None:
            workers = min(os.cpu_count() or 1, CDS_SCAN_MAX_WORKERS)
        self.workers = max(1, int(workers))
        k = self.num_channels
        self.best_delta = np.full((k, k), -np.inf, dtype=np.float64)
        self.best_pos = np.full((k, k), -1, dtype=np.intp)
        #: Measured Δc pair evaluations (the masked own-channel column
        #: is never counted, matching the scalar backend's loop).
        self.evaluations = 0
        self.rebuild()

    # -- cell evaluation -------------------------------------------------
    def _scan_chunk(self, origin: int, members) -> Tuple[object, object]:
        """Per-destination best ``(Δc, local position)`` for a slice of
        one origin group (``members`` in position order)."""
        f = self.freq[members]
        z = self.size[members]
        tfz = self.two_fz[members]
        dz = self.agg_z[origin] - self.agg_z
        df = self.agg_f[origin] - self.agg_f
        delta = f[:, None] * dz[None, :] + z[:, None] * df[None, :] - tfz[:, None]
        # A move to the item's own channel is not a move; mask it out.
        delta[:, origin] = -np.inf
        pos = np.argmax(delta, axis=0)
        vals = delta[pos, np.arange(self.num_channels)]
        return vals, pos

    def _row_chunks(self, origin: int):
        """(start, member-array) slices of one group under the budget."""
        members = self.groups[origin]
        rows = max(1, self.chunk_elements // max(1, self.num_channels))
        return [
            (start, np.asarray(members[start: start + rows], dtype=np.intp))
            for start in range(0, len(members), rows)
        ]

    def _merge_row(self, origin: int, chunks, outcomes) -> None:
        """Fold chunk bests into row ``origin``, leftmost tie winning.

        ``chunks`` are in ascending position order and the fold keeps
        the incumbent on exact ties (strict ``>``), so the merged
        winner per cell is the lowest-position maximum — deterministic
        for any chunking and any thread completion order.
        """
        k = self.num_channels
        row_vals = np.full(k, -np.inf, dtype=np.float64)
        row_pos = np.full(k, -1, dtype=np.intp)
        for (start, members), (vals, pos) in zip(chunks, outcomes):
            better = vals > row_vals
            row_vals[better] = vals[better]
            row_pos[better] = start + pos[better]
            self.evaluations += len(members) * (k - 1)
        self.best_delta[origin] = row_vals
        self.best_pos[origin] = row_pos

    # -- maintenance -----------------------------------------------------
    def rebuild(self) -> None:
        """Cold scan: recompute every cell from the current state."""
        tasks = [
            (origin, chunk)
            for origin in range(self.num_channels)
            for chunk in self._row_chunks(origin)
        ]
        if self.workers > 1 and len(tasks) > 1:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                outcomes = list(
                    pool.map(
                        lambda task: self._scan_chunk(task[0], task[1][1]),
                        tasks,
                    )
                )
        else:
            outcomes = [
                self._scan_chunk(origin, chunk[1]) for origin, chunk in tasks
            ]
        by_origin: List[List] = [[] for _ in range(self.num_channels)]
        results: List[List] = [[] for _ in range(self.num_channels)]
        for (origin, chunk), outcome in zip(tasks, outcomes):
            by_origin[origin].append(chunk)
            results[origin].append(outcome)
        for origin in range(self.num_channels):
            self._merge_row(origin, by_origin[origin], results[origin])

    def _refresh_row(self, origin: int) -> None:
        chunks = self._row_chunks(origin)
        outcomes = [self._scan_chunk(origin, members) for _, members in chunks]
        self._merge_row(origin, chunks, outcomes)

    def apply_move(self, origin: int, destination: int) -> None:
        """Recompute every cell a move ``origin → destination`` dirtied.

        Rows ``origin`` and ``destination`` (their group membership and
        aggregates changed) and columns ``origin`` and ``destination``
        of every other group (their destination aggregates changed).
        All other cells keep bitwise-valid cached deltas.
        """
        self._refresh_row(origin)
        self._refresh_row(destination)
        for group, members in enumerate(self.groups):
            if group == origin or group == destination:
                continue
            if not members:  # pragma: no cover - channels never empty
                self.best_delta[group, origin] = -np.inf
                self.best_delta[group, destination] = -np.inf
                continue
            m = np.asarray(members, dtype=np.intp)
            f = self.freq[m]
            z = self.size[m]
            tfz = self.two_fz[m]
            for dest in (origin, destination):
                delta = (
                    f * (self.agg_z[group] - self.agg_z[dest])
                    + z * (self.agg_f[group] - self.agg_f[dest])
                    - tfz
                )
                pos = int(np.argmax(delta))
                self.best_delta[group, dest] = delta[pos]
                self.best_pos[group, dest] = pos
                self.evaluations += len(members)

    # -- selection -------------------------------------------------------
    def best_move(
        self, epsilon: float
    ) -> Optional[Tuple[float, int, int, int]]:
        """Global argmax over the index, full-scan tie-break preserved.

        Returns ``(delta, origin, position_in_origin, destination)`` —
        the same tuple shape as the scalar ``_best_move`` — or ``None``
        when no cell beats ``epsilon``.  The first row achieving the
        maximum wins (lowest origin); within it the cell with the
        lowest cached position wins, and among equal positions (the
        same item) the lowest destination — ``(origin, position,
        destination)`` lexicographic, exactly the full scan's order.
        """
        row_best = self.best_delta.max(axis=1)
        origin = int(np.argmax(row_best))
        best = float(row_best[origin])
        if not best > epsilon:
            return None
        row = self.best_delta[origin]
        ties = np.flatnonzero(row == best)
        destination = int(ties[np.argmin(self.best_pos[origin, ties])])
        position = int(self.best_pos[origin, destination])
        return best, origin, position, destination


# ----------------------------------------------------------------------
# Partition — range-based split scan over shared prefix sums
# ----------------------------------------------------------------------
def best_split_range_numpy(pf, pz, start: int, stop: int) -> Tuple[int, float]:
    """Vectorized split scan over the half-open range ``[start, stop)``.

    ``pf`` / ``pz`` are the shared prefix-sum arrays (length N+1).
    Returns ``(offset, cost)`` with ``1 <= offset < stop - start``; the
    first minimum wins, matching the scalar strict-``<`` scan.
    """
    cut = np.arange(start + 1, stop)
    left = (pf[cut] - pf[start]) * (pz[cut] - pz[start])
    right = (pf[stop] - pf[cut]) * (pz[stop] - pz[cut])
    total = left + right
    index = int(np.argmin(total))
    return index + 1, float(total[index])


# ----------------------------------------------------------------------
# Contiguous DP — candidate-window argmin for the monotone D&C layer
# ----------------------------------------------------------------------
def dp_window_argmin_numpy(dp_prev, pf, pz, i: int, lo: int, hi: int):
    """Minimise ``dp_prev[j] + cost(j, i)`` over ``j in [lo, hi)``.

    Returns ``(j, value)`` with the first minimum winning — identical
    floats and tie-break to the quadratic oracle's inner loop.
    """
    j = np.arange(lo, hi)
    values = dp_prev[lo:hi] + (pf[i] - pf[j]) * (pz[i] - pz[j])
    k = int(np.argmin(values))
    return lo + k, float(values[k])
